//! Per-phase tracing and cross-rank profiling.
//!
//! The paper's central evidence (§6, Fig 9) is a *time breakdown*: SOI
//! wins because the all-to-all shrinks while local compute stays cheap.
//! [`super::stats::CommStats`] already keeps a flat per-rank phase
//! ledger; this module adds the three pieces needed to turn that ledger
//! into a measured Fig 9:
//!
//! 1. **Hierarchical spans.** When tracing is enabled each rank keeps a
//!    [`TraceEvent`] buffer alongside its phase records. Explicit spans
//!    (`superstep`, `pack`, `checkpoint-save`, ...) nest around the
//!    existing phases, which are mirrored into the buffer as leaves.
//!    The trace buffer is *separate* from the phase records, so the
//!    flat ledger — and every structural assertion on it — is identical
//!    with tracing on or off.
//! 2. **[`RunProfile`]**: cross-rank aggregation — per-phase min /
//!    median / max wall seconds, exact byte and retry totals, virtual
//!    time under the cost model, pool-worker busy accounting.
//! 3. **Exporters**: a human-readable text tree ([`text_tree`]) and
//!    chrome://tracing JSON ([`chrome_trace_json`], load via
//!    `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Overhead budget: with [`TraceConfig::enabled`] false (the default)
//! every instrumentation point is one `Option` discriminant test — the
//! release-mode gate in `tests/trace_overhead.rs` holds the difference
//! under 2%. Enabled, each span close is an `O(1)` push onto a
//! pre-grown `Vec`.

use std::time::Instant;

use crate::stats::CommStats;

/// Switch for the observability layer, carried by
/// [`crate::ClusterConfig`]. Off by default: the disabled fast path is
/// a handful of branches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record hierarchical trace events on every rank.
    pub enabled: bool,
}

impl TraceConfig {
    /// Tracing on.
    pub fn enabled() -> Self {
        TraceConfig { enabled: true }
    }

    /// Tracing off (the default).
    pub fn disabled() -> Self {
        TraceConfig { enabled: false }
    }
}

/// One closed span or mirrored phase in a rank's trace buffer.
///
/// Timestamps are seconds since the run's shared origin instant (all
/// ranks of an epoch share one origin, so cross-rank timelines line
/// up in the chrome trace).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span or phase label.
    pub name: &'static str,
    /// Nesting depth at the time the span was open (0 = top level).
    pub depth: usize,
    /// Start, seconds since the trace origin.
    pub start_s: f64,
    /// Duration in wall-clock seconds.
    pub dur_s: f64,
    /// Bytes this rank sent while the span was open.
    pub bytes: u64,
    /// Virtual-time duration, when the closing site computed one.
    pub sim_s: Option<f64>,
}

/// Per-rank trace storage: shared origin, open-span stack, closed
/// events. Lives inside [`CommStats`] as an `Option` so the disabled
/// path stays allocation-free.
#[derive(Clone, Debug)]
pub(crate) struct TraceBuf {
    origin: Instant,
    open: Vec<(&'static str, Instant, u64)>,
    events: Vec<TraceEvent>,
}

impl TraceBuf {
    pub(crate) fn new(origin: Instant) -> Self {
        TraceBuf {
            origin,
            open: Vec::with_capacity(8),
            events: Vec::with_capacity(64),
        }
    }

    pub(crate) fn open(&mut self, name: &'static str, bytes_now: u64) {
        self.open.push((name, Instant::now(), bytes_now));
    }

    pub(crate) fn close(&mut self, name: &'static str, bytes_now: u64, sim_s: Option<f64>) {
        debug_assert_eq!(
            self.open.last().map(|(n, _, _)| *n),
            Some(name),
            "span close does not match innermost open span"
        );
        let Some((opened, start, bytes_at_start)) = self.open.pop() else {
            return;
        };
        self.events.push(TraceEvent {
            name: opened,
            depth: self.open.len(),
            start_s: start.saturating_duration_since(self.origin).as_secs_f64(),
            dur_s: start.elapsed().as_secs_f64(),
            bytes: bytes_now - bytes_at_start,
            sim_s,
        });
    }

    /// Mirrors a closed flat phase into the trace buffer as a leaf
    /// under the currently open spans.
    pub(crate) fn leaf(
        &mut self,
        name: &'static str,
        start: Instant,
        dur_s: f64,
        bytes: u64,
        sim_s: Option<f64>,
    ) {
        self.events.push(TraceEvent {
            name,
            depth: self.open.len(),
            start_s: start.saturating_duration_since(self.origin).as_secs_f64(),
            dur_s,
            bytes,
            sim_s,
        });
    }

    pub(crate) fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    pub(crate) fn absorb(&mut self, other: &TraceBuf) {
        self.events.extend(other.events.iter().cloned());
    }
}

/// Cross-rank aggregate for one phase/span name.
#[derive(Clone, Debug)]
pub struct PhaseProfile {
    /// Phase or span label.
    pub name: String,
    /// Total records across all ranks.
    pub count: usize,
    /// Minimum per-rank total wall seconds (over ranks that recorded
    /// the phase at all).
    pub min_s: f64,
    /// Median per-rank total wall seconds.
    pub median_s: f64,
    /// Maximum per-rank total wall seconds.
    pub max_s: f64,
    /// Bytes sent during the phase, summed over all ranks (exact).
    pub total_bytes: u64,
    /// Virtual time under the cost model, summed over all ranks
    /// (`None` when no record of this phase carried a simulated time).
    pub total_sim_s: Option<f64>,
    /// Maximum per-rank virtual-time total — the critical-path estimate
    /// the model compares against.
    pub max_sim_s: Option<f64>,
}

/// Whole-run aggregation of per-rank ledgers: Fig 9 in struct form.
#[derive(Clone, Debug)]
pub struct RunProfile {
    /// Number of rank ledgers aggregated.
    pub ranks: usize,
    /// Per-phase aggregates, in first-appearance order (flat phase
    /// records first, then span-only names from the trace buffers).
    pub phases: Vec<PhaseProfile>,
    /// Total bytes sent by all ranks (exactly `Σ total_bytes_sent`).
    pub total_bytes: u64,
    /// Total messages sent by all ranks.
    pub total_messages: u64,
    /// Link-layer retransmissions, summed.
    pub retransmits: u64,
    /// Checksum-mismatch discards, summed.
    pub corrupt_discarded: u64,
    /// Duplicate discards, summed.
    pub duplicates_discarded: u64,
    /// Stale-incarnation discards, summed.
    pub stale_discarded: u64,
    /// ABFT detections, summed.
    pub sdc_detected: u64,
    /// ABFT repairs, summed.
    pub sdc_repaired: u64,
    /// Comm-layer staging copies (chunked all-to-all partial chunks).
    pub comm_allocs: u64,
    /// Pool-worker busy seconds, summed over ranks.
    pub pool_busy_s: f64,
    /// Pool-worker tasks executed, summed over ranks.
    pub pool_tasks: u64,
    /// Transport heartbeat beacons sent, summed over ranks (0 for the
    /// in-process backend, which has no heartbeat plane).
    pub heartbeats_sent: u64,
    /// Peers declared dead by heartbeat staleness, as observed summed
    /// over ranks.
    pub heartbeats_missed: u64,
    /// Blocking receives (or backpressured sends) that gave up at their
    /// deadline with a typed `Timeout`, summed over ranks.
    pub recv_timeouts: u64,
    /// Link reconnects that healed a dropped connection transparently,
    /// summed over ranks (0 for backends without real connections).
    pub link_reconnects: u64,
    /// Seconds of healed outbound-link downtime, summed over ranks —
    /// partition time the mesh absorbed inside its staleness budget.
    pub link_partition_s: f64,
    /// Wire bytes pushed toward each peer rank, elementwise-summed over
    /// the senders' ledgers (empty for backends that don't report it).
    pub bytes_by_peer: Vec<u64>,
    /// FFT plan-cache hits — a process-global gauge, so the max over
    /// ranks' snapshots rather than a sum.
    pub plan_cache_hits: u64,
    /// FFT plan-cache misses (plans built), max over ranks' snapshots.
    pub plan_cache_misses: u64,
    /// FFT plans evicted by the cache's LRU bound, max over ranks'
    /// snapshots. Nonzero under a fixed workload means replanning churn.
    pub plan_cache_evictions: u64,
}

impl RunProfile {
    /// Aggregates one ledger per rank into a profile.
    ///
    /// Byte and retry totals are exact sums; wall-clock statistics are
    /// min/median/max over the per-rank *totals* for each phase name
    /// (ranks that never recorded a phase are excluded from its
    /// order statistics, matching how Fig 9 reports per-node phase
    /// times rather than averaging in idle nodes).
    pub fn from_stats(stats: &[CommStats]) -> Self {
        let mut names: Vec<&'static str> = Vec::new();
        for s in stats {
            for r in s.records() {
                if !names.contains(&r.name) {
                    names.push(r.name);
                }
            }
            for e in s.trace_events() {
                if !names.contains(&e.name) {
                    names.push(e.name);
                }
            }
        }

        let mut phases = Vec::with_capacity(names.len());
        for name in names {
            let mut per_rank: Vec<(f64, u64, Option<f64>, usize)> = Vec::new();
            for s in stats {
                let count = s.count_of(name);
                let from_records = count > 0;
                // Span-only names never reach the flat records; fall
                // back to the trace buffer for them.
                let span_events: Vec<_> =
                    s.trace_events().iter().filter(|e| e.name == name).collect();
                if !from_records && span_events.is_empty() {
                    continue;
                }
                let (secs, bytes, sim, n) = if from_records {
                    let sim_total = s.sim_seconds_in(name);
                    let has_sim = s
                        .records()
                        .iter()
                        .any(|r| r.name == name && r.sim_seconds.is_some());
                    (
                        s.seconds_in(name),
                        s.bytes_in(name),
                        has_sim.then_some(sim_total),
                        count,
                    )
                } else {
                    let secs: f64 = span_events.iter().map(|e| e.dur_s).sum();
                    let bytes: u64 = span_events.iter().map(|e| e.bytes).sum();
                    let has_sim = span_events.iter().any(|e| e.sim_s.is_some());
                    let sim: f64 = span_events.iter().filter_map(|e| e.sim_s).sum();
                    (secs, bytes, has_sim.then_some(sim), span_events.len())
                };
                per_rank.push((secs, bytes, sim, n));
            }
            if per_rank.is_empty() {
                continue;
            }
            let mut secs: Vec<f64> = per_rank.iter().map(|&(s, ..)| s).collect();
            secs.sort_by(|a, b| a.total_cmp(b));
            let median_s = if secs.len() % 2 == 1 {
                secs[secs.len() / 2]
            } else {
                0.5 * (secs[secs.len() / 2 - 1] + secs[secs.len() / 2])
            };
            let sims: Vec<f64> = per_rank.iter().filter_map(|&(_, _, s, _)| s).collect();
            let total_sim_s = (!sims.is_empty()).then(|| sims.iter().sum());
            let max_sim_s = sims.iter().copied().reduce(f64::max);
            phases.push(PhaseProfile {
                name: name.to_string(),
                count: per_rank.iter().map(|&(.., n)| n).sum(),
                min_s: secs[0],
                median_s,
                max_s: secs[secs.len() - 1],
                total_bytes: per_rank.iter().map(|&(_, b, ..)| b).sum(),
                total_sim_s,
                max_sim_s,
            });
        }

        RunProfile {
            ranks: stats.len(),
            phases,
            total_bytes: stats.iter().map(|s| s.total_bytes_sent()).sum(),
            total_messages: stats.iter().map(|s| s.messages_sent()).sum(),
            retransmits: stats.iter().map(|s| s.retransmits()).sum(),
            corrupt_discarded: stats.iter().map(|s| s.corrupt_discarded()).sum(),
            duplicates_discarded: stats.iter().map(|s| s.duplicates_discarded()).sum(),
            stale_discarded: stats.iter().map(|s| s.stale_discarded()).sum(),
            sdc_detected: stats.iter().map(|s| s.sdc_detected()).sum(),
            sdc_repaired: stats.iter().map(|s| s.sdc_repaired()).sum(),
            comm_allocs: stats.iter().map(|s| s.comm_allocs()).sum(),
            pool_busy_s: stats.iter().map(|s| s.pool_busy_seconds()).sum(),
            pool_tasks: stats.iter().map(|s| s.pool_tasks()).sum(),
            heartbeats_sent: stats.iter().map(|s| s.heartbeats_sent()).sum(),
            heartbeats_missed: stats.iter().map(|s| s.heartbeats_missed()).sum(),
            recv_timeouts: stats.iter().map(|s| s.recv_timeouts()).sum(),
            link_reconnects: stats.iter().map(|s| s.link_reconnects()).sum(),
            link_partition_s: stats.iter().map(|s| s.link_partition_seconds()).sum(),
            bytes_by_peer: {
                let width = stats.iter().map(|s| s.bytes_by_peer().len()).max();
                let mut sums = vec![0u64; width.unwrap_or(0)];
                for s in stats {
                    for (acc, b) in sums.iter_mut().zip(s.bytes_by_peer()) {
                        *acc += b;
                    }
                }
                sums
            },
            plan_cache_hits: stats.iter().map(|s| s.plan_cache_hits()).max().unwrap_or(0),
            plan_cache_misses: stats
                .iter()
                .map(|s| s.plan_cache_misses())
                .max()
                .unwrap_or(0),
            plan_cache_evictions: stats
                .iter()
                .map(|s| s.plan_cache_evictions())
                .max()
                .unwrap_or(0),
        }
    }

    /// The aggregate for `name`, if any rank recorded it.
    pub fn phase(&self, name: &str) -> Option<&PhaseProfile> {
        self.phases.iter().find(|p| p.name == name)
    }
}

/// Renders the run as a human-readable report: rank 0's span tree
/// (indented by nesting depth, in start order) followed by the
/// cross-rank per-phase table and the counter block. Works with
/// tracing disabled too — the tree section then falls back to the
/// flat phase ledger.
pub fn text_tree(stats: &[CommStats]) -> String {
    use std::fmt::Write;
    let profile = RunProfile::from_stats(stats);
    let mut out = String::new();
    let _ = writeln!(out, "run profile ({} ranks)", profile.ranks);

    let _ = writeln!(out, "\nrank 0 timeline:");
    if let Some(s) = stats.first() {
        if s.trace_enabled() {
            let mut events: Vec<&TraceEvent> = s.trace_events().iter().collect();
            events.sort_by(|a, b| {
                a.start_s
                    .total_cmp(&b.start_s)
                    .then_with(|| b.dur_s.total_cmp(&a.dur_s))
            });
            for e in events {
                let pad = "  ".repeat(e.depth + 1);
                let sim = match e.sim_s {
                    Some(v) => format!("  sim {:.6} s", v),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{pad}{:<20} {:>10.6} s  {:>12} B{sim}",
                    e.name, e.dur_s, e.bytes
                );
            }
        } else {
            for r in s.records() {
                let _ = writeln!(
                    out,
                    "  {:<20} {:>10.6} s  {:>12} B",
                    r.name, r.seconds, r.bytes_sent
                );
            }
        }
    }

    let _ = writeln!(
        out,
        "\nper-phase across ranks (wall seconds; bytes/sim are exact sums):"
    );
    let _ = writeln!(
        out,
        "  {:<20} {:>5}  {:>10}  {:>10}  {:>10}  {:>12}  {:>10}",
        "phase", "count", "min", "median", "max", "bytes", "sim-total"
    );
    for p in &profile.phases {
        let sim = match p.total_sim_s {
            Some(v) => format!("{v:>10.6}"),
            None => format!("{:>10}", "-"),
        };
        let _ = writeln!(
            out,
            "  {:<20} {:>5}  {:>10.6}  {:>10.6}  {:>10.6}  {:>12}  {sim}",
            p.name, p.count, p.min_s, p.median_s, p.max_s, p.total_bytes
        );
    }

    let _ = writeln!(
        out,
        "\ncounters: {} B in {} messages, {} retransmits, {} corrupt / {} duplicate / {} stale discarded",
        profile.total_bytes,
        profile.total_messages,
        profile.retransmits,
        profile.corrupt_discarded,
        profile.duplicates_discarded,
        profile.stale_discarded,
    );
    let _ = writeln!(
        out,
        "          {} sdc detected, {} repaired; {} staging copies; pool {:.6} s busy over {} tasks",
        profile.sdc_detected,
        profile.sdc_repaired,
        profile.comm_allocs,
        profile.pool_busy_s,
        profile.pool_tasks,
    );
    let _ = writeln!(
        out,
        "          {} heartbeats sent, {} peers lost to staleness, {} recv timeouts",
        profile.heartbeats_sent, profile.heartbeats_missed, profile.recv_timeouts,
    );
    if profile.plan_cache_hits > 0 || profile.plan_cache_misses > 0 {
        let _ = writeln!(
            out,
            "          plan cache: {} hits, {} misses, {} evictions",
            profile.plan_cache_hits, profile.plan_cache_misses, profile.plan_cache_evictions,
        );
    }
    if profile.link_reconnects > 0 || profile.link_partition_s > 0.0 {
        let _ = writeln!(
            out,
            "          {} link reconnects healed {:.3} s of partition",
            profile.link_reconnects, profile.link_partition_s,
        );
    }
    out
}

/// Serializes all ranks' trace events as chrome://tracing JSON
/// ("X" complete events, microsecond timestamps, `tid` = rank).
///
/// The format is the Trace Event Format's JSON-object flavor; load the
/// string into `chrome://tracing` or Perfetto. Hand-formatted — names
/// are `'static` identifiers from this codebase, so no escaping is
/// needed. Ranks with tracing disabled fall back to their flat phase
/// ledger laid end-to-end.
pub fn chrome_trace_json(stats: &[CommStats]) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\n  \"traceEvents\": [\n");
    let mut first = true;
    for (rank, s) in stats.iter().enumerate() {
        let mut emit = |name: &str, start_s: f64, dur_s: f64, bytes: u64, sim: Option<f64>| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let sim_arg = match sim {
                Some(v) => format!(", \"sim_s\": {v:.9}"),
                None => String::new(),
            };
            let _ = write!(
                out,
                "    {{\"name\": \"{name}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"pid\": 0, \"tid\": {rank}, \"args\": {{\"bytes\": {bytes}{sim_arg}}}}}",
                start_s * 1e6,
                dur_s * 1e6,
            );
        };
        if s.trace_enabled() {
            for e in s.trace_events() {
                emit(e.name, e.start_s, e.dur_s, e.bytes, e.sim_s);
            }
        } else {
            let mut cursor = 0.0;
            for r in s.records() {
                emit(r.name, cursor, r.seconds, r.bytes_sent, r.sim_seconds);
                cursor += r.seconds;
            }
        }
    }
    out.push_str("\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced_stats() -> CommStats {
        let mut s = CommStats::default();
        s.enable_trace(Instant::now());
        s.span_open("superstep");
        let t = s.phase_start();
        s.add_bytes_sent(160);
        s.phase_end("ghost", t);
        s.span_open("pack");
        s.span_close("pack");
        let t = s.phase_start();
        s.add_bytes_sent(320);
        s.phase_end("all-to-all", t);
        s.span_close("superstep");
        s
    }

    #[test]
    fn spans_nest_and_phases_mirror_as_leaves() {
        let s = traced_stats();
        // Flat ledger unchanged by tracing: exactly the two phases.
        let names: Vec<_> = s.records().iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["ghost", "all-to-all"]);
        // Trace buffer holds leaves + spans with correct nesting.
        let ev = s.trace_events();
        let by_name = |n: &str| ev.iter().find(|e| e.name == n).unwrap();
        assert_eq!(by_name("ghost").depth, 1);
        assert_eq!(by_name("pack").depth, 1);
        assert_eq!(by_name("all-to-all").depth, 1);
        assert_eq!(by_name("superstep").depth, 0);
        assert_eq!(by_name("superstep").bytes, 480);
        assert_eq!(by_name("ghost").bytes, 160);
        // The superstep span covers its children.
        assert!(by_name("superstep").dur_s >= by_name("ghost").dur_s);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let mut s = CommStats::default();
        s.span_open("superstep");
        let t = s.phase_start();
        s.phase_end("ghost", t);
        s.span_close("superstep");
        assert!(!s.trace_enabled());
        assert!(s.trace_events().is_empty());
        assert_eq!(s.records().len(), 1);
    }

    #[test]
    fn profile_aggregates_exact_bytes_and_order_stats() {
        let stats: Vec<CommStats> = (0..3).map(|_| traced_stats()).collect();
        let p = RunProfile::from_stats(&stats);
        assert_eq!(p.ranks, 3);
        assert_eq!(p.total_bytes, 3 * 480);
        let ghost = p.phase("ghost").unwrap();
        assert_eq!(ghost.count, 3);
        assert_eq!(ghost.total_bytes, 3 * 160);
        assert!(ghost.min_s <= ghost.median_s && ghost.median_s <= ghost.max_s);
        // Span-only names aggregate from the trace buffer.
        let sup = p.phase("superstep").unwrap();
        assert_eq!(sup.count, 3);
        assert_eq!(sup.total_bytes, 3 * 480);
        let pack = p.phase("pack").unwrap();
        assert_eq!(pack.count, 3);
    }

    #[test]
    fn exporters_cover_all_events() {
        let stats = vec![traced_stats(), traced_stats()];
        let tree = text_tree(&stats);
        for name in ["superstep", "ghost", "pack", "all-to-all"] {
            assert!(tree.contains(name), "missing {name} in:\n{tree}");
        }
        assert!(tree.contains("960 B"), "total bytes line in:\n{tree}");
        let json = chrome_trace_json(&stats);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 8);
        assert_eq!(json.matches("\"tid\": 1").count(), 4);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn untraced_stats_export_flat_ledger() {
        let mut s = CommStats::default();
        let t = s.phase_start();
        s.add_bytes_sent(16);
        s.phase_end("all-to-all", t);
        let json = chrome_trace_json(std::slice::from_ref(&s));
        assert!(json.contains("\"name\": \"all-to-all\""));
        let tree = text_tree(std::slice::from_ref(&s));
        assert!(tree.contains("all-to-all"));
    }
}
