//! Simulated PCIe staging (coprocessor offload mode, paper §7).
//!
//! In symmetric mode the FFT input already lives in coprocessor memory; in
//! offload mode it starts on the host and must cross PCIe twice (in and
//! out). [`PcieLink`] models that staging: a copy, recorded as a
//! `pcie-in`/`pcie-out` phase in the rank's ledger, optionally throttled to
//! a configured bandwidth so demonstration runs show the §7 timing shape
//! (`T_off ≈ 2·T_pci + µ·T_mpi`) on wall clocks, not just in the analytic
//! model.

use soifft_num::c64;

use crate::stats::CommStats;

/// One rank's PCIe link to its coprocessor.
#[derive(Clone, Copy, Debug, Default)]
pub struct PcieLink {
    /// When set, transfers busy-wait so the effective rate matches this
    /// many bytes per second (for timing-shape demos; `None` = full host
    /// memcpy speed).
    pub simulated_bytes_per_s: Option<f64>,
}

impl PcieLink {
    /// A link that copies at host speed (functional runs, tests).
    pub fn new() -> Self {
        Self::default()
    }

    /// A link throttled to `bytes_per_s` (demo runs).
    pub fn with_simulated_bandwidth(bytes_per_s: f64) -> Self {
        assert!(bytes_per_s > 0.0);
        PcieLink {
            simulated_bytes_per_s: Some(bytes_per_s),
        }
    }

    /// Host → device transfer; records a `pcie-in` phase.
    pub fn to_device(&self, stats: &mut CommStats, data: &[c64]) -> Vec<c64> {
        self.transfer(stats, "pcie-in", data)
    }

    /// Device → host transfer; records a `pcie-out` phase.
    pub fn to_host(&self, stats: &mut CommStats, data: &[c64]) -> Vec<c64> {
        self.transfer(stats, "pcie-out", data)
    }

    fn transfer(&self, stats: &mut CommStats, phase: &'static str, data: &[c64]) -> Vec<c64> {
        let t = stats.phase_start();
        let out = data.to_vec();
        if let Some(bw) = self.simulated_bytes_per_s {
            let bytes = std::mem::size_of_val(data) as f64;
            let target = std::time::Duration::from_secs_f64(bytes / bw);
            let start = std::time::Instant::now();
            while start.elapsed() < target {
                std::hint::spin_loop();
            }
        }
        stats.phase_end(phase, t);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_copy_faithfully_and_record_phases() {
        let link = PcieLink::new();
        let mut stats = CommStats::default();
        let data: Vec<c64> = (0..100).map(|i| c64::new(i as f64, -1.0)).collect();
        let dev = link.to_device(&mut stats, &data);
        let host = link.to_host(&mut stats, &dev);
        assert_eq!(host, data);
        assert_eq!(stats.count_of("pcie-in"), 1);
        assert_eq!(stats.count_of("pcie-out"), 1);
    }

    #[test]
    fn simulated_bandwidth_takes_proportional_time() {
        // 16 KB at 1 MB/s ⇒ ≥ 16 ms; at 8 MB/s ⇒ ≥ 2 ms.
        let data = vec![c64::ZERO; 1024];
        let mut stats = CommStats::default();
        let slow = PcieLink::with_simulated_bandwidth(1e6);
        slow.to_device(&mut stats, &data);
        let t_slow = stats.seconds_in("pcie-in");
        let fast = PcieLink::with_simulated_bandwidth(8e6);
        let mut stats2 = CommStats::default();
        fast.to_device(&mut stats2, &data);
        let t_fast = stats2.seconds_in("pcie-in");
        assert!(t_slow >= 0.015, "{t_slow}");
        assert!(t_fast < t_slow, "{t_fast} vs {t_slow}");
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        PcieLink::with_simulated_bandwidth(0.0);
    }
}
