//! Deterministic in-path network-fault injection for the TCP transport.
//!
//! [`NetChaos::install`] stands up one loopback proxy listener per
//! ordered rank pair; the TCP mesh dials *through* the proxy instead of
//! straight at its peers, and the proxy's pump threads inject the
//! failures TCP actually produces:
//!
//! * **partitions** — symmetric or asymmetric (inbound-only /
//!   outbound-only): existing connections through the severed links are
//!   torn down and new ones are accepted-then-closed, so the dialer's
//!   handshake fails and its reconnect backoff spins until the
//!   partition lifts (or the staleness budget escalates it);
//! * **connection resets** — a one-shot hard close of a specific link
//!   after a byte threshold, leaving a frame half-delivered
//!   (slow-loris' evil sibling);
//! * **latency/jitter and bandwidth caps** — per-chunk delays drawn
//!   from a per-link seeded stream, so the same seed replays the same
//!   delay schedule;
//! * **slow-loris forwarding** — frames trickled through in small
//!   chunks with stalls between them, exercising the receiver's
//!   partial-frame reads.
//!
//! Triggers are deterministic like [`fault`](crate::fault)'s plans:
//! fixed byte thresholds ([`ChaosTrigger::BytesThrough`]) land a
//! partition at the same point in the exchange on every run, and all
//! randomness (jitter) comes from SplitMix64 streams derived from the
//! plan seed and the link endpoints. Reordering *across* reconnects is
//! emergent: per-link outages scramble cross-pair arrival order while
//! each pair stays FIFO, which is exactly what the resilience layer
//! must absorb.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How long a pump blocks in one read before re-checking partition
/// state and liveness — the reaction latency of a mid-stream sever.
const PUMP_SLICE: Duration = Duration::from_millis(20);

/// Which directions of a rank's links a partition severs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionKind {
    /// Both directions: the rank can neither send nor receive.
    Symmetric,
    /// Only links *toward* the rank: it falls silent to the world but
    /// still hears everyone (its own sends keep flowing).
    InboundOnly,
    /// Only links *from* the rank: it keeps receiving but its sends go
    /// nowhere — the half-open failure mode.
    OutboundOnly,
}

/// When a scripted fault fires.
#[derive(Clone, Debug)]
pub enum ChaosTrigger {
    /// A fixed delay after the proxy was installed.
    After(Duration),
    /// Once `bytes` of forwarded traffic have touched `rank`'s links
    /// (either direction) — deterministic mid-exchange placement.
    BytesThrough {
        /// The rank whose traffic is counted.
        rank: usize,
        /// The byte threshold.
        bytes: u64,
    },
}

/// A scripted partition of one rank.
#[derive(Clone, Debug)]
pub struct PartitionSpec {
    /// The rank to cut off.
    pub rank: usize,
    /// Which link directions are severed.
    pub kind: PartitionKind,
    /// When the partition starts.
    pub trigger: ChaosTrigger,
    /// How long it lasts; `None` = until the proxy is torn down (the
    /// budget-exceeding case).
    pub duration: Option<Duration>,
}

/// A one-shot connection reset of the `src → dst` link after
/// `after_bytes` forwarded bytes.
#[derive(Clone, Debug)]
pub struct ResetSpec {
    /// Sending rank of the link.
    pub src: usize,
    /// Receiving rank of the link.
    pub dst: usize,
    /// Forwarded-byte threshold on that link.
    pub after_bytes: u64,
}

/// A deterministic network-fault schedule (builder-style, seeded like
/// [`FaultPlan`](crate::FaultPlan)).
#[derive(Clone, Debug)]
pub struct NetChaosPlan {
    /// Seed for the per-link jitter streams.
    pub seed: u64,
    /// The supervision generation this plan applies to; a respawned
    /// epoch runs fault-free so recovery can be proven.
    pub generation: u64,
    partitions: Vec<PartitionSpec>,
    resets: Vec<ResetSpec>,
    latency: Option<(Duration, Duration)>,
    bandwidth: Option<u64>,
    slow_loris: Option<(usize, Duration)>,
}

impl NetChaosPlan {
    /// An empty plan under `seed`, applying to generation 0.
    pub fn new(seed: u64) -> NetChaosPlan {
        NetChaosPlan {
            seed,
            generation: 0,
            partitions: Vec::new(),
            resets: Vec::new(),
            latency: None,
            bandwidth: None,
            slow_loris: None,
        }
    }

    /// Restricts the plan to `generation`.
    pub fn for_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// Adds a scripted partition.
    pub fn partition(mut self, spec: PartitionSpec) -> Self {
        self.partitions.push(spec);
        self
    }

    /// Adds a one-shot connection reset on the `src → dst` link.
    pub fn reset_link(mut self, src: usize, dst: usize, after_bytes: u64) -> Self {
        self.resets.push(ResetSpec {
            src,
            dst,
            after_bytes,
        });
        self
    }

    /// Delays every forwarded chunk by `base` plus a seeded fraction of
    /// `jitter`.
    pub fn latency(mut self, base: Duration, jitter: Duration) -> Self {
        self.latency = Some((base, jitter));
        self
    }

    /// Caps forwarding throughput at `bytes_per_sec` per link.
    pub fn bandwidth(mut self, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth cap must be positive");
        self.bandwidth = Some(bytes_per_sec);
        self
    }

    /// Trickles traffic through in `chunk`-byte pieces with `stall`
    /// between them, splitting frames across the receiver's reads.
    pub fn slow_loris(mut self, chunk: usize, stall: Duration) -> Self {
        assert!(chunk > 0, "slow-loris chunk must be positive");
        self.slow_loris = Some((chunk, stall));
        self
    }
}

/// What the proxy actually did — counters chaos tests assert against
/// (a scripted partition that never fired proves nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetChaosEvents {
    /// Scripted partitions whose trigger fired.
    pub partitions_fired: u64,
    /// One-shot link resets delivered.
    pub resets_fired: u64,
    /// Connection attempts refused while a partition was active.
    pub conns_refused: u64,
    /// Established connections torn down by a partition or reset.
    pub conns_severed: u64,
    /// Connections successfully proxied end-to-end.
    pub conns_proxied: u64,
    /// Total bytes forwarded in the data (src → dst) direction.
    pub bytes_forwarded: u64,
}

/// SplitMix64 — the same tiny deterministic generator `fault.rs` uses.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

struct ChaosShared {
    plan: NetChaosPlan,
    alive: AtomicBool,
    start: Instant,
    ranks: usize,
    /// Forwarded bytes touching each rank (either endpoint of the link).
    rank_bytes: Vec<AtomicU64>,
    /// Forwarded bytes per ordered link (flattened `src * ranks + dst`).
    link_bytes: Vec<AtomicU64>,
    /// Per-partition-spec fire time (None until the trigger trips).
    partition_fired: Vec<Mutex<Option<Instant>>>,
    /// Per-reset-spec one-shot latch.
    reset_fired: Vec<AtomicBool>,
    /// Per-link jitter streams (continue across reconnects, so a seed
    /// replays the same delay schedule regardless of conn churn).
    jitter: Vec<Mutex<SplitMix64>>,
    /// Live proxied streams, so teardown can sever them.
    conns: Mutex<Vec<TcpStream>>,
    ev_partitions: AtomicU64,
    ev_resets: AtomicU64,
    ev_refused: AtomicU64,
    ev_severed: AtomicU64,
    ev_proxied: AtomicU64,
    ev_bytes: AtomicU64,
}

impl ChaosShared {
    fn alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Evaluates (and lazily fires) every partition spec covering the
    /// `src → dst` link; true while any active one severs it.
    fn severed(&self, src: usize, dst: usize) -> bool {
        let now = Instant::now();
        let mut cut = false;
        for (i, spec) in self.plan.partitions.iter().enumerate() {
            let covers = match spec.kind {
                PartitionKind::Symmetric => src == spec.rank || dst == spec.rank,
                PartitionKind::OutboundOnly => src == spec.rank,
                PartitionKind::InboundOnly => dst == spec.rank,
            };
            if !covers {
                continue;
            }
            let mut fired = self.partition_fired[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if fired.is_none() {
                let trip = match &spec.trigger {
                    ChaosTrigger::After(delay) => self.start.elapsed() >= *delay,
                    ChaosTrigger::BytesThrough { rank, bytes } => {
                        *rank < self.ranks
                            && self.rank_bytes[*rank].load(Ordering::Relaxed) >= *bytes
                    }
                };
                if trip {
                    *fired = Some(now);
                    self.ev_partitions.fetch_add(1, Ordering::Relaxed);
                }
            }
            if let Some(at) = *fired {
                match spec.duration {
                    None => cut = true,
                    Some(d) if now < at + d => cut = true,
                    Some(_) => {}
                }
            }
        }
        cut
    }

    /// True exactly once when a one-shot reset of `src → dst` is due.
    fn reset_due(&self, src: usize, dst: usize) -> bool {
        for (i, spec) in self.plan.resets.iter().enumerate() {
            if spec.src == src
                && spec.dst == dst
                && !self.reset_fired[i].load(Ordering::Relaxed)
                && self.link_bytes[src * self.ranks + dst].load(Ordering::Relaxed)
                    >= spec.after_bytes
                && !self.reset_fired[i].swap(true, Ordering::SeqCst)
            {
                self.ev_resets.fetch_add(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    fn count_forwarded(&self, src: usize, dst: usize, n: usize) {
        let n = n as u64;
        self.rank_bytes[src].fetch_add(n, Ordering::Relaxed);
        self.rank_bytes[dst].fetch_add(n, Ordering::Relaxed);
        self.link_bytes[src * self.ranks + dst].fetch_add(n, Ordering::Relaxed);
        self.ev_bytes.fetch_add(n, Ordering::Relaxed);
    }

    fn register(&self, stream: &TcpStream) {
        if let Ok(clone) = stream.try_clone() {
            let mut g = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            g.push(clone);
        }
    }
}

/// The installed proxy mesh: one listener per ordered rank pair, pump
/// threads applying the plan, and the dial matrix the transport uses
/// instead of the real addresses.
pub struct NetChaos {
    shared: Arc<ChaosShared>,
    matrix: Vec<Vec<SocketAddr>>,
}

impl NetChaos {
    /// Binds a loopback proxy in front of every ordered rank pair of
    /// `real` (the ranks' actual listen addresses) and starts the
    /// accept/pump threads.
    ///
    /// # Errors
    /// Socket errors binding the proxy listeners.
    pub fn install(real: &[SocketAddr], plan: &NetChaosPlan) -> io::Result<NetChaos> {
        let n = real.len();
        let shared = Arc::new(ChaosShared {
            plan: plan.clone(),
            alive: AtomicBool::new(true),
            start: Instant::now(),
            ranks: n,
            rank_bytes: (0..n).map(|_| AtomicU64::new(0)).collect(),
            link_bytes: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            partition_fired: plan.partitions.iter().map(|_| Mutex::new(None)).collect(),
            reset_fired: plan.resets.iter().map(|_| AtomicBool::new(false)).collect(),
            jitter: (0..n * n)
                .map(|link| {
                    Mutex::new(SplitMix64(
                        plan.seed ^ (link as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
                    ))
                })
                .collect(),
            conns: Mutex::new(Vec::new()),
            ev_partitions: AtomicU64::new(0),
            ev_resets: AtomicU64::new(0),
            ev_refused: AtomicU64::new(0),
            ev_severed: AtomicU64::new(0),
            ev_proxied: AtomicU64::new(0),
            ev_bytes: AtomicU64::new(0),
        });
        let mut matrix = vec![vec!["0.0.0.0:0".parse().expect("literal addr"); n]; n];
        for (s, row) in matrix.iter_mut().enumerate() {
            for (d, slot) in row.iter_mut().enumerate() {
                if s == d {
                    *slot = real[d];
                    continue;
                }
                let listener = TcpListener::bind("127.0.0.1:0")?;
                listener.set_nonblocking(true)?;
                *slot = listener.local_addr()?;
                let shared = Arc::clone(&shared);
                let target = real[d];
                std::thread::spawn(move || accept_loop(shared, listener, s, d, target));
            }
        }
        Ok(NetChaos { shared, matrix })
    }

    /// The addresses rank `src` should dial to reach each peer —
    /// `dial(src)[dst]` lands on the proxied `src → dst` link.
    pub fn dial(&self, src: usize) -> Vec<SocketAddr> {
        self.matrix[src].clone()
    }

    /// Snapshot of what the proxy has done so far.
    pub fn events(&self) -> NetChaosEvents {
        NetChaosEvents {
            partitions_fired: self.shared.ev_partitions.load(Ordering::Relaxed),
            resets_fired: self.shared.ev_resets.load(Ordering::Relaxed),
            conns_refused: self.shared.ev_refused.load(Ordering::Relaxed),
            conns_severed: self.shared.ev_severed.load(Ordering::Relaxed),
            conns_proxied: self.shared.ev_proxied.load(Ordering::Relaxed),
            bytes_forwarded: self.shared.ev_bytes.load(Ordering::Relaxed),
        }
    }

    /// Tears the proxy down: stops the accept loops and severs every
    /// proxied connection.
    pub fn shutdown(&self) {
        self.shared.alive.store(false, Ordering::SeqCst);
        let mut g = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        for stream in g.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for NetChaos {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    shared: Arc<ChaosShared>,
    listener: TcpListener,
    src: usize,
    dst: usize,
    target: SocketAddr,
) {
    while shared.alive() {
        match listener.accept() {
            Ok((client, _)) => {
                if shared.severed(src, dst) {
                    // Accept-then-close: the dialer's handshake read
                    // fails immediately and its backoff takes over.
                    shared.ev_refused.fetch_add(1, Ordering::Relaxed);
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                }
                let Ok(server) = TcpStream::connect_timeout(&target, Duration::from_secs(2)) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                shared.ev_proxied.fetch_add(1, Ordering::Relaxed);
                shared.register(&client);
                shared.register(&server);
                let counted = Arc::new(AtomicBool::new(false));
                if let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) {
                    let fwd_shared = Arc::clone(&shared);
                    let fwd_counted = Arc::clone(&counted);
                    std::thread::spawn(move || {
                        pump(fwd_shared, client, server, src, dst, true, fwd_counted)
                    });
                    let rev_shared = Arc::clone(&shared);
                    std::thread::spawn(move || pump(rev_shared, s2, c2, src, dst, false, counted));
                } else {
                    let _ = client.shutdown(Shutdown::Both);
                    let _ = server.shutdown(Shutdown::Both);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5))
            }
            Err(_) => break,
        }
    }
}

/// One direction of a proxied connection. `forward` is the data
/// direction (`src → dst` frames), where the byte accounting and the
/// injected faults live; the reverse direction (the Welcome handshake
/// reply) is a transparent copy that still honours severing.
fn pump(
    shared: Arc<ChaosShared>,
    mut from: TcpStream,
    mut to: TcpStream,
    src: usize,
    dst: usize,
    forward: bool,
    sever_counted: Arc<AtomicBool>,
) {
    let _ = from.set_read_timeout(Some(PUMP_SLICE));
    let mut buf = vec![0u8; 16 * 1024];
    let sever = |a: &TcpStream, b: &TcpStream| {
        if !sever_counted.swap(true, Ordering::SeqCst) {
            shared.ev_severed.fetch_add(1, Ordering::Relaxed);
        }
        let _ = a.shutdown(Shutdown::Both);
        let _ = b.shutdown(Shutdown::Both);
    };
    loop {
        if !shared.alive() {
            break;
        }
        if shared.severed(src, dst) {
            sever(&from, &to);
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        if forward {
            if let Some((base, jitter)) = shared.plan.latency {
                let frac = {
                    let mut g = shared.jitter[src * shared.ranks + dst]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    g.next_f64()
                };
                std::thread::sleep(base + jitter.mul_f64(frac));
            }
            if let Some(bw) = shared.plan.bandwidth {
                std::thread::sleep(Duration::from_secs_f64(n as f64 / bw as f64));
            }
            let wrote = if let Some((chunk, stall)) = shared.plan.slow_loris {
                let mut ok = true;
                for piece in buf[..n].chunks(chunk) {
                    if to.write_all(piece).is_err() {
                        ok = false;
                        break;
                    }
                    std::thread::sleep(stall);
                }
                ok
            } else {
                to.write_all(&buf[..n]).is_ok()
            };
            if !wrote {
                break;
            }
            shared.count_forwarded(src, dst, n);
            if shared.reset_due(src, dst) {
                sever(&from, &to);
                break;
            }
        } else if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
