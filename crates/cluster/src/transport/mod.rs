//! Pluggable transports under [`Comm`](crate::Comm).
//!
//! The resilience stack — sequence numbers, checksums, duplicate
//! filtering, retransmit budgets, generations — was already
//! transport-shaped; this module draws the boundary explicitly. A
//! [`Transport`] moves opaque [`Message`](crate::Message)s between ranks
//! and answers liveness questions; everything above it (the pending map,
//! fault injection, retry, the buffer pool, statistics) lives in
//! [`Comm`](crate::Comm) and is backend-agnostic.
//!
//! Three backends ship:
//!
//! * [`InProcTransport`] — the classic simulated cluster: ranks are OS
//!   threads, links are crossbeam channels, failure detection is a
//!   shared health flag, and the barrier is a condvar. This remains the
//!   default used by [`Cluster::run`](crate::Cluster::run).
//! * [`ProcTransport`](proc::ProcTransport) — ranks are separate OS
//!   processes connected to a hub over Unix-domain sockets speaking the
//!   [`wire`] codec, optionally with a per-rank inbound [`shm`] ring as
//!   the same-host data plane. Peer death is *real* (`kill -9`) and is
//!   detected by connection teardown or heartbeat staleness, surfacing
//!   as [`CommError::PeerDown`](crate::CommError::PeerDown).
//! * [`TcpTransport`](tcp::TcpTransport) — a full mesh of per-peer TCP
//!   connections speaking the same [`wire`] codec, suitable for ranks
//!   on separate hosts. Transient link drops heal by
//!   reconnect-with-backoff inside the staleness budget; longer
//!   partitions escalate through the same
//!   [`CommError::PeerDown`](crate::CommError::PeerDown) ladder. The
//!   [`netchaos`] module puts a deterministic fault proxy (partitions,
//!   resets, latency, bandwidth caps, slow-loris) in front of it.

pub mod netchaos;
#[cfg(unix)]
pub mod proc;
#[cfg(unix)]
pub mod shm;
pub mod tcp;
pub mod wire;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TrySendError};

use crate::resilience::{CancellableBarrier, ClusterState, CommError};
use crate::Message;

/// Result of a non-blocking [`Transport::try_send`]. `Full` and `Closed`
/// hand the message back so the caller can retry or drop it without a
/// clone.
pub enum SendOutcome {
    /// The message was accepted by the link.
    Sent,
    /// The destination queue is full (bounded links under backpressure);
    /// the caller may retry after a pause.
    Full(Message),
    /// The destination endpoint is gone.
    Closed(Message),
}

/// Result of a bounded-blocking [`Transport::recv_wait`].
pub enum WaitOutcome {
    /// A message arrived.
    Message(Message),
    /// The wait slice elapsed without traffic (not an error — the caller
    /// re-checks health and its own deadline, then waits again).
    Idle,
    /// Every sending endpoint is gone; nothing further can arrive.
    Closed,
}

/// How a failed peer was lost, which decides the [`CommError`] surfaced
/// to the application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PeerFailureKind {
    /// Cooperative death inside the process model: a rank thread
    /// panicked or was fault-injected to crash ([`CommError::PeerFailed`]).
    Crashed,
    /// Process-level death: the peer's OS process exited or stopped
    /// heartbeating ([`CommError::PeerDown`]).
    Down,
}

/// A failed peer as reported by a transport's failure detector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerFailure {
    /// The dead rank.
    pub rank: usize,
    /// How it was lost.
    pub kind: PeerFailureKind,
}

impl PeerFailure {
    /// The typed error this failure surfaces as.
    pub fn into_error(self) -> CommError {
        match self.kind {
            PeerFailureKind::Crashed => CommError::PeerFailed { rank: self.rank },
            PeerFailureKind::Down => CommError::PeerDown { rank: self.rank },
        }
    }
}

/// Heartbeat activity harvested from a transport since the last harvest
/// (all zeros for transports without a heartbeat plane).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeartbeatDelta {
    /// Liveness beacons this rank sent.
    pub sent: u64,
    /// Peers this rank saw declared dead by heartbeat staleness.
    pub missed: u64,
}

/// Per-link activity harvested from a transport since the last harvest
/// (empty/zero for backends without real links).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkDelta {
    /// Successful re-dials of a dropped connection (transparent heals).
    pub reconnects: u64,
    /// Wall-clock seconds outbound links spent broken before healing or
    /// escalation — the observed partition time.
    pub partition_seconds: f64,
    /// Payload + header bytes written toward each destination rank,
    /// indexed by rank (this rank's own slot stays 0).
    pub bytes_by_peer: Vec<u64>,
}

/// Shared peer-liveness table a transport's detector threads feed and
/// its blocking primitives poll (used by the process and TCP backends).
pub(crate) struct PeerMap {
    pub(crate) any: AtomicBool,
    pub(crate) flags: Mutex<Vec<Option<PeerFailureKind>>>,
    /// The control plane is gone (orderly shutdown or hub/mesh death).
    pub(crate) closed: AtomicBool,
    /// Peers lost to heartbeat staleness (vs. connection/exit loss).
    pub(crate) hb_missed: AtomicU64,
}

impl PeerMap {
    pub(crate) fn new(size: usize) -> Self {
        PeerMap {
            any: AtomicBool::new(false),
            flags: Mutex::new(vec![None; size]),
            closed: AtomicBool::new(false),
            hb_missed: AtomicU64::new(0),
        }
    }

    /// Marks `rank` failed with `kind`; first marking wins. Returns true
    /// when this call was the first to mark it.
    pub(crate) fn mark(&self, rank: usize, kind: PeerFailureKind) -> bool {
        let mut g = self.flags.lock().unwrap_or_else(|e| e.into_inner());
        let fresh = rank < g.len() && g[rank].is_none();
        if fresh {
            g[rank] = Some(kind);
        }
        self.any.store(true, Ordering::SeqCst);
        fresh
    }

    pub(crate) fn first(&self) -> Option<PeerFailure> {
        if !self.any.load(Ordering::SeqCst) {
            return None;
        }
        let g = self.flags.lock().unwrap_or_else(|e| e.into_inner());
        g.iter()
            .enumerate()
            .find_map(|(rank, kind)| kind.map(|kind| PeerFailure { rank, kind }))
    }

    pub(crate) fn get(&self, rank: usize) -> Option<PeerFailure> {
        if !self.any.load(Ordering::SeqCst) {
            return None;
        }
        let g = self.flags.lock().unwrap_or_else(|e| e.into_inner());
        g.get(rank)
            .copied()
            .flatten()
            .map(|kind| PeerFailure { rank, kind })
    }
}

/// A cloneable fire-and-forget sender handle to one destination,
/// detached from the transport's lifetime — what the §5.1 proxy core
/// uses to push staged chunks from its own thread. Delivery is
/// best-effort (a dead destination swallows the message, exactly like a
/// dropped channel send).
pub struct AsyncSender(Box<dyn Fn(Message) + Send + Sync>);

impl AsyncSender {
    /// Wraps a delivery closure.
    pub fn new(f: impl Fn(Message) + Send + Sync + 'static) -> Self {
        AsyncSender(Box::new(f))
    }

    /// Delivers `msg` (best-effort).
    pub fn send(&self, msg: Message) {
        (self.0)(msg)
    }
}

/// A message-moving backend under [`Comm`](crate::Comm): point-to-point
/// delivery, a failure detector, and a barrier. Implementations must
/// deliver messages FIFO per (src, dst) pair; everything else (ordering
/// across pairs, retries, checksummed payload verification) is the
/// resilience layer's job.
pub trait Transport: Send {
    /// This endpoint's rank.
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn size(&self) -> usize;

    /// Supervision epoch this endpoint belongs to.
    fn generation(&self) -> u64;

    /// Non-blocking send of `msg` to `dst` (`dst != rank`, in range —
    /// the caller validates).
    fn try_send(&mut self, dst: usize, msg: Message) -> SendOutcome;

    /// Non-blocking poll for any delivered message.
    fn try_recv(&mut self) -> Option<Message>;

    /// Blocks up to `slice` for a message. Callers loop on short slices
    /// so they can interleave health checks and deadline checks.
    fn recv_wait(&mut self, slice: Duration) -> WaitOutcome;

    /// The first peer known dead, if any (the fast-path health check
    /// every blocking primitive polls).
    fn failed_peer(&self) -> Option<PeerFailure>;

    /// `rank`'s failure, if the detector knows of one.
    fn peer_failure(&self, rank: usize) -> Option<PeerFailure>;

    /// Records this endpoint's own rank as dead and unblocks every
    /// party that might wait on it (called on the way out of an
    /// injected crash or panic).
    fn announce_death(&self, rank: usize);

    /// Synchronizes all ranks, waiting at most `timeout`.
    ///
    /// # Errors
    /// [`CommError::Timeout`] when the deadline elapses,
    /// [`CommError::PeerFailed`] / [`CommError::PeerDown`] when a rank
    /// died while the barrier was pending (every survivor unblocks).
    fn barrier(&mut self, timeout: Duration) -> Result<(), CommError>;

    /// Messages currently queued toward `dst` (0 where unknowable);
    /// feeds the backpressure watermark statistic.
    fn queue_depth(&self, dst: usize) -> usize {
        let _ = dst;
        0
    }

    /// A detached sender handle to `dst` for proxy offload, when the
    /// backend supports concurrent senders (`None` otherwise).
    fn async_sender(&self, dst: usize) -> Option<AsyncSender>;

    /// Harvests heartbeat activity since the last call (zeros for
    /// backends without heartbeats).
    fn take_heartbeat_delta(&self) -> HeartbeatDelta {
        HeartbeatDelta::default()
    }

    /// Harvests per-link activity (reconnects, partition time, bytes by
    /// peer) since the last call; the default covers backends without
    /// real links.
    fn take_link_delta(&self) -> LinkDelta {
        LinkDelta::default()
    }
}

/// The in-process backend: threads, crossbeam channels, a shared health
/// flag, and a condvar barrier — the simulated cluster the repo grew up
/// on, now one implementation of [`Transport`] among several.
pub struct InProcTransport {
    rank: usize,
    size: usize,
    generation: u64,
    senders: Vec<Sender<Message>>,
    receiver: Arc<Receiver<Message>>,
    barrier: Arc<CancellableBarrier>,
    state: Arc<ClusterState>,
}

impl InProcTransport {
    /// Wires an endpoint for `rank` over the given channels and shared
    /// health/barrier primitives (one set per epoch, built by the
    /// launcher).
    pub(crate) fn new(
        rank: usize,
        size: usize,
        generation: u64,
        senders: Vec<Sender<Message>>,
        receiver: Arc<Receiver<Message>>,
        barrier: Arc<CancellableBarrier>,
        state: Arc<ClusterState>,
    ) -> Self {
        InProcTransport {
            rank,
            size,
            generation,
            senders,
            receiver,
            barrier,
            state,
        }
    }
}

impl Transport for InProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn try_send(&mut self, dst: usize, msg: Message) -> SendOutcome {
        match self.senders[dst].try_send(msg) {
            Ok(()) => SendOutcome::Sent,
            Err(TrySendError::Full(m)) => SendOutcome::Full(m),
            Err(TrySendError::Disconnected(m)) => SendOutcome::Closed(m),
        }
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.receiver.try_recv().ok()
    }

    fn recv_wait(&mut self, slice: Duration) -> WaitOutcome {
        match self.receiver.recv_timeout(slice) {
            Ok(msg) => WaitOutcome::Message(msg),
            Err(RecvTimeoutError::Timeout) => WaitOutcome::Idle,
            Err(RecvTimeoutError::Disconnected) => WaitOutcome::Closed,
        }
    }

    fn failed_peer(&self) -> Option<PeerFailure> {
        self.state.check().map(|rank| PeerFailure {
            rank,
            kind: PeerFailureKind::Crashed,
        })
    }

    fn peer_failure(&self, rank: usize) -> Option<PeerFailure> {
        self.state.has_failed(rank).then_some(PeerFailure {
            rank,
            kind: PeerFailureKind::Crashed,
        })
    }

    fn announce_death(&self, rank: usize) {
        self.state.mark_failed(rank);
        self.barrier.cancel(rank);
    }

    fn barrier(&mut self, timeout: Duration) -> Result<(), CommError> {
        self.barrier.wait_for(timeout)
    }

    fn queue_depth(&self, dst: usize) -> usize {
        self.senders[dst].len()
    }

    fn async_sender(&self, dst: usize) -> Option<AsyncSender> {
        let tx = self.senders[dst].clone();
        Some(AsyncSender::new(move |msg| {
            let _ = tx.send(msg);
        }))
    }
}
