//! Same-host shared-memory byte ring.
//!
//! A single-producer/single-consumer ring of bytes backed by a file
//! (preferably on tmpfs — [`shm_dir`] picks `/dev/shm` when present), the
//! data plane of the multi-process transport for ranks that share a host.
//! The crate forbids `unsafe`, so instead of `mmap` the ring uses
//! positioned reads/writes ([`std::os::unix::fs::FileExt`]) against the
//! page cache; for a tmpfs file the kernel serves both sides from the
//! same resident pages, so this is memory-speed without a mapping.
//!
//! Layout: `[head: u64][tail: u64][data: capacity bytes]`. `head` and
//! `tail` are free-running positions (index = position % capacity);
//! `tail` is written only by the producer and `head` only by the
//! consumer, so each 8-byte aligned counter has exactly one writer —
//! the classic SPSC discipline. Frames larger than the capacity stream
//! through in pieces: [`ShmRing::push`] writes as much as fits and
//! spins (bounded by a deadline) for the consumer to drain the rest,
//! and the consumer reassembles frames from the byte stream with
//! [`decode_frame`](super::wire::decode_frame)'s `Truncated` signal.

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Byte offset of the ring data (past the two position counters).
const DATA_OFFSET: u64 = 16;

/// Preferred directory for ring files: tmpfs when the platform has the
/// conventional mount, the system temp dir otherwise.
pub fn shm_dir() -> PathBuf {
    let dev_shm = Path::new("/dev/shm");
    if dev_shm.is_dir() {
        dev_shm.to_path_buf()
    } else {
        std::env::temp_dir()
    }
}

/// One endpoint of a file-backed SPSC byte ring (see module docs).
///
/// Both sides open the same file; the producer calls [`ShmRing::push`] /
/// [`ShmRing::try_push`], the consumer [`ShmRing::try_pop`]. The struct
/// itself is side-agnostic — the SPSC contract (one pusher, one popper)
/// is the caller's to uphold, which the transport does by giving every
/// rank its own inbound ring.
pub struct ShmRing {
    file: File,
    capacity: u64,
}

impl ShmRing {
    /// Creates (truncating) the ring file at `path` with `capacity` data
    /// bytes and zeroed positions.
    pub fn create(path: &Path, capacity: usize) -> io::Result<ShmRing> {
        assert!(capacity > 0, "ring capacity must be positive");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.set_len(DATA_OFFSET + capacity as u64)?;
        file.write_all_at(&[0u8; 16], 0)?;
        Ok(ShmRing {
            file,
            capacity: capacity as u64,
        })
    }

    /// Opens an existing ring file (capacity inferred from its length).
    pub fn open(path: &Path) -> io::Result<ShmRing> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len <= DATA_OFFSET {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "ring file too small to hold its header",
            ));
        }
        Ok(ShmRing {
            file,
            capacity: len - DATA_OFFSET,
        })
    }

    /// Data bytes the ring can hold.
    pub fn capacity(&self) -> usize {
        self.capacity as usize
    }

    fn read_pos(&self, offset: u64) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.file.read_exact_at(&mut b, offset)?;
        Ok(u64::from_le_bytes(b))
    }

    fn write_pos(&self, offset: u64, value: u64) -> io::Result<()> {
        self.file.write_all_at(&value.to_le_bytes(), offset)
    }

    /// Appends as much of `bytes` as currently fits, returning how many
    /// were written (possibly 0 when the ring is full). Producer side.
    pub fn try_push(&self, bytes: &[u8]) -> io::Result<usize> {
        let head = self.read_pos(0)?;
        let tail = self.read_pos(8)?;
        let used = tail.wrapping_sub(head);
        let free = self.capacity - used.min(self.capacity);
        let n = (bytes.len() as u64).min(free);
        if n == 0 {
            return Ok(0);
        }
        let at = tail % self.capacity;
        let first = n.min(self.capacity - at);
        self.file
            .write_all_at(&bytes[..first as usize], DATA_OFFSET + at)?;
        if first < n {
            self.file
                .write_all_at(&bytes[first as usize..n as usize], DATA_OFFSET)?;
        }
        // Publish after the data lands: the consumer only trusts bytes
        // below `tail`.
        self.write_pos(8, tail.wrapping_add(n))?;
        Ok(n as usize)
    }

    /// Writes all of `bytes`, spinning (with a micro-sleep) while the
    /// ring is full, up to `deadline`. This is how frames larger than
    /// the ring capacity stream through a smaller ring. Returns the
    /// bytes written before the deadline (== `bytes.len()` on success).
    pub fn push(&self, bytes: &[u8], deadline: Instant) -> io::Result<usize> {
        let mut done = 0;
        while done < bytes.len() {
            let n = self.try_push(&bytes[done..])?;
            done += n;
            if n == 0 {
                if Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        Ok(done)
    }

    /// Pops up to `buf.len()` available bytes into `buf`, returning how
    /// many were read (0 when the ring is empty). Consumer side.
    pub fn try_pop(&self, buf: &mut [u8]) -> io::Result<usize> {
        let head = self.read_pos(0)?;
        let tail = self.read_pos(8)?;
        let avail = tail.wrapping_sub(head).min(self.capacity);
        let n = (buf.len() as u64).min(avail);
        if n == 0 {
            return Ok(0);
        }
        let at = head % self.capacity;
        let first = n.min(self.capacity - at);
        self.file
            .read_exact_at(&mut buf[..first as usize], DATA_OFFSET + at)?;
        if first < n {
            self.file
                .read_exact_at(&mut buf[first as usize..n as usize], DATA_OFFSET)?;
        }
        self.write_pos(0, head.wrapping_add(n))?;
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_path(name: &str) -> PathBuf {
        shm_dir().join(format!("soifft-ring-test-{}-{name}", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn bytes_round_trip_in_order() {
        let path = ring_path("order");
        let _c = Cleanup(path.clone());
        let ring = ShmRing::create(&path, 64).unwrap();
        let data: Vec<u8> = (0..50u8).collect();
        assert_eq!(ring.try_push(&data).unwrap(), 50);
        let mut out = vec![0u8; 64];
        let n = ring.try_pop(&mut out).unwrap();
        assert_eq!(&out[..n], &data[..]);
    }

    #[test]
    fn wraparound_preserves_content() {
        let path = ring_path("wrap");
        let _c = Cleanup(path.clone());
        let ring = ShmRing::create(&path, 16).unwrap();
        let mut out = vec![0u8; 16];
        // Drive the positions past several wraps.
        for round in 0..10u8 {
            let data: Vec<u8> = (0..11u8).map(|i| i.wrapping_add(round * 11)).collect();
            assert_eq!(ring.try_push(&data).unwrap(), 11);
            let n = ring.try_pop(&mut out).unwrap();
            assert_eq!(&out[..n], &data[..], "round {round}");
        }
    }

    #[test]
    fn full_ring_accepts_nothing_until_drained() {
        let path = ring_path("full");
        let _c = Cleanup(path.clone());
        let ring = ShmRing::create(&path, 8).unwrap();
        assert_eq!(ring.try_push(&[1; 8]).unwrap(), 8);
        assert_eq!(ring.try_push(&[2; 4]).unwrap(), 0);
        let mut out = [0u8; 3];
        assert_eq!(ring.try_pop(&mut out).unwrap(), 3);
        assert_eq!(ring.try_push(&[2; 4]).unwrap(), 3);
    }

    #[test]
    fn oversized_message_streams_through_both_endpoints() {
        let path = ring_path("stream");
        let _c = Cleanup(path.clone());
        let producer = ShmRing::create(&path, 32).unwrap();
        let consumer = ShmRing::open(&path).unwrap();
        let data: Vec<u8> = (0..200u32).map(|i| (i * 7) as u8).collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        let data2 = data.clone();
        let writer = std::thread::spawn(move || producer.push(&data2, deadline).unwrap());
        let mut got = Vec::new();
        let mut buf = [0u8; 16];
        while got.len() < data.len() && Instant::now() < deadline {
            let n = consumer.try_pop(&mut buf).unwrap();
            if n == 0 {
                std::thread::sleep(Duration::from_micros(50));
            }
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(writer.join().unwrap(), data.len());
        assert_eq!(got, data);
    }
}
