//! The TCP mesh backend: ranks on real sockets, possibly real hosts.
//!
//! Topology is a full mesh of unidirectional links: rank `s` dials one
//! TCP connection toward each peer `d` (possibly through the
//! [`netchaos`](super::netchaos) fault proxy) and that connection
//! carries all `s → d` frames; the accepted side is receive-only after
//! answering the handshake. Every connection opens with a
//! generation-stamped [`FrameKind::Hello`] / [`FrameKind::Welcome`]
//! exchange — an acceptor drops a wrong-generation dialer without a
//! Welcome, so a straggler from a dead epoch can never rejoin.
//!
//! **Transparent healing.** Each outbound link is owned by a sender
//! thread holding a bounded frame queue. When the connection breaks the
//! thread re-dials with capped exponential backoff
//! ([`FailureDetection::reconnect_backoff`]), keeping the in-flight
//! frame for retransmission on the fresh connection; the receive side
//! filters re-delivered data frames by per-source sequence number, so a
//! drop-and-reconnect inside the staleness budget is invisible to the
//! layers above (it surfaces only in the [`LinkDelta`] counters).
//!
//! **Escalation.** Continuous link downtime or inbound silence beyond
//! [`FailureDetection::staleness_timeout`] declares the peer down:
//! a [`FrameKind::PeerDown`] notice is broadcast (including *toward*
//! the dead rank — under an asymmetric partition it may still hear us
//! and must abort too), every blocked receive and barrier surfaces
//! [`CommError::PeerDown`], and the [`TcpSupervisor`] respawns the rank
//! set into a bumped generation that resumes from the shared
//! [`CheckpointStore`] — the same failure ladder as the process
//! backend, now driven by a real network fault.
//!
//! **Deadline-bounding.** Every blocking operation is bounded: socket
//! reads and writes carry the staleness timeout, handshakes inherit it,
//! barrier waits take an explicit deadline, and dial attempts are
//! capped — no code path waits forever on a partitioned peer.

use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};

use super::netchaos::{NetChaos, NetChaosEvents, NetChaosPlan};
use super::wire::{self, frame_to_message, message_to_frame, Frame, FrameKind};
use super::{
    AsyncSender, HeartbeatDelta, LinkDelta, PeerFailure, PeerFailureKind, PeerMap, SendOutcome,
    Transport, WaitOutcome,
};
use crate::checkpoint::CheckpointStore;
use crate::resilience::{CommError, FailureDetection, RankOutcome};
use crate::supervisor::{RecoveryCtx, RestartPolicy};
use crate::{classify_panic, ClusterConfig, Comm};

/// Per-peer outbound queue capacity in frames; a full queue surfaces as
/// [`SendOutcome::Full`] backpressure to the link layer.
const OUT_QUEUE_FRAMES: usize = 1024;

/// How long the acceptor sleeps between non-blocking accept polls.
const ACCEPT_SLICE: Duration = Duration::from_millis(5);

/// One rank's launch parameters for the TCP mesh.
#[derive(Clone, Debug)]
pub struct TcpEndpoint {
    /// This rank's id.
    pub rank: usize,
    /// Number of ranks in the cluster.
    pub size: usize,
    /// Supervision generation of this incarnation.
    pub generation: u64,
    /// Restarts that preceded this incarnation.
    pub restarts: u32,
    /// Address this rank listens on ([`TcpTransport::connect`] binds
    /// it; [`TcpTransport::with_listener`] uses the pre-bound socket).
    pub listen: SocketAddr,
    /// Address to dial to reach each rank (`dial[rank]` is unused). In
    /// chaos runs these are the [`NetChaos`] proxy addresses.
    pub dial: Vec<SocketAddr>,
    /// Failure-detection and reconnect timing.
    pub detection: FailureDetection,
}

struct BarrierSvc {
    waiting: Vec<bool>,
    /// Highest barrier ordinal each rank has entered — duplicate
    /// entries re-delivered across a reconnect are ignored.
    entered: Vec<u64>,
    /// Once set, every pending and future entry releases with this
    /// failed rank.
    failed: Option<usize>,
}

struct TcpShared {
    rank: usize,
    size: usize,
    generation: u64,
    detection: FailureDetection,
    alive: AtomicBool,
    peers: PeerMap,
    /// Peers that sent an orderly [`FrameKind::Shutdown`] goodbye —
    /// finished, not failed; staleness detection is suppressed for them.
    finished: Vec<AtomicBool>,
    /// Peers counted as gone (down or finished), for the all-sources-
    /// exhausted receive outcome.
    gone_counted: Vec<AtomicBool>,
    gone: AtomicUsize,
    inbox_tx: Sender<crate::Message>,
    barrier_tx: Sender<u64>,
    barrier: Mutex<BarrierSvc>,
    /// Next acceptable data-frame seq per source: the reconnect
    /// duplicate filter ([`Comm`] stamps strictly increasing per-source
    /// sequence numbers, so re-delivered frames sort below the floor).
    data_floor: Vec<Mutex<u64>>,
    /// Outbound frame queues per destination (`None` at own rank).
    outq: Vec<Option<Sender<Frame>>>,
    last_seen: Mutex<Vec<Instant>>,
    /// Inbound streams, severed at teardown to unblock readers.
    inbound: Mutex<Vec<TcpStream>>,
    hb_sent: AtomicU64,
    reconnects: AtomicU64,
    partition_ns: AtomicU64,
    bytes_to: Vec<AtomicU64>,
}

impl TcpShared {
    fn alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    fn is_finished(&self, rank: usize) -> bool {
        self.finished[rank].load(Ordering::SeqCst)
    }

    fn note_gone(&self, rank: usize) {
        if !self.gone_counted[rank].swap(true, Ordering::SeqCst) {
            self.gone.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn mark_finished(&self, rank: usize) {
        if rank < self.size && !self.finished[rank].swap(true, Ordering::SeqCst) {
            self.note_gone(rank);
        }
    }

    /// Best-effort control/data enqueue toward `dst`.
    fn enqueue(&self, dst: usize, frame: Frame) -> bool {
        match self.outq.get(dst).and_then(|q| q.as_ref()) {
            Some(q) => q.try_send(frame).is_ok(),
            None => false,
        }
    }

    /// Declares `dead` down for `reason` from local detection:
    /// broadcasts the notice to every peer — including the dead rank,
    /// which under an asymmetric partition may still hear us and must
    /// learn it has been declared dead — and fails pending barriers.
    fn declare_down(&self, dead: usize, reason: u64) {
        if dead >= self.size || !self.peers.mark(dead, PeerFailureKind::Down) {
            return;
        }
        self.note_gone(dead);
        if reason == Frame::PEER_DOWN_HEARTBEAT {
            self.peers.hb_missed.fetch_add(1, Ordering::SeqCst);
        }
        let mut notice = Frame::control(FrameKind::PeerDown, dead as u32, self.generation);
        notice.tag = reason;
        for r in 0..self.size {
            if r != self.rank {
                self.enqueue(r, notice.clone());
            }
        }
        if self.rank == 0 {
            self.fail_barrier(dead);
        }
    }

    /// Records a remotely broadcast peer death.
    fn note_remote_down(&self, dead: usize, reason: u64) {
        if dead >= self.size || !self.peers.mark(dead, PeerFailureKind::Down) {
            return;
        }
        self.note_gone(dead);
        if reason == Frame::PEER_DOWN_HEARTBEAT {
            self.peers.hb_missed.fetch_add(1, Ordering::SeqCst);
        }
        if self.rank == 0 {
            self.fail_barrier(dead);
        }
    }

    /// Releases one rank's pending barrier wait with `tag` (0 =
    /// success, `r + 1` = rank `r` died).
    fn release_to(&self, rank: usize, tag: u64) {
        if rank == self.rank {
            let _ = self.barrier_tx.send(tag);
        } else {
            let mut f =
                Frame::control(FrameKind::BarrierRelease, self.rank as u32, self.generation);
            f.tag = tag;
            self.enqueue(rank, f);
        }
    }

    /// Rank 0's barrier coordinator: one entry from `entrant` with its
    /// barrier ordinal `ord`.
    fn barrier_enter(&self, entrant: usize, ord: u64) {
        if entrant >= self.size {
            return;
        }
        enum Action {
            None,
            ReleaseFailed(usize),
            ReleaseAll,
        }
        let action = {
            let mut b = self.barrier.lock().unwrap_or_else(|e| e.into_inner());
            if ord <= b.entered[entrant] {
                Action::None // duplicate re-delivered across a reconnect
            } else {
                b.entered[entrant] = ord;
                if let Some(dead) = b.failed {
                    Action::ReleaseFailed(dead)
                } else {
                    b.waiting[entrant] = true;
                    let all_in = (0..self.size)
                        .all(|r| b.waiting[r] || self.gone_counted[r].load(Ordering::SeqCst));
                    if all_in {
                        for w in b.waiting.iter_mut() {
                            *w = false;
                        }
                        Action::ReleaseAll
                    } else {
                        Action::None
                    }
                }
            }
        };
        match action {
            Action::None => {}
            Action::ReleaseFailed(dead) => self.release_to(entrant, (dead + 1) as u64),
            Action::ReleaseAll => {
                // Remote releases must hit the outbound queues before the
                // local one: releasing rank 0 returns its `barrier()`
                // caller, who may immediately drop the transport — the
                // goodbye Shutdown then retires the sender threads, and a
                // release enqueued after that lands in a disconnected
                // queue and is silently lost (the peer times out).
                for r in (0..self.size)
                    .filter(|&r| r != self.rank)
                    .chain([self.rank])
                {
                    if !self.gone_counted[r].load(Ordering::SeqCst) {
                        self.release_to(r, 0);
                    }
                }
            }
        }
    }

    /// Fails the barrier service (rank 0): pending waiters release with
    /// the dead rank, future entrants release on arrival.
    fn fail_barrier(&self, dead: usize) {
        let mut waiting: Vec<usize> = {
            let mut b = self.barrier.lock().unwrap_or_else(|e| e.into_inner());
            b.failed = Some(dead);
            let w = (0..self.size).filter(|&r| b.waiting[r]).collect();
            for x in b.waiting.iter_mut() {
                *x = false;
            }
            w
        };
        // Self-release last, for the same reason as the all-in release:
        // waking the local waiter can tear the transport down before the
        // remote releases reach the outbound queues.
        waiting.sort_by_key(|&r| r == self.rank);
        for r in waiting {
            self.release_to(r, (dead + 1) as u64);
        }
    }

    fn note_seen(&self, rank: usize) {
        let mut g = self.last_seen.lock().unwrap_or_else(|e| e.into_inner());
        if rank < g.len() {
            g[rank] = Instant::now();
        }
    }
}

/// One rank's endpoint of the TCP mesh (see module docs).
pub struct TcpTransport {
    shared: Arc<TcpShared>,
    inbox: Receiver<crate::Message>,
    barrier_rx: Receiver<u64>,
    barrier_seq: u64,
}

impl TcpTransport {
    /// Binds `endpoint.listen` and wires the mesh endpoint.
    ///
    /// # Errors
    /// Socket errors binding the listener or spawning threads.
    pub fn connect(endpoint: &TcpEndpoint) -> io::Result<TcpTransport> {
        let listener = TcpListener::bind(endpoint.listen)?;
        Self::with_listener(listener, endpoint)
    }

    /// Wires the mesh endpoint over a pre-bound listener (how the
    /// [`TcpSupervisor`] avoids a rebind race with port-0 listeners).
    ///
    /// # Errors
    /// Socket errors configuring the listener.
    pub fn with_listener(
        listener: TcpListener,
        endpoint: &TcpEndpoint,
    ) -> io::Result<TcpTransport> {
        assert!(endpoint.rank < endpoint.size, "rank out of range");
        assert_eq!(
            endpoint.dial.len(),
            endpoint.size,
            "need one dial address per rank"
        );
        listener.set_nonblocking(true)?;
        let (inbox_tx, inbox) = unbounded();
        let (barrier_tx, barrier_rx) = unbounded();
        let size = endpoint.size;
        let mut outq: Vec<Option<Sender<Frame>>> = Vec::with_capacity(size);
        let mut rxs: Vec<Option<Receiver<Frame>>> = Vec::with_capacity(size);
        for d in 0..size {
            if d == endpoint.rank {
                outq.push(None);
                rxs.push(None);
            } else {
                let (tx, rx) = bounded(OUT_QUEUE_FRAMES);
                outq.push(Some(tx));
                rxs.push(Some(rx));
            }
        }
        let shared = Arc::new(TcpShared {
            rank: endpoint.rank,
            size,
            generation: endpoint.generation,
            detection: endpoint.detection,
            alive: AtomicBool::new(true),
            peers: PeerMap::new(size),
            finished: (0..size).map(|_| AtomicBool::new(false)).collect(),
            gone_counted: (0..size).map(|_| AtomicBool::new(false)).collect(),
            gone: AtomicUsize::new(0),
            inbox_tx,
            barrier_tx,
            barrier: Mutex::new(BarrierSvc {
                waiting: vec![false; size],
                entered: vec![0; size],
                failed: None,
            }),
            data_floor: (0..size).map(|_| Mutex::new(0)).collect(),
            outq,
            last_seen: Mutex::new(vec![Instant::now(); size]),
            inbound: Mutex::new(Vec::new()),
            hb_sent: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            partition_ns: AtomicU64::new(0),
            bytes_to: (0..size).map(|_| AtomicU64::new(0)).collect(),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(shared, listener));
        }
        {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || detector_loop(shared));
        }
        for (d, rx) in rxs.into_iter().enumerate() {
            if let Some(rx) = rx {
                let shared = Arc::clone(&shared);
                let addr = endpoint.dial[d];
                std::thread::spawn(move || sender_loop(shared, d, addr, rx));
            }
        }
        Ok(TcpTransport {
            shared,
            inbox,
            barrier_rx,
            barrier_seq: 0,
        })
    }

    fn closed_error(&self) -> CommError {
        match self.shared.peers.first() {
            Some(pf) => pf.into_error(),
            None => CommError::Shutdown,
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Orderly goodbye on every link: a peer that hears Shutdown
        // marks us finished instead of waiting for staleness. Sender
        // threads deliver these after we return (they hold the shared
        // state), then exit.
        for d in 0..self.shared.size {
            if d != self.shared.rank {
                self.shared.enqueue(
                    d,
                    Frame::control(
                        FrameKind::Shutdown,
                        self.shared.rank as u32,
                        self.shared.generation,
                    ),
                );
            }
        }
        self.shared.alive.store(false, Ordering::SeqCst);
        let mut g = self
            .shared
            .inbound
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        for stream in g.drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

impl Transport for TcpTransport {
    fn rank(&self) -> usize {
        self.shared.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn generation(&self) -> u64 {
        self.shared.generation
    }

    fn try_send(&mut self, dst: usize, msg: crate::Message) -> SendOutcome {
        if self.shared.peers.get(dst).is_some() || self.shared.is_finished(dst) {
            return SendOutcome::Closed(msg);
        }
        let Some(q) = self.shared.outq[dst].as_ref() else {
            return SendOutcome::Closed(msg);
        };
        match q.try_send(message_to_frame(dst, msg)) {
            Ok(()) => SendOutcome::Sent,
            Err(TrySendError::Full(f)) => SendOutcome::Full(frame_to_message(f)),
            Err(TrySendError::Disconnected(f)) => SendOutcome::Closed(frame_to_message(f)),
        }
    }

    fn try_recv(&mut self) -> Option<crate::Message> {
        self.inbox.try_recv().ok()
    }

    fn recv_wait(&mut self, slice: Duration) -> WaitOutcome {
        match self.inbox.recv_timeout(slice) {
            Ok(msg) => WaitOutcome::Message(msg),
            Err(RecvTimeoutError::Timeout) => {
                let all_gone = self.shared.gone.load(Ordering::SeqCst) >= self.shared.size - 1;
                if all_gone && self.inbox.is_empty() {
                    WaitOutcome::Closed
                } else {
                    WaitOutcome::Idle
                }
            }
            Err(RecvTimeoutError::Disconnected) => WaitOutcome::Closed,
        }
    }

    fn failed_peer(&self) -> Option<PeerFailure> {
        self.shared.peers.first()
    }

    fn peer_failure(&self, rank: usize) -> Option<PeerFailure> {
        self.shared.peers.get(rank)
    }

    fn announce_death(&self, rank: usize) {
        if self.shared.peers.mark(rank, PeerFailureKind::Crashed) {
            self.shared.note_gone(rank);
            let notice = Frame::control(FrameKind::PeerDown, rank as u32, self.shared.generation);
            for r in 0..self.shared.size {
                if r != self.shared.rank {
                    self.shared.enqueue(r, notice.clone());
                }
            }
            if self.shared.rank == 0 {
                self.shared.fail_barrier(rank);
            }
        }
    }

    fn barrier(&mut self, timeout: Duration) -> Result<(), CommError> {
        self.barrier_seq += 1;
        // Drain releases a previously aborted barrier left behind (the
        // local failure detector can return before the release lands).
        while self.barrier_rx.try_recv().is_ok() {}
        if self.shared.rank == 0 {
            self.shared.barrier_enter(0, self.barrier_seq);
        } else {
            let mut enter = Frame::control(
                FrameKind::BarrierEnter,
                self.shared.rank as u32,
                self.shared.generation,
            );
            enter.seq = self.barrier_seq;
            if !self.shared.enqueue(0, enter) {
                return Err(self.closed_error());
            }
        }
        let end = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= end {
                return Err(CommError::Timeout);
            }
            let slice = Duration::from_millis(10).min(end - now);
            match self.barrier_rx.recv_timeout(slice) {
                Ok(0) => return Ok(()),
                Ok(failed_plus_one) => {
                    return Err(CommError::PeerDown {
                        rank: (failed_plus_one - 1) as usize,
                    })
                }
                Err(RecvTimeoutError::Timeout) => {
                    // The release frame itself can be lost to a
                    // partition; the local detector is the backstop.
                    if let Some(pf) = self.shared.peers.first() {
                        return Err(pf.into_error());
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(self.closed_error()),
            }
        }
    }

    fn queue_depth(&self, dst: usize) -> usize {
        self.shared.outq[dst].as_ref().map_or(0, |q| q.len())
    }

    fn async_sender(&self, dst: usize) -> Option<AsyncSender> {
        let q = self.shared.outq[dst].as_ref()?.clone();
        Some(AsyncSender::new(move |msg| {
            let _ = q.try_send(message_to_frame(dst, msg));
        }))
    }

    fn take_heartbeat_delta(&self) -> HeartbeatDelta {
        HeartbeatDelta {
            sent: self.shared.hb_sent.swap(0, Ordering::SeqCst),
            missed: self.shared.peers.hb_missed.swap(0, Ordering::SeqCst),
        }
    }

    fn take_link_delta(&self) -> LinkDelta {
        LinkDelta {
            reconnects: self.shared.reconnects.swap(0, Ordering::SeqCst),
            partition_seconds: self.shared.partition_ns.swap(0, Ordering::SeqCst) as f64 / 1e9,
            bytes_by_peer: self
                .shared
                .bytes_to
                .iter()
                .map(|b| b.swap(0, Ordering::Relaxed))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Mesh threads
// ---------------------------------------------------------------------

fn accept_loop(shared: Arc<TcpShared>, listener: TcpListener) {
    while shared.alive() {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || inbound_conn(shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_SLICE),
            Err(_) => break,
        }
    }
}

/// Handshakes one accepted connection and runs its reader loop.
fn inbound_conn(shared: Arc<TcpShared>, mut stream: TcpStream) {
    let staleness = shared.detection.staleness_timeout;
    if stream.set_read_timeout(Some(staleness)).is_err()
        || stream.set_write_timeout(Some(staleness)).is_err()
    {
        return;
    }
    let Ok(Ok(hello)) = wire::read_frame(&mut stream) else {
        return;
    };
    let src = hello.src as usize;
    if hello.kind != FrameKind::Hello
        || !hello.is_for_generation(shared.generation)
        || src >= shared.size
        || src == shared.rank
    {
        // Wrong epoch (a straggler) or garbage: close without a
        // Welcome — the dialer's handshake fails typed.
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    if wire::write_frame(
        &mut stream,
        &Frame::control(FrameKind::Welcome, shared.rank as u32, shared.generation),
    )
    .is_err()
    {
        return;
    }
    if let Ok(clone) = stream.try_clone() {
        let mut g = shared.inbound.lock().unwrap_or_else(|e| e.into_inner());
        g.push(clone);
    }
    shared.note_seen(src);
    let mut reader = BufReader::new(stream);
    while shared.alive() {
        match wire::read_frame(&mut reader) {
            Ok(Ok(frame)) => {
                if !frame.is_for_generation(shared.generation) {
                    continue;
                }
                shared.note_seen(src);
                match frame.kind {
                    FrameKind::Data => {
                        let from = frame.src as usize;
                        if from < shared.size {
                            let mut floor = shared.data_floor[from]
                                .lock()
                                .unwrap_or_else(|e| e.into_inner());
                            // Reconnect duplicate filter: Comm stamps
                            // strictly increasing per-source seqs, so a
                            // re-delivered frame sorts below the floor.
                            if frame.seq >= *floor {
                                *floor = frame.seq + 1;
                                let _ = shared.inbox_tx.send(frame_to_message(frame));
                            }
                        }
                    }
                    FrameKind::Heartbeat => {}
                    FrameKind::PeerDown => shared.note_remote_down(frame.src as usize, frame.tag),
                    FrameKind::BarrierEnter => {
                        if shared.rank == 0 {
                            shared.barrier_enter(src, frame.seq);
                        }
                    }
                    FrameKind::BarrierRelease => {
                        let _ = shared.barrier_tx.send(frame.tag);
                    }
                    FrameKind::Shutdown => {
                        shared.mark_finished(src);
                        return;
                    }
                    FrameKind::Hello | FrameKind::Welcome => {}
                }
            }
            // EOF, a read timeout (which may have consumed partial
            // bytes — the stream is no longer frame-aligned), or a
            // decode error: drop the connection. The dialer re-dials;
            // a real death is the detectors' call, not the reader's.
            _ => return,
        }
    }
}

/// Owns the outbound link to `dst`: dials (through the chaos proxy, in
/// chaos runs), drains the frame queue, heartbeats when idle, re-dials
/// on breakage with capped backoff, and escalates to a peer-down
/// declaration when continuous downtime exceeds the staleness budget.
fn sender_loop(shared: Arc<TcpShared>, dst: usize, addr: SocketAddr, q: Receiver<Frame>) {
    let det = shared.detection;
    let hb = Frame::control(FrameKind::Heartbeat, shared.rank as u32, shared.generation);
    let mut conn: Option<TcpStream> = None;
    let mut pending: Option<Frame> = None;
    let mut down_since: Option<Instant> = None;
    let mut attempt: u32 = 0;
    let mut ever_connected = false;
    loop {
        if shared.peers.get(dst).is_some() || shared.is_finished(dst) {
            break;
        }
        if pending.is_none() {
            match q.recv_timeout(det.heartbeat_interval) {
                Ok(f) => pending = Some(f),
                Err(RecvTimeoutError::Timeout) => {
                    if !shared.alive() {
                        break;
                    }
                    pending = Some(hb.clone());
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        if conn.is_none() {
            let since = *down_since.get_or_insert_with(Instant::now);
            if since.elapsed() > det.staleness_timeout {
                if ever_connected {
                    shared
                        .partition_ns
                        .fetch_add(since.elapsed().as_nanos() as u64, Ordering::SeqCst);
                }
                shared.declare_down(dst, Frame::PEER_DOWN_PARTITION);
                break;
            }
            match dial(&shared, addr) {
                Ok(stream) => {
                    if ever_connected {
                        shared.reconnects.fetch_add(1, Ordering::SeqCst);
                        shared
                            .partition_ns
                            .fetch_add(since.elapsed().as_nanos() as u64, Ordering::SeqCst);
                    }
                    ever_connected = true;
                    down_since = None;
                    attempt = 0;
                    conn = Some(stream);
                }
                Err(_) => {
                    if !shared.alive() {
                        break;
                    }
                    std::thread::sleep(det.reconnect_backoff(attempt));
                    attempt = attempt.saturating_add(1);
                    // A queued heartbeat is pointless on a dead link.
                    if pending
                        .as_ref()
                        .is_some_and(|f| f.kind == FrameKind::Heartbeat)
                    {
                        pending = None;
                    }
                    continue;
                }
            }
        }
        if conn.as_ref().is_some_and(link_is_dead) {
            // The peer's FIN/RST arrived even though writes may still
            // be succeeding: a half-closed socket keeps ACKing into a
            // discarded buffer, so a severed link does not reliably
            // fail writes. Cycle the zombie connection now instead of
            // waiting for a write error that may never come.
            if let Some(c) = conn.take() {
                let _ = c.shutdown(Shutdown::Both);
            }
            if pending
                .as_ref()
                .is_some_and(|f| f.kind == FrameKind::Heartbeat)
            {
                pending = None;
            }
            continue;
        }
        let frame = pending.take().expect("pending frame present");
        match wire::write_frame(conn.as_mut().expect("connected"), &frame) {
            Ok(()) => {
                shared.bytes_to[dst].fetch_add(frame.encoded_len() as u64, Ordering::Relaxed);
                match frame.kind {
                    FrameKind::Heartbeat => {
                        shared.hb_sent.fetch_add(1, Ordering::SeqCst);
                    }
                    FrameKind::Shutdown => break, // goodbye delivered
                    _ => {}
                }
            }
            Err(_) => {
                // Connection broke (or the write timed out half-way):
                // drop it and re-dial; the frame is retransmitted on
                // the fresh connection (the receiver's seq floor drops
                // the duplicate if the old write did land).
                if let Some(c) = conn.take() {
                    let _ = c.shutdown(Shutdown::Both);
                }
                if frame.kind != FrameKind::Heartbeat {
                    pending = Some(frame);
                }
            }
        }
    }
}

/// Liveness probe for an outbound connection. After the Welcome
/// handshake the acceptor never writes again, so the dialer's read side
/// carries no data — it is a pure liveness channel: a nonblocking read
/// returns `WouldBlock` on a healthy idle link, and EOF or an error the
/// moment the peer's FIN/RST lands. This is the only reliable local
/// signal for a severed link, because writes into a half-closed socket
/// can keep succeeding indefinitely (the remote kernel ACKs into a
/// discarded buffer).
fn link_is_dead(conn: &TcpStream) -> bool {
    if conn.set_nonblocking(true).is_err() {
        return true;
    }
    let mut probe = [0u8; 1];
    let dead = match io::Read::read(&mut (&*conn), &mut probe) {
        // EOF, or protocol-violating bytes after the handshake.
        Ok(_) => true,
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => false,
        Err(e) if e.kind() == io::ErrorKind::Interrupted => false,
        Err(_) => true,
    };
    dead || conn.set_nonblocking(false).is_err()
}

fn dial(shared: &Arc<TcpShared>, addr: SocketAddr) -> io::Result<TcpStream> {
    let det = shared.detection;
    let connect_timeout = det.staleness_timeout.min(Duration::from_secs(2));
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(det.staleness_timeout))?;
    stream.set_write_timeout(Some(det.staleness_timeout))?;
    wire::write_frame(
        &mut stream,
        &Frame::control(FrameKind::Hello, shared.rank as u32, shared.generation),
    )?;
    let welcome = wire::read_frame(&mut stream)?
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if welcome.kind != FrameKind::Welcome || !welcome.is_for_generation(shared.generation) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "peer rejected handshake (wrong kind or generation)",
        ));
    }
    Ok(stream)
}

/// Watches inbound traffic per peer and declares staleness — the
/// second prong of the dual detector (the sender threads watch
/// outbound downtime), which is what catches asymmetric partitions.
fn detector_loop(shared: Arc<TcpShared>) {
    loop {
        std::thread::sleep(shared.detection.poll_period);
        if !shared.alive() {
            break;
        }
        let now = Instant::now();
        let stale: Vec<usize> = {
            let seen = shared.last_seen.lock().unwrap_or_else(|e| e.into_inner());
            (0..shared.size)
                .filter(|&r| {
                    r != shared.rank
                        && !shared.is_finished(r)
                        && shared.peers.get(r).is_none()
                        && now.duration_since(seen[r]) > shared.detection.staleness_timeout
                })
                .collect()
        };
        for r in stale {
            shared.declare_down(r, Frame::PEER_DOWN_HEARTBEAT);
        }
    }
}

// ---------------------------------------------------------------------
// TCP supervisor
// ---------------------------------------------------------------------

/// Launch options for a [`TcpSupervisor`].
#[derive(Clone, Debug, Default)]
pub struct TcpConfig {
    /// Comm-layer configuration for every rank; its `detection` field
    /// drives the mesh's failure detection and reconnect timing.
    pub cluster: ClusterConfig,
    /// Respawn budget and backoff across epochs.
    pub restart: RestartPolicy,
    /// Scripted network chaos, applied only to the generation named in
    /// the plan (a respawned epoch runs fault-free).
    pub chaos: Option<NetChaosPlan>,
}

/// What a supervised TCP-mesh run produced.
pub struct TcpRun<T> {
    /// Final epoch's per-rank outcomes.
    pub outcomes: Vec<RankOutcome<T>>,
    /// Epochs launched (1 = fault-free).
    pub epochs: u64,
    /// Respawns performed.
    pub restarts: u32,
    /// Typed [`CommError::PeerDown`] aborts observed across all epochs
    /// — how partitions surface, since no thread actually dies.
    pub peer_down_aborts: u64,
    /// What the chaos proxy did, when one was installed.
    pub chaos_events: Option<NetChaosEvents>,
    /// The shared checkpoint store (inspectable after the run).
    pub store: Arc<CheckpointStore>,
}

impl<T> TcpRun<T> {
    /// True when every rank of the final epoch returned a value.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_ok())
    }
}

/// Runs ranks as threads over a loopback TCP mesh, respawning the set
/// into a bumped generation when an epoch fails — the TCP sibling of
/// the in-process [`Supervisor`](crate::Supervisor) and the process
/// [`ProcSupervisor`](super::proc::ProcSupervisor).
///
/// One semantic difference from the in-process supervisor: a network
/// partition surfaces as a *typed error* on every rank (no thread
/// dies), so this supervisor respawns on any non-Ok outcome — typed
/// comm errors included — bounded by the restart policy.
pub struct TcpSupervisor {
    config: TcpConfig,
}

impl TcpSupervisor {
    /// A supervisor with the given options.
    pub fn new(config: TcpConfig) -> Self {
        TcpSupervisor { config }
    }

    /// Runs `ranks` rank bodies over a fresh loopback mesh per epoch.
    /// `f(comm, ctx)` is each rank's work; an `Err` return is the typed
    /// abort path (what a partition produces on every survivor).
    ///
    /// # Errors
    /// Socket errors standing up listeners or the chaos proxy — rank
    /// failures are *outcomes*, not errors.
    pub fn run<T, F>(&self, ranks: usize, f: F) -> io::Result<TcpRun<T>>
    where
        T: Send,
        F: Fn(&mut Comm, &RecoveryCtx) -> Result<T, CommError> + Sync,
    {
        assert!(ranks >= 1, "need at least one rank");
        let store = Arc::new(CheckpointStore::new(ranks));
        let mut generation = 0u64;
        let mut restarts = 0u32;
        let mut peer_down_aborts = 0u64;
        let mut chaos_events: Option<NetChaosEvents> = None;
        loop {
            let mut listeners = Vec::with_capacity(ranks);
            let mut real = Vec::with_capacity(ranks);
            for _ in 0..ranks {
                let l = TcpListener::bind("127.0.0.1:0")?;
                real.push(l.local_addr()?);
                listeners.push(l);
            }
            let chaos = match &self.config.chaos {
                Some(plan) if plan.generation == generation => {
                    Some(NetChaos::install(&real, plan)?)
                }
                _ => None,
            };
            let ctx = RecoveryCtx::resume(Arc::clone(&store), generation, restarts);
            let detection = self.config.cluster.detection;
            let outcomes: Vec<RankOutcome<T>> = {
                let ctx = &ctx;
                let f = &f;
                let cluster = &self.config.cluster;
                let chaos_ref = chaos.as_ref();
                let real = &real;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = listeners
                        .into_iter()
                        .enumerate()
                        .map(|(r, listener)| {
                            let dial = chaos_ref.map_or_else(|| real.clone(), |c| c.dial(r));
                            scope.spawn(move || {
                                let ep = TcpEndpoint {
                                    rank: r,
                                    size: ranks,
                                    generation,
                                    restarts,
                                    listen: real[r],
                                    dial,
                                    detection,
                                };
                                let transport = match TcpTransport::with_listener(listener, &ep) {
                                    Ok(t) => t,
                                    Err(e) => {
                                        return RankOutcome::Panicked(format!(
                                            "transport setup failed: {e}"
                                        ))
                                    }
                                };
                                let mut comm = Comm::from_transport(Box::new(transport), cluster);
                                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                    f(&mut comm, ctx)
                                }));
                                match result {
                                    Ok(Ok(v)) => RankOutcome::Ok(v),
                                    Ok(Err(e)) => RankOutcome::Err(e),
                                    Err(payload) => classify_panic(payload),
                                }
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|_| {
                                RankOutcome::Panicked("rank thread died".into())
                            })
                        })
                        .collect()
                })
            };
            if let Some(c) = &chaos {
                chaos_events = Some(c.events());
                c.shutdown();
            }
            peer_down_aborts += outcomes
                .iter()
                .filter(|o| matches!(o, RankOutcome::Err(CommError::PeerDown { .. })))
                .count() as u64;
            let all_ok = outcomes.iter().all(|o| o.is_ok());
            if all_ok || restarts >= self.config.restart.max_restarts {
                return Ok(TcpRun {
                    outcomes,
                    epochs: generation + 1,
                    restarts,
                    peer_down_aborts,
                    chaos_events,
                    store,
                });
            }
            std::thread::sleep(self.config.restart.backoff(restarts));
            restarts += 1;
            generation += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Message;

    fn endpoint(rank: usize, size: usize, dial: Vec<SocketAddr>) -> TcpEndpoint {
        TcpEndpoint {
            rank,
            size,
            generation: 0,
            restarts: 0,
            listen: "127.0.0.1:0".parse().expect("literal addr"),
            dial,
            detection: FailureDetection {
                staleness_timeout: Duration::from_secs(5),
                ..FailureDetection::default()
            },
        }
    }

    #[test]
    fn two_rank_mesh_moves_messages_and_barriers() {
        let l0 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let l1 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let dial = vec![
            l0.local_addr().expect("addr"),
            l1.local_addr().expect("addr"),
        ];
        let d0 = dial.clone();
        let d1 = dial.clone();
        let h0 = std::thread::spawn(move || {
            let mut t = TcpTransport::with_listener(l0, &endpoint(0, 2, d0)).expect("rank 0");
            let msg = Message {
                src: 0,
                tag: 7,
                seq: 0,
                checksum: 0,
                generation: 0,
                data: vec![soifft_num::c64::new(1.5, -2.5)],
            };
            assert!(matches!(t.try_send(1, msg), SendOutcome::Sent));
            t.barrier(Duration::from_secs(10)).expect("barrier");
        });
        let h1 = std::thread::spawn(move || {
            let mut t = TcpTransport::with_listener(l1, &endpoint(1, 2, d1)).expect("rank 1");
            let got = loop {
                match t.recv_wait(Duration::from_millis(20)) {
                    WaitOutcome::Message(m) => break m,
                    WaitOutcome::Idle => continue,
                    WaitOutcome::Closed => panic!("mesh closed before delivery"),
                }
            };
            assert_eq!(got.src, 0);
            assert_eq!(got.tag, 7);
            assert_eq!(got.data.len(), 1);
            t.barrier(Duration::from_secs(10)).expect("barrier");
        });
        h0.join().expect("rank 0 thread");
        h1.join().expect("rank 1 thread");
    }

    #[test]
    fn stale_generation_dialer_is_rejected_without_welcome() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut ep = endpoint(0, 2, vec![addr, addr]);
        ep.generation = 3;
        let _t = TcpTransport::with_listener(listener, &ep).expect("transport");
        // A dialer from a dead epoch: Hello carries generation 2.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        wire::write_frame(&mut stream, &Frame::control(FrameKind::Hello, 1, 2))
            .expect("hello goes out");
        // No Welcome: the connection is closed without a reply.
        match wire::read_frame(&mut stream) {
            Err(_) => {}
            Ok(frame) => panic!("stale dialer must not be welcomed, got {frame:?}"),
        }
    }
}
