//! Length-prefixed, checksummed wire codec for the multi-process
//! transport.
//!
//! Every frame that crosses a socket or a shared-memory ring is encoded
//! as a fixed 72-byte header followed by the payload (complex values as
//! little-endian `f64` pairs). The header carries a magic/version
//! prefix, the frame kind, routing metadata (src/dst/tag/seq), the
//! sender's supervision *generation*, the payload length, a payload
//! checksum, and finally an FNV-1a checksum over the header bytes
//! themselves — so a corrupted length prefix is detected *before* the
//! decoder trusts it, and a corrupted payload is detected before the
//! message is surfaced to the rank.
//!
//! The codec is pure (bytes in, [`Frame`] out) and shared by both
//! directions of both substrates; the streaming helpers
//! [`write_frame`] / [`read_frame`] layer it over `std::io`.

use std::io::{self, Read, Write};

use soifft_num::c64;

use crate::resilience::checksum;

/// Magic prefix of every frame (`b"SOIF"` little-endian).
pub const MAGIC: u32 = 0x4649_4F53;
/// Wire protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Encoded header size in bytes (fixed): magic(4) + version(1) +
/// kind(1) + reserved(2) + src(4) + dst(4) + tag(8) + seq(8) +
/// message checksum(8) + generation(8) + payload checksum(8) +
/// payload length(8) + header checksum(8).
pub const HEADER_LEN: usize = 72;
/// Ceiling on the element count a frame may claim. A corrupted length
/// prefix that survives the header checksum (or a hostile peer) is
/// rejected with [`WireError::LengthOverflow`] instead of driving a
/// multi-gigabyte allocation.
pub const MAX_PAYLOAD_ELEMS: u64 = 1 << 28;

/// What a frame is for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Application payload: a tagged rank-to-rank message.
    Data = 0,
    /// Child → hub handshake: "rank `src` of generation `generation`
    /// reporting for duty".
    Hello = 1,
    /// Hub → child handshake acknowledgement (generation echoed back).
    Welcome = 2,
    /// Child → hub liveness beacon (the failure detector's input).
    Heartbeat = 3,
    /// Hub → children failure notice: rank `src` is dead. `tag` carries
    /// the detection reason ([`Frame::PEER_DOWN_EXIT`] /
    /// [`Frame::PEER_DOWN_HEARTBEAT`]).
    PeerDown = 4,
    /// Child → hub barrier entry (seq = the child's barrier ordinal).
    BarrierEnter = 5,
    /// Hub → child barrier release; `tag` 0 = success, `r + 1` = rank
    /// `r` died while the barrier was pending.
    BarrierRelease = 6,
    /// Orderly teardown of the connection.
    Shutdown = 7,
}

impl FrameKind {
    fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0 => FrameKind::Data,
            1 => FrameKind::Hello,
            2 => FrameKind::Welcome,
            3 => FrameKind::Heartbeat,
            4 => FrameKind::PeerDown,
            5 => FrameKind::BarrierEnter,
            6 => FrameKind::BarrierRelease,
            7 => FrameKind::Shutdown,
            _ => return None,
        })
    }
}

/// A decoded wire frame.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// What the frame is for.
    pub kind: FrameKind,
    /// Sending rank (for [`FrameKind::PeerDown`], the rank that died).
    pub src: u32,
    /// Destination rank ([`FrameKind::Data`] only; 0 otherwise).
    pub dst: u32,
    /// Message tag (kind-specific side-channel for control frames).
    pub tag: u64,
    /// Per-sender sequence number.
    pub seq: u64,
    /// The *message-level* checksum stamped by the link layer (0 when
    /// link verification is off). Carried opaquely; the wire layer has
    /// its own payload checksum in the header.
    pub checksum: u64,
    /// Supervision generation of the sending incarnation.
    pub generation: u64,
    /// Payload elements.
    pub payload: Vec<c64>,
}

impl Frame {
    /// [`FrameKind::PeerDown`] reason: the process exited (or its
    /// connection broke).
    pub const PEER_DOWN_EXIT: u64 = 0;
    /// [`FrameKind::PeerDown`] reason: heartbeats went stale while the
    /// process was still nominally alive.
    pub const PEER_DOWN_HEARTBEAT: u64 = 1;
    /// [`FrameKind::PeerDown`] reason: an outbound connection stayed
    /// broken past the staleness budget (a network partition, not a
    /// process death).
    pub const PEER_DOWN_PARTITION: u64 = 2;

    /// A payload-free control frame of `kind` from `src` in `generation`.
    pub fn control(kind: FrameKind, src: u32, generation: u64) -> Frame {
        Frame {
            kind,
            src,
            dst: 0,
            tag: 0,
            seq: 0,
            checksum: 0,
            generation,
            payload: Vec::new(),
        }
    }

    /// True when the frame belongs to supervision epoch `generation`.
    /// Transports drop cross-epoch frames at ingestion — a respawned
    /// epoch must never consume traffic a dead incarnation left in
    /// flight.
    pub fn is_for_generation(&self, generation: u64) -> bool {
        self.generation == generation
    }

    /// Bytes this frame occupies on the wire once encoded.
    pub fn encoded_len(&self) -> usize {
        HEADER_LEN + self.payload.len() * 16
    }
}

/// Lifts a received data frame into the link-layer [`Message`] the
/// resilience stack consumes (shared by every wire-speaking backend).
pub(crate) fn frame_to_message(f: Frame) -> crate::Message {
    crate::Message {
        src: f.src as usize,
        tag: f.tag,
        seq: f.seq,
        checksum: f.checksum,
        generation: f.generation,
        data: f.payload,
    }
}

/// Lowers an outbound [`Message`] for `dst` onto a data frame.
pub(crate) fn message_to_frame(dst: usize, m: crate::Message) -> Frame {
    Frame {
        kind: FrameKind::Data,
        src: m.src as u32,
        dst: dst as u32,
        tag: m.tag,
        seq: m.seq,
        checksum: m.checksum,
        generation: m.generation,
        payload: m.data,
    }
}

/// Why a byte sequence failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes are not [`MAGIC`] — the stream is not
    /// frame-aligned (or not ours).
    BadMagic,
    /// The frame claims a protocol version this build does not speak.
    BadVersion(u8),
    /// The kind byte is not a known [`FrameKind`].
    BadKind(u8),
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes the complete frame needs.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The length prefix claims more than [`MAX_PAYLOAD_ELEMS`] elements.
    LengthOverflow(u64),
    /// The header bytes fail their own checksum (covers the length
    /// prefix and all routing metadata).
    HeaderCorrupt,
    /// The payload bytes fail the header's payload checksum.
    PayloadCorrupt,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Truncated { needed, have } => {
                write!(f, "truncated frame: need {needed} bytes, have {have}")
            }
            WireError::LengthOverflow(n) => {
                write!(
                    f,
                    "length prefix claims {n} elements (cap {MAX_PAYLOAD_ELEMS})"
                )
            }
            WireError::HeaderCorrupt => write!(f, "frame header fails its checksum"),
            WireError::PayloadCorrupt => write!(f, "frame payload fails its checksum"),
        }
    }
}

impl std::error::Error for WireError {}

/// FNV-1a over raw bytes (header checksum; the payload uses the shared
/// word-wise [`checksum`] the rest of the stack uses).
fn fnv1a(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    bytes
        .iter()
        .fold(SEED, |h, &b| (h ^ b as u64).wrapping_mul(PRIME))
}

/// Encodes `frame` into a self-contained byte buffer.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + frame.payload.len() * 16);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(frame.kind as u8);
    out.extend_from_slice(&[0u8; 2]); // reserved
    out.extend_from_slice(&frame.src.to_le_bytes());
    out.extend_from_slice(&frame.dst.to_le_bytes());
    out.extend_from_slice(&frame.tag.to_le_bytes());
    out.extend_from_slice(&frame.seq.to_le_bytes());
    out.extend_from_slice(&frame.checksum.to_le_bytes());
    out.extend_from_slice(&frame.generation.to_le_bytes());
    out.extend_from_slice(&checksum(&frame.payload).to_le_bytes());
    out.extend_from_slice(&(frame.payload.len() as u64).to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN - 8);
    out.extend_from_slice(&fnv1a(&out).to_le_bytes());
    for z in &frame.payload {
        out.extend_from_slice(&z.re.to_le_bytes());
        out.extend_from_slice(&z.im.to_le_bytes());
    }
    out
}

fn read_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().expect("slice is 4 bytes"))
}

fn read_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().expect("slice is 8 bytes"))
}

/// Decoded header: everything but the payload, plus the payload's
/// expected element count and checksum.
struct Header {
    kind: FrameKind,
    src: u32,
    dst: u32,
    tag: u64,
    seq: u64,
    checksum: u64,
    generation: u64,
    payload_checksum: u64,
    payload_len: usize,
}

fn decode_header(bytes: &[u8]) -> Result<Header, WireError> {
    if bytes.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    if read_u32(bytes, 0) != MAGIC {
        return Err(WireError::BadMagic);
    }
    // The header checksum vouches for every field after the magic —
    // verify it before trusting the version, kind, or length prefix.
    let stored = read_u64(bytes, HEADER_LEN - 8);
    if fnv1a(&bytes[..HEADER_LEN - 8]) != stored {
        return Err(WireError::HeaderCorrupt);
    }
    if bytes[4] != VERSION {
        return Err(WireError::BadVersion(bytes[4]));
    }
    let kind = FrameKind::from_u8(bytes[5]).ok_or(WireError::BadKind(bytes[5]))?;
    let payload_len = read_u64(bytes, 56);
    if payload_len > MAX_PAYLOAD_ELEMS {
        return Err(WireError::LengthOverflow(payload_len));
    }
    Ok(Header {
        kind,
        src: read_u32(bytes, 8),
        dst: read_u32(bytes, 12),
        tag: read_u64(bytes, 16),
        seq: read_u64(bytes, 24),
        checksum: read_u64(bytes, 32),
        generation: read_u64(bytes, 40),
        payload_checksum: read_u64(bytes, 48),
        payload_len: payload_len as usize,
    })
}

/// Decodes one frame from the front of `bytes`, returning it together
/// with the number of bytes consumed.
///
/// # Errors
/// Any [`WireError`]; [`WireError::Truncated`] in particular means "feed
/// me more bytes" to a streaming caller accumulating from a ring.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), WireError> {
    let h = decode_header(bytes)?;
    let total = HEADER_LEN + h.payload_len * 16;
    if bytes.len() < total {
        return Err(WireError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    let mut payload = Vec::with_capacity(h.payload_len);
    let body = &bytes[HEADER_LEN..total];
    for pair in body.chunks_exact(16) {
        let re = f64::from_le_bytes(pair[..8].try_into().expect("slice is 8 bytes"));
        let im = f64::from_le_bytes(pair[8..].try_into().expect("slice is 8 bytes"));
        payload.push(c64::new(re, im));
    }
    if checksum(&payload) != h.payload_checksum {
        return Err(WireError::PayloadCorrupt);
    }
    Ok((
        Frame {
            kind: h.kind,
            src: h.src,
            dst: h.dst,
            tag: h.tag,
            seq: h.seq,
            checksum: h.checksum,
            generation: h.generation,
            payload,
        },
        total,
    ))
}

/// Writes one encoded frame to `w` (a socket): a single `write_all` of
/// the encoded bytes, so concurrent writers serialized by a lock never
/// interleave partial frames.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Reads one frame from `r` (a socket), blocking until it is complete.
///
/// # Errors
/// * `Ok(Err(_))` — the bytes arrived but fail to decode (corruption).
/// * `Err(_)` — the underlying stream failed or closed mid-frame
///   (`UnexpectedEof` on orderly close between frames).
pub fn read_frame(r: &mut impl Read) -> io::Result<Result<Frame, WireError>> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let h = match decode_header(&header) {
        Ok(h) => h,
        Err(e) => return Ok(Err(e)),
    };
    let mut body = vec![0u8; h.payload_len * 16];
    r.read_exact(&mut body)?;
    let mut buf = Vec::with_capacity(HEADER_LEN + body.len());
    buf.extend_from_slice(&header);
    buf.extend_from_slice(&body);
    Ok(decode_frame(&buf).map(|(f, _)| f))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_frame(len: usize) -> Frame {
        Frame {
            kind: FrameKind::Data,
            src: 2,
            dst: 5,
            tag: 77,
            seq: 12,
            checksum: 0xDEAD_BEEF,
            generation: 3,
            payload: (0..len).map(|i| c64::new(i as f64, -(i as f64))).collect(),
        }
    }

    #[test]
    fn round_trip_preserves_every_field() {
        for len in [0usize, 1, 2, 7, 64, 1023] {
            let f = data_frame(len);
            let bytes = encode_frame(&f);
            let (back, used) = decode_frame(&bytes).expect("clean frame decodes");
            assert_eq!(used, bytes.len());
            assert_eq!(back, f);
        }
    }

    #[test]
    fn truncated_header_and_body_report_needed_bytes() {
        let bytes = encode_frame(&data_frame(4));
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { needed, have }) => {
                    assert_eq!(have, cut);
                    assert!(needed > cut);
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn corrupted_length_prefix_is_caught_by_header_checksum() {
        let mut bytes = encode_frame(&data_frame(4));
        bytes[56] ^= 0xFF; // low byte of the length prefix
        assert_eq!(decode_frame(&bytes), Err(WireError::HeaderCorrupt));
    }

    #[test]
    fn overflowing_length_prefix_is_rejected_even_with_fixed_checksum() {
        let f = Frame {
            payload: Vec::new(),
            ..data_frame(0)
        };
        let mut bytes = encode_frame(&f);
        bytes[56..64].copy_from_slice(&(MAX_PAYLOAD_ELEMS + 1).to_le_bytes());
        let sum = fnv1a(&bytes[..HEADER_LEN - 8]).to_le_bytes();
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&sum);
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::LengthOverflow(MAX_PAYLOAD_ELEMS + 1))
        );
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut bytes = encode_frame(&data_frame(8));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(decode_frame(&bytes), Err(WireError::PayloadCorrupt));
    }

    #[test]
    fn streaming_read_matches_slice_decode() {
        let f = data_frame(33);
        let bytes = encode_frame(&f);
        let mut cursor = std::io::Cursor::new(bytes);
        let got = read_frame(&mut cursor).expect("io ok").expect("decodes");
        assert_eq!(got, f);
    }
}
