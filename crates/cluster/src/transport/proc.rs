//! The multi-process backend: real OS processes, real `kill -9`.
//!
//! Topology is hub-and-spoke: a parent process (the
//! [`ProcSupervisor`]) binds a Unix-domain socket, spawns one child
//! process per rank, and routes frames between them. Children connect
//! with a [`FrameKind::Hello`] handshake carrying their rank id and
//! supervision generation; the hub validates the generation and answers
//! [`FrameKind::Welcome`] — a straggler from a dead epoch can never
//! join the new one.
//!
//! Data frames travel child → hub over the socket and hub → child
//! either over the same socket or (default) through a per-rank inbound
//! [`ShmRing`] — the same-host shared-memory data plane. Control frames
//! (peer-death notices, barrier releases) always use the socket.
//!
//! **Failure detection** is two-pronged: every child runs a heartbeat
//! thread beaconing [`FrameKind::Heartbeat`] at a configurable
//! interval, and the supervisor both polls child exit statuses and
//! watches heartbeat staleness. A peer lost either way is broadcast as
//! [`FrameKind::PeerDown`] (with the detection reason), which surfaces
//! on every survivor as [`CommError::PeerDown`] from any blocking
//! receive or barrier — no survivor ever hangs on a corpse.
//!
//! **Recovery** reuses the epoch/generation protocol of the in-process
//! [`Supervisor`](crate::Supervisor): when a rank dies the whole set is
//! respawned under `generation + 1` (bounded by a
//! [`RestartPolicy`]), and children resume from the disk-persisted
//! [`CheckpointStore`](crate::CheckpointStore) the supervisor points
//! them at via [`ENV_CKPT_DIR`].

use std::io::{self, BufReader};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, ExitStatus};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};

use super::shm::ShmRing;
use super::wire::{self, frame_to_message, message_to_frame, Frame, FrameKind};
use super::{
    AsyncSender, HeartbeatDelta, LinkDelta, PeerFailure, PeerFailureKind, PeerMap, SendOutcome,
    Transport, WaitOutcome,
};
use crate::resilience::{CommError, FailureDetection};
use crate::supervisor::RestartPolicy;
use crate::Message;

/// Env var carrying the child's rank id.
pub const ENV_RANK: &str = "SOIFFT_PROC_RANK";
/// Env var carrying the cluster size.
pub const ENV_SIZE: &str = "SOIFFT_PROC_SIZE";
/// Env var carrying the supervision generation of this launch.
pub const ENV_GENERATION: &str = "SOIFFT_PROC_GENERATION";
/// Env var carrying the restart count so far (for recovery reporting).
pub const ENV_RESTARTS: &str = "SOIFFT_PROC_RESTARTS";
/// Env var carrying the hub's Unix-domain socket path.
pub const ENV_SOCKET: &str = "SOIFFT_PROC_SOCKET";
/// Env var carrying this rank's inbound shared-memory ring path (absent
/// when the data plane is socket-only).
pub const ENV_RING: &str = "SOIFFT_PROC_RING";
/// Env var carrying the heartbeat beacon interval in milliseconds.
pub const ENV_HB_INTERVAL_MS: &str = "SOIFFT_PROC_HB_INTERVAL_MS";
/// Env var carrying the heartbeat staleness timeout in milliseconds.
pub const ENV_HB_TIMEOUT_MS: &str = "SOIFFT_PROC_HB_TIMEOUT_MS";
/// Env var carrying the shared on-disk checkpoint directory.
pub const ENV_CKPT_DIR: &str = "SOIFFT_PROC_CKPT_DIR";

/// Exit code a child uses to report "a peer died and I aborted with a
/// typed [`CommError`]" — a casualty of someone else's death, which the
/// supervisor distinguishes from the death itself.
pub const CHILD_COMM_ABORT: i32 = 42;

/// Default capacity of each rank's inbound shared-memory ring.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
    std::env::var(key).ok()?.parse().ok()
}

/// A child process's view of its launch parameters, decoded from the
/// environment the [`ProcSupervisor`] set.
#[derive(Clone, Debug)]
pub struct ProcEndpoint {
    /// This child's rank id.
    pub rank: usize,
    /// Number of ranks in the cluster.
    pub size: usize,
    /// Supervision generation of this incarnation.
    pub generation: u64,
    /// Restarts that preceded this incarnation.
    pub restarts: u32,
    /// The hub socket to connect to.
    pub socket: PathBuf,
    /// This rank's inbound shared-memory ring, when the data plane is
    /// shm.
    pub ring: Option<PathBuf>,
    /// The shared on-disk checkpoint directory, when recovery is on.
    pub checkpoint_dir: Option<PathBuf>,
    /// Heartbeat beacon interval.
    pub heartbeat_interval: Duration,
    /// Heartbeat staleness timeout (informational on the child side).
    pub heartbeat_timeout: Duration,
}

impl ProcEndpoint {
    /// Decodes the launch environment; `None` when not running as a
    /// supervised rank process (the standard "am I a child?" probe).
    pub fn from_env() -> Option<ProcEndpoint> {
        let rank = env_parse(ENV_RANK)?;
        let size = env_parse(ENV_SIZE)?;
        let socket = PathBuf::from(std::env::var(ENV_SOCKET).ok()?);
        Some(ProcEndpoint {
            rank,
            size,
            generation: env_parse(ENV_GENERATION).unwrap_or(0),
            restarts: env_parse(ENV_RESTARTS).unwrap_or(0),
            socket,
            ring: std::env::var(ENV_RING).ok().map(PathBuf::from),
            checkpoint_dir: std::env::var(ENV_CKPT_DIR).ok().map(PathBuf::from),
            heartbeat_interval: Duration::from_millis(env_parse(ENV_HB_INTERVAL_MS).unwrap_or(50)),
            heartbeat_timeout: Duration::from_millis(env_parse(ENV_HB_TIMEOUT_MS).unwrap_or(1000)),
        })
    }
}

/// The child-side endpoint of the multi-process transport (see module
/// docs): one hub socket (control + outbound data), an optional inbound
/// shm ring, a reader thread, and a heartbeat thread.
pub struct ProcTransport {
    rank: usize,
    size: usize,
    generation: u64,
    writer: Arc<Mutex<UnixStream>>,
    inbox: Receiver<Message>,
    barrier_rx: Receiver<u64>,
    barrier_seq: u64,
    peers: Arc<PeerMap>,
    alive: Arc<AtomicBool>,
    wedged: Arc<AtomicBool>,
    hb_sent: Arc<AtomicU64>,
    /// Wire bytes written toward each destination rank (hub routing
    /// means one physical link, but attribution stays per-peer).
    bytes_to: Arc<Vec<AtomicU64>>,
    /// Kept to shut the socket down on drop, unblocking the reader.
    stream: UnixStream,
}

impl ProcTransport {
    /// Connects to the hub named by `endpoint`, performs the
    /// Hello/Welcome handshake, and spawns the reader/drainer/heartbeat
    /// threads.
    ///
    /// # Errors
    /// Any socket error; `InvalidData` when the hub speaks a different
    /// generation (a stale child must not join a respawned epoch).
    pub fn connect(endpoint: &ProcEndpoint) -> io::Result<ProcTransport> {
        let mut stream = UnixStream::connect(&endpoint.socket)?;
        wire::write_frame(
            &mut stream,
            &Frame::control(FrameKind::Hello, endpoint.rank as u32, endpoint.generation),
        )?;
        let welcome = wire::read_frame(&mut stream)?
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if welcome.kind != FrameKind::Welcome || welcome.generation != endpoint.generation {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "hub rejected handshake (wrong kind or generation)",
            ));
        }
        let (inbox_tx, inbox) = unbounded::<Message>();
        let (barrier_tx, barrier_rx) = unbounded::<u64>();
        let peers = Arc::new(PeerMap::new(endpoint.size));
        let alive = Arc::new(AtomicBool::new(true));
        let wedged = Arc::new(AtomicBool::new(false));
        let hb_sent = Arc::new(AtomicU64::new(0));
        let bytes_to = Arc::new((0..endpoint.size).map(|_| AtomicU64::new(0)).collect());
        let writer = Arc::new(Mutex::new(stream.try_clone()?));

        // Reader: control + (socket-plane) data frames from the hub.
        {
            let mut reader = BufReader::new(stream.try_clone()?);
            let inbox_tx = inbox_tx.clone();
            let peers = Arc::clone(&peers);
            let generation = endpoint.generation;
            std::thread::spawn(move || loop {
                match wire::read_frame(&mut reader) {
                    Ok(Ok(frame)) => {
                        if !frame.is_for_generation(generation) {
                            continue;
                        }
                        match frame.kind {
                            FrameKind::Data => {
                                let _ = inbox_tx.send(frame_to_message(frame));
                            }
                            FrameKind::PeerDown => {
                                if frame.tag == Frame::PEER_DOWN_HEARTBEAT {
                                    peers.hb_missed.fetch_add(1, Ordering::SeqCst);
                                }
                                peers.mark(frame.src as usize, PeerFailureKind::Down);
                            }
                            FrameKind::BarrierRelease => {
                                let _ = barrier_tx.send(frame.tag);
                            }
                            FrameKind::Shutdown => {
                                peers.closed.store(true, Ordering::SeqCst);
                                break;
                            }
                            _ => {}
                        }
                    }
                    // EOF, socket error, or an undecodable frame: the hub
                    // link is unusable either way.
                    _ => {
                        peers.closed.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            });
        }

        // Ring drainer: the shm data plane, reassembling frames from the
        // byte stream.
        if let Some(ring_path) = &endpoint.ring {
            let ring = ShmRing::open(ring_path)?;
            let inbox_tx = inbox_tx.clone();
            let peers = Arc::clone(&peers);
            let alive = Arc::clone(&alive);
            let generation = endpoint.generation;
            std::thread::spawn(move || {
                let mut acc: Vec<u8> = Vec::new();
                let mut buf = vec![0u8; 64 * 1024];
                while alive.load(Ordering::SeqCst) && !peers.closed.load(Ordering::SeqCst) {
                    let n = match ring.try_pop(&mut buf) {
                        Ok(n) => n,
                        Err(_) => break,
                    };
                    if n == 0 {
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    acc.extend_from_slice(&buf[..n]);
                    let mut at = 0usize;
                    loop {
                        match wire::decode_frame(&acc[at..]) {
                            Ok((frame, used)) => {
                                at += used;
                                if frame.is_for_generation(generation)
                                    && frame.kind == FrameKind::Data
                                {
                                    let _ = inbox_tx.send(frame_to_message(frame));
                                }
                            }
                            Err(wire::WireError::Truncated { .. }) => break,
                            // The ring is a private per-epoch file; any
                            // other decode error means it is torn beyond
                            // recovery.
                            Err(_) => {
                                peers.closed.store(true, Ordering::SeqCst);
                                return;
                            }
                        }
                    }
                    acc.drain(..at);
                }
            });
        }

        // Heartbeat beacon.
        {
            let writer = Arc::clone(&writer);
            let alive = Arc::clone(&alive);
            let wedged = Arc::clone(&wedged);
            let hb_sent = Arc::clone(&hb_sent);
            let interval = endpoint.heartbeat_interval;
            let frame = Frame::control(
                FrameKind::Heartbeat,
                endpoint.rank as u32,
                endpoint.generation,
            );
            std::thread::spawn(move || {
                while alive.load(Ordering::SeqCst) {
                    if !wedged.load(Ordering::SeqCst) {
                        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
                        if wire::write_frame(&mut *w, &frame).is_err() {
                            break;
                        }
                        drop(w);
                        hb_sent.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::sleep(interval);
                }
            });
        }

        Ok(ProcTransport {
            rank: endpoint.rank,
            size: endpoint.size,
            generation: endpoint.generation,
            writer,
            inbox,
            barrier_rx,
            barrier_seq: 0,
            peers,
            alive,
            wedged,
            hb_sent,
            bytes_to,
            stream,
        })
    }

    /// Chaos hook: silences this rank's heartbeat thread, simulating a
    /// process that is alive but wedged (the failure mode only the
    /// hub's heartbeat-staleness detector can see).
    pub fn wedge_heartbeats(&self) {
        self.wedged.store(true, Ordering::SeqCst);
    }

    fn closed_error(&self) -> CommError {
        match self.peers.first() {
            Some(pf) => pf.into_error(),
            None => CommError::Shutdown,
        }
    }
}

impl Drop for ProcTransport {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::SeqCst);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

impl Transport for ProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn generation(&self) -> u64 {
        self.generation
    }

    fn try_send(&mut self, dst: usize, msg: Message) -> SendOutcome {
        let frame = message_to_frame(dst, msg);
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        match wire::write_frame(&mut *w, &frame) {
            Ok(()) => {
                self.bytes_to[dst].fetch_add(frame.encoded_len() as u64, Ordering::Relaxed);
                SendOutcome::Sent
            }
            Err(_) => SendOutcome::Closed(frame_to_message(frame)),
        }
    }

    fn try_recv(&mut self) -> Option<Message> {
        self.inbox.try_recv().ok()
    }

    fn recv_wait(&mut self, slice: Duration) -> WaitOutcome {
        match self.inbox.recv_timeout(slice) {
            Ok(msg) => WaitOutcome::Message(msg),
            Err(RecvTimeoutError::Timeout) => {
                if self.peers.closed.load(Ordering::SeqCst) && self.inbox.is_empty() {
                    WaitOutcome::Closed
                } else {
                    WaitOutcome::Idle
                }
            }
            Err(RecvTimeoutError::Disconnected) => WaitOutcome::Closed,
        }
    }

    fn failed_peer(&self) -> Option<PeerFailure> {
        self.peers.first()
    }

    fn peer_failure(&self, rank: usize) -> Option<PeerFailure> {
        self.peers.get(rank)
    }

    fn announce_death(&self, rank: usize) {
        self.peers.mark(rank, PeerFailureKind::Crashed);
        let frame = Frame::control(FrameKind::Shutdown, rank as u32, self.generation);
        let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = wire::write_frame(&mut *w, &frame);
    }

    fn barrier(&mut self, timeout: Duration) -> Result<(), CommError> {
        self.barrier_seq += 1;
        let mut enter = Frame::control(FrameKind::BarrierEnter, self.rank as u32, self.generation);
        enter.seq = self.barrier_seq;
        {
            let mut w = self.writer.lock().unwrap_or_else(|e| e.into_inner());
            if wire::write_frame(&mut *w, &enter).is_err() {
                return Err(self.closed_error());
            }
        }
        let end = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= end {
                return Err(CommError::Timeout);
            }
            let slice = Duration::from_millis(10).min(end - now);
            match self.barrier_rx.recv_timeout(slice) {
                Ok(0) => return Ok(()),
                Ok(failed_plus_one) => {
                    return Err(CommError::PeerDown {
                        rank: (failed_plus_one - 1) as usize,
                    })
                }
                Err(RecvTimeoutError::Timeout) => {
                    if self.peers.closed.load(Ordering::SeqCst) {
                        return Err(self.closed_error());
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(self.closed_error()),
            }
        }
    }

    fn async_sender(&self, dst: usize) -> Option<AsyncSender> {
        let writer = Arc::clone(&self.writer);
        let bytes_to = Arc::clone(&self.bytes_to);
        Some(AsyncSender::new(move |msg| {
            let frame = message_to_frame(dst, msg);
            let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
            if wire::write_frame(&mut *w, &frame).is_ok() {
                bytes_to[dst].fetch_add(frame.encoded_len() as u64, Ordering::Relaxed);
            }
        }))
    }

    fn take_heartbeat_delta(&self) -> HeartbeatDelta {
        HeartbeatDelta {
            sent: self.hb_sent.swap(0, Ordering::SeqCst),
            missed: self.peers.hb_missed.swap(0, Ordering::SeqCst),
        }
    }

    fn take_link_delta(&self) -> LinkDelta {
        LinkDelta {
            reconnects: 0,
            partition_seconds: 0.0,
            bytes_by_peer: self
                .bytes_to
                .iter()
                .map(|b| b.swap(0, Ordering::Relaxed))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Hub (parent side)
// ---------------------------------------------------------------------

struct BarrierSvc {
    waiting: Vec<bool>,
    /// Once set, every pending and future barrier entry is released with
    /// this failed rank.
    failed: Option<usize>,
}

struct HubShared {
    ranks: usize,
    generation: u64,
    alive: AtomicBool,
    /// Writer halves of the per-rank connections (`None` until the rank
    /// connects / after it disconnects).
    conns: Mutex<Vec<Option<UnixStream>>>,
    /// Hub-side producer endpoints of the per-rank inbound rings
    /// (present when the shm data plane is on).
    rings: Vec<Option<Mutex<ShmRing>>>,
    last_seen: Mutex<Vec<Instant>>,
    /// Declared-dead ranks with the broadcast reason.
    down: Mutex<Vec<Option<u64>>>,
    /// Ranks whose connection reached EOF (the process exited — cleanly
    /// or not). Distinct from `conns` being `None`, which also covers
    /// "not connected yet": a departed rank's ring has no consumer, so
    /// routing to it must drop rather than wait for space.
    departed: Vec<AtomicBool>,
    barrier: Mutex<BarrierSvc>,
}

impl HubShared {
    fn send_to(&self, rank: usize, frame: &Frame) {
        let mut g = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(stream) = g.get_mut(rank).and_then(|s| s.as_mut()) {
            if wire::write_frame(stream, frame).is_err() {
                g[rank] = None;
            }
        }
    }

    fn is_down(&self, rank: usize) -> bool {
        self.down.lock().unwrap_or_else(|e| e.into_inner())[rank].is_some()
    }

    /// True once `rank` can no longer receive: declared dead, or its
    /// process exited (socket EOF) and nothing drains its ring.
    fn unreachable(&self, rank: usize) -> bool {
        self.is_down(rank) || self.departed[rank].load(Ordering::SeqCst)
    }

    /// Routes one data frame toward its destination rank.
    fn route(&self, frame: Frame) {
        let dst = frame.dst as usize;
        if dst >= self.ranks || self.unreachable(dst) {
            return;
        }
        if let Some(ring) = self.rings.get(dst).and_then(|r| r.as_ref()) {
            let bytes = wire::encode_frame(&frame);
            let deadline = Instant::now() + Duration::from_secs(10);
            let ring = ring.lock().unwrap_or_else(|e| e.into_inner());
            // A consumer that died stops draining its ring. Push in short
            // slices and re-check liveness between them: blocking here
            // would also stall this reader thread's heartbeat bookkeeping
            // for its own (live) child, turning one real death into a
            // false staleness on a survivor. A partially pushed frame is
            // fine — rings are per-generation and the dead consumer's
            // ring is discarded at respawn.
            let mut done = 0;
            while done < bytes.len() {
                let slice = (Instant::now() + Duration::from_millis(50)).min(deadline);
                match ring.push(&bytes[done..], slice) {
                    Ok(n) => done += n,
                    Err(_) => return,
                }
                if done < bytes.len() && (self.unreachable(dst) || Instant::now() >= deadline) {
                    return;
                }
            }
        } else {
            self.send_to(dst, &frame);
        }
    }

    fn barrier_enter(&self, rank: usize) {
        let release_failed = {
            let b = self.barrier.lock().unwrap_or_else(|e| e.into_inner());
            b.failed
        };
        if let Some(dead) = release_failed {
            let mut f = Frame::control(FrameKind::BarrierRelease, 0, self.generation);
            f.tag = (dead + 1) as u64;
            self.send_to(rank, &f);
            return;
        }
        let released = {
            let mut b = self.barrier.lock().unwrap_or_else(|e| e.into_inner());
            if rank < b.waiting.len() {
                b.waiting[rank] = true;
            }
            let down = self.down.lock().unwrap_or_else(|e| e.into_inner());
            let all_in = (0..self.ranks).all(|r| b.waiting[r] || down[r].is_some());
            if all_in {
                for w in b.waiting.iter_mut() {
                    *w = false;
                }
            }
            all_in
        };
        if released {
            let f = Frame::control(FrameKind::BarrierRelease, 0, self.generation);
            for r in 0..self.ranks {
                if !self.is_down(r) {
                    self.send_to(r, &f);
                }
            }
        }
    }

    /// Declares `rank` dead for `reason`, broadcasting
    /// [`FrameKind::PeerDown`] to the survivors and failing any pending
    /// (and all future) barrier entries.
    fn declare_down(&self, rank: usize, reason: u64) {
        {
            let mut g = self.down.lock().unwrap_or_else(|e| e.into_inner());
            if g[rank].is_some() {
                return;
            }
            g[rank] = Some(reason);
        }
        let mut notice = Frame::control(FrameKind::PeerDown, rank as u32, self.generation);
        notice.tag = reason;
        for r in 0..self.ranks {
            if r != rank && !self.is_down(r) {
                self.send_to(r, &notice);
            }
        }
        // Release every rank already waiting in the barrier with the
        // failure; future entrants are released on arrival (failed set).
        let waiting: Vec<usize> = {
            let mut b = self.barrier.lock().unwrap_or_else(|e| e.into_inner());
            b.failed = Some(rank);
            let w = (0..self.ranks).filter(|&r| b.waiting[r]).collect();
            for x in b.waiting.iter_mut() {
                *x = false;
            }
            w
        };
        let mut release = Frame::control(FrameKind::BarrierRelease, 0, self.generation);
        release.tag = (rank + 1) as u64;
        for r in waiting {
            self.send_to(r, &release);
        }
    }

    /// Ranks whose last frame is older than `timeout` (connected, not
    /// already declared dead).
    fn stale_ranks(&self, timeout: Duration) -> Vec<usize> {
        let now = Instant::now();
        let seen = self.last_seen.lock().unwrap_or_else(|e| e.into_inner());
        let conns = self.conns.lock().unwrap_or_else(|e| e.into_inner());
        let down = self.down.lock().unwrap_or_else(|e| e.into_inner());
        (0..self.ranks)
            .filter(|&r| {
                conns[r].is_some() && down[r].is_none() && now.duration_since(seen[r]) > timeout
            })
            .collect()
    }
}

/// The parent-side frame router for one epoch.
struct Hub {
    shared: Arc<HubShared>,
    socket_path: PathBuf,
}

impl Hub {
    /// Binds the epoch socket, creates the per-rank rings, and spawns
    /// the accept loop.
    fn start(
        socket_path: &Path,
        ranks: usize,
        generation: u64,
        ring_capacity: Option<usize>,
        ring_dir: &Path,
    ) -> io::Result<(Hub, Vec<Option<PathBuf>>)> {
        let listener = UnixListener::bind(socket_path)?;
        let mut rings = Vec::with_capacity(ranks);
        let mut ring_paths = Vec::with_capacity(ranks);
        for r in 0..ranks {
            match ring_capacity {
                Some(cap) => {
                    let path = ring_dir.join(format!("ring-{r}.shm"));
                    rings.push(Some(Mutex::new(ShmRing::create(&path, cap)?)));
                    ring_paths.push(Some(path));
                }
                None => {
                    rings.push(None);
                    ring_paths.push(None);
                }
            }
        }
        let shared = Arc::new(HubShared {
            ranks,
            generation,
            alive: AtomicBool::new(true),
            conns: Mutex::new((0..ranks).map(|_| None).collect()),
            rings,
            last_seen: Mutex::new(vec![Instant::now(); ranks]),
            down: Mutex::new(vec![None; ranks]),
            departed: (0..ranks).map(|_| AtomicBool::new(false)).collect(),
            barrier: Mutex::new(BarrierSvc {
                waiting: vec![false; ranks],
                failed: None,
            }),
        });
        {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut joined = 0usize;
                while joined < shared.ranks && shared.alive.load(Ordering::SeqCst) {
                    let Ok((stream, _)) = listener.accept() else {
                        break;
                    };
                    if !shared.alive.load(Ordering::SeqCst) {
                        break;
                    }
                    if Self::admit(&shared, stream).is_some() {
                        joined += 1;
                    }
                }
            });
        }
        Ok((
            Hub {
                shared,
                socket_path: socket_path.to_path_buf(),
            },
            ring_paths,
        ))
    }

    /// Handshakes one incoming connection; returns the admitted rank.
    fn admit(shared: &Arc<HubShared>, mut stream: UnixStream) -> Option<usize> {
        let hello = wire::read_frame(&mut stream).ok()?.ok()?;
        if hello.kind != FrameKind::Hello || hello.generation != shared.generation {
            // Wrong epoch (a straggler) or garbage: drop the connection
            // without a Welcome — the peer's handshake fails typed.
            return None;
        }
        let rank = hello.src as usize;
        if rank >= shared.ranks {
            return None;
        }
        let mut writer = stream.try_clone().ok()?;
        wire::write_frame(
            &mut writer,
            &Frame::control(FrameKind::Welcome, rank as u32, shared.generation),
        )
        .ok()?;
        {
            let mut g = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            g[rank] = Some(writer);
        }
        {
            let mut g = shared.last_seen.lock().unwrap_or_else(|e| e.into_inner());
            g[rank] = Instant::now();
        }
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stream);
            // EOF / decode error ends the loop: clean for a finished
            // rank, and for a killed one the exit-status poll (or
            // heartbeat staleness) makes the death call — the reader
            // just stops routing.
            while let Ok(Ok(frame)) = wire::read_frame(&mut reader) {
                if !shared.alive.load(Ordering::SeqCst) {
                    break;
                }
                {
                    let mut g = shared.last_seen.lock().unwrap_or_else(|e| e.into_inner());
                    g[rank] = Instant::now();
                }
                match frame.kind {
                    FrameKind::Heartbeat => {}
                    FrameKind::Data => shared.route(frame),
                    FrameKind::BarrierEnter => shared.barrier_enter(rank),
                    FrameKind::Shutdown => break,
                    _ => {}
                }
            }
            shared.departed[rank].store(true, Ordering::SeqCst);
            let mut g = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            g[rank] = None;
        });
        Some(rank)
    }

    fn shutdown(&self) {
        self.shared.alive.store(false, Ordering::SeqCst);
        // Unblock a pending accept.
        let _ = UnixStream::connect(&self.socket_path);
        let mut g = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        for slot in g.iter_mut() {
            if let Some(stream) = slot.take() {
                let _ = wire::write_frame(
                    &mut &stream,
                    &Frame::control(FrameKind::Shutdown, 0, self.shared.generation),
                );
                let _ = stream.shutdown(std::net::Shutdown::Both);
            }
        }
        let _ = std::fs::remove_file(&self.socket_path);
    }
}

// ---------------------------------------------------------------------
// Process supervisor
// ---------------------------------------------------------------------

/// When the chaos kill fires.
#[derive(Clone, Debug)]
pub enum KillWhen {
    /// As soon as the named file exists — e.g. a checkpoint image, so
    /// the kill lands *mid-phase* right after a specific save.
    FileExists(PathBuf),
    /// A fixed delay after the epoch's children were spawned.
    After(Duration),
}

/// A scripted `kill -9` for chaos runs: SIGKILL `rank` during
/// `generation` when the trigger fires.
#[derive(Clone, Debug)]
pub struct KillPlan {
    /// The rank to kill.
    pub rank: usize,
    /// The generation during which to kill it (so a respawned epoch is
    /// left alone and the run can prove recovery).
    pub generation: u64,
    /// The trigger.
    pub when: KillWhen,
}

/// Launch options for a [`ProcSupervisor`].
#[derive(Clone, Debug)]
pub struct ProcConfig {
    /// Failure-detection timing: exit-status poll period, heartbeat
    /// beacon interval, and the staleness threshold after which a
    /// silent child is declared down.
    pub detection: FailureDetection,
    /// Capacity of each rank's inbound shm ring; `None` routes data
    /// over the socket instead.
    pub ring_capacity: Option<usize>,
    /// Respawn budget and backoff across epochs.
    pub restart: RestartPolicy,
    /// Wall-clock ceiling per epoch before every child is killed and
    /// the epoch declared failed.
    pub epoch_deadline: Duration,
    /// Scripted chaos kill, if any.
    pub kill: Option<KillPlan>,
}

impl Default for ProcConfig {
    fn default() -> Self {
        ProcConfig {
            detection: FailureDetection::default(),
            ring_capacity: Some(DEFAULT_RING_CAPACITY),
            restart: RestartPolicy::default(),
            epoch_deadline: Duration::from_secs(600),
            kill: None,
        }
    }
}

/// A rank child that was never reaped when its epoch ended — the typed
/// error [`ProcSupervisor::run`] returns (wrapped in `io::Error`)
/// instead of panicking mid-teardown. Callers can recover it with
/// `err.get_ref().and_then(|e| e.downcast_ref::<ReapError>())`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReapError {
    /// The rank whose exit status is missing.
    pub rank: usize,
    /// The epoch in which it was lost.
    pub generation: u64,
}

impl std::fmt::Display for ReapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} of generation {} was never reaped (no exit status at epoch end)",
            self.rank, self.generation
        )
    }
}

impl std::error::Error for ReapError {}

/// One child's final status in the last epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcOutcome {
    /// Exited 0: the rank completed its work.
    Ok,
    /// Exited [`CHILD_COMM_ABORT`]: aborted with a typed [`CommError`]
    /// after a peer died (a casualty, not the root cause).
    CommAborted,
    /// Exited with any other code (the code).
    Exited(i32),
    /// Terminated by a signal (`kill -9`, or the supervisor reaping a
    /// wedged child).
    Killed,
}

impl ProcOutcome {
    fn from_status(st: ExitStatus) -> ProcOutcome {
        match st.code() {
            Some(0) => ProcOutcome::Ok,
            Some(c) if c == CHILD_COMM_ABORT => ProcOutcome::CommAborted,
            Some(c) => ProcOutcome::Exited(c),
            None => ProcOutcome::Killed,
        }
    }
}

/// What a supervised multi-process run produced.
#[derive(Clone, Debug)]
pub struct ProcRun {
    /// Final epoch's per-rank outcomes.
    pub outcomes: Vec<ProcOutcome>,
    /// Epochs launched (1 = fault-free).
    pub epochs: u64,
    /// Respawns performed.
    pub restarts: u32,
    /// Rank deaths observed across all epochs (root causes, not
    /// comm-abort casualties).
    pub deaths: u64,
    /// Deaths detected by heartbeat staleness specifically.
    pub heartbeat_deaths: u64,
    /// Scripted kills actually delivered.
    pub injected_kills: u32,
}

impl ProcRun {
    /// True when every rank of the final epoch completed.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| *o == ProcOutcome::Ok)
    }
}

/// Spawns ranks as child OS processes, detects their deaths (exit or
/// heartbeat staleness), and respawns the whole set into a new
/// generation — the process-level sibling of the in-process
/// [`Supervisor`](crate::Supervisor).
pub struct ProcSupervisor {
    config: ProcConfig,
    workdir: PathBuf,
}

impl ProcSupervisor {
    /// A supervisor with default [`ProcConfig`] rooted at `workdir`
    /// (sockets, rings, and the shared checkpoint directory live under
    /// it).
    pub fn new(workdir: impl Into<PathBuf>) -> Self {
        ProcSupervisor {
            config: ProcConfig::default(),
            workdir: workdir.into(),
        }
    }

    /// A supervisor with explicit options.
    pub fn with_config(workdir: impl Into<PathBuf>, config: ProcConfig) -> Self {
        ProcSupervisor {
            config,
            workdir: workdir.into(),
        }
    }

    /// The on-disk checkpoint directory children are pointed at via
    /// [`ENV_CKPT_DIR`].
    pub fn checkpoint_dir(&self) -> PathBuf {
        self.workdir.join("ckpt")
    }

    /// Runs `ranks` child processes to completion, respawning the set
    /// (bounded by the restart policy) whenever a rank dies.
    /// `make_cmd(rank, generation)` builds each child's base command;
    /// the supervisor adds the [`ENV_RANK`]-family environment before
    /// spawning.
    ///
    /// # Errors
    /// Socket/spawn I/O errors only — rank deaths are *outcomes*, not
    /// errors.
    pub fn run<F>(&self, ranks: usize, mut make_cmd: F) -> io::Result<ProcRun>
    where
        F: FnMut(usize, u64) -> Command,
    {
        assert!(ranks >= 1, "need at least one rank");
        std::fs::create_dir_all(self.checkpoint_dir())?;
        let mut generation = 0u64;
        let mut restarts = 0u32;
        let mut deaths = 0u64;
        let mut heartbeat_deaths = 0u64;
        let mut injected_kills = 0u32;
        loop {
            let epoch_dir = self.workdir.join(format!("epoch-{generation}"));
            std::fs::create_dir_all(&epoch_dir)?;
            let socket = epoch_dir.join("hub.sock");
            let (hub, ring_paths) = Hub::start(
                &socket,
                ranks,
                generation,
                self.config.ring_capacity,
                &epoch_dir,
            )?;
            let spawn_time = Instant::now();
            let mut children: Vec<Child> = Vec::with_capacity(ranks);
            for (r, ring_path) in ring_paths.iter().enumerate() {
                let mut cmd = make_cmd(r, generation);
                cmd.env(ENV_RANK, r.to_string())
                    .env(ENV_SIZE, ranks.to_string())
                    .env(ENV_GENERATION, generation.to_string())
                    .env(ENV_RESTARTS, restarts.to_string())
                    .env(ENV_SOCKET, &socket)
                    .env(
                        ENV_HB_INTERVAL_MS,
                        self.config
                            .detection
                            .heartbeat_interval
                            .as_millis()
                            .to_string(),
                    )
                    .env(
                        ENV_HB_TIMEOUT_MS,
                        self.config
                            .detection
                            .staleness_timeout
                            .as_millis()
                            .to_string(),
                    )
                    .env(ENV_CKPT_DIR, self.checkpoint_dir());
                if let Some(path) = ring_path {
                    cmd.env(ENV_RING, path);
                }
                children.push(cmd.spawn()?);
            }
            let mut kill_armed = self
                .config
                .kill
                .clone()
                .filter(|k| k.generation == generation && k.rank < ranks);
            let mut statuses: Vec<Option<ExitStatus>> = vec![None; ranks];
            let deadline = spawn_time + self.config.epoch_deadline;
            loop {
                let mut pending = false;
                for (r, child) in children.iter_mut().enumerate() {
                    if statuses[r].is_none() {
                        match child.try_wait()? {
                            Some(st) => {
                                statuses[r] = Some(st);
                                match ProcOutcome::from_status(st) {
                                    ProcOutcome::Ok | ProcOutcome::CommAborted => {}
                                    // Skip ranks already declared down (e.g.
                                    // by staleness, which then killed them)
                                    // so each death is counted once.
                                    _ if hub.shared.is_down(r) => {}
                                    _ => {
                                        deaths += 1;
                                        hub.shared.declare_down(r, Frame::PEER_DOWN_EXIT);
                                    }
                                }
                            }
                            None => pending = true,
                        }
                    }
                }
                if !pending {
                    break;
                }
                if let Some(plan) = &kill_armed {
                    let fire = match &plan.when {
                        KillWhen::FileExists(path) => path.exists(),
                        KillWhen::After(d) => spawn_time.elapsed() >= *d,
                    };
                    if fire {
                        if statuses[plan.rank].is_none() {
                            let _ = children[plan.rank].kill(); // SIGKILL
                            injected_kills += 1;
                        }
                        kill_armed = None;
                    }
                }
                for r in hub
                    .shared
                    .stale_ranks(self.config.detection.staleness_timeout)
                {
                    if statuses[r].is_none() {
                        heartbeat_deaths += 1;
                        deaths += 1;
                        hub.shared.declare_down(r, Frame::PEER_DOWN_HEARTBEAT);
                        // A wedged process never exits on its own; reap it
                        // so the epoch can end and the respawn proceed.
                        let _ = children[r].kill();
                    }
                }
                if Instant::now() >= deadline {
                    for (r, child) in children.iter_mut().enumerate() {
                        if statuses[r].is_none() {
                            let _ = child.kill();
                        }
                    }
                }
                std::thread::sleep(self.config.detection.poll_period);
            }
            hub.shutdown();
            let mut outcomes: Vec<ProcOutcome> = Vec::with_capacity(ranks);
            for (rank, st) in statuses.into_iter().enumerate() {
                // Every exit from the wait loop has all statuses filled;
                // if that invariant ever breaks, surface a typed reap
                // error instead of panicking mid-teardown with children
                // possibly still holding the sockets.
                let st = st.ok_or_else(|| io::Error::other(ReapError { rank, generation }))?;
                outcomes.push(ProcOutcome::from_status(st));
            }
            let run = ProcRun {
                outcomes,
                epochs: generation + 1,
                restarts,
                deaths,
                heartbeat_deaths,
                injected_kills,
            };
            if run.all_ok() || restarts >= self.config.restart.max_restarts {
                return Ok(run);
            }
            std::thread::sleep(self.config.restart.backoff(restarts));
            restarts += 1;
            generation += 1;
        }
    }
}
