//! Supervised cluster launches: detect a dead rank, respawn the epoch,
//! resume from checkpoints.
//!
//! The PR 1 resilience layer makes a crashed run *fail well* (typed
//! [`RankOutcome`]s, no hangs); a [`Supervisor`] makes it *finish*. It owns
//! the rank lifecycle: the per-rank channels are created once and live
//! across epochs, and each **epoch** is one launch of the whole rank set.
//! When the launcher reports a death (an injected crash, a panic, or a
//! join timeout — all surfaced through the existing failure detector and
//! `catch_unwind` harness), the supervisor re-launches every rank as a new
//! incarnation, up to [`RestartPolicy::max_restarts`] times with
//! exponential backoff between attempts.
//!
//! Respawned ranks do not redo the whole pipeline: each epoch receives a
//! [`RecoveryCtx`] carrying the shared [`CheckpointStore`] and a *frozen*
//! list of globally committed phases, so every rank makes the same
//! collective decision about where to rejoin. Stale in-flight messages
//! from the dead incarnation are discarded by the wire layer's generation
//! tag (the epoch number), which is why the channels can safely survive
//! the crash.
//!
//! This supervisor runs ranks as threads over in-process channels. The
//! same epoch/generation/checkpoint ladder also drives real transports:
//! [`ProcSupervisor`](crate::transport::proc::ProcSupervisor) respawns
//! OS processes over pipes, and
//! [`TcpSupervisor`](crate::transport::tcp::TcpSupervisor) respawns a
//! TCP mesh — where, unlike here, a network partition surfaces as a
//! *typed* [`CommError::PeerDown`](crate::CommError::PeerDown) on every
//! rank rather than a thread death, so that supervisor respawns on any
//! non-Ok outcome.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::checkpoint::CheckpointStore;
use crate::resilience::RankOutcome;
use crate::{launch_epoch, make_channels, ClusterConfig, Comm};

/// Live, shareable health signal of a supervised engine.
///
/// The supervisor updates these counters as epochs launch and die, so a
/// layer *outside* the rank closures (the serving front end's circuit
/// breaker) can observe crash pressure while the run is still in
/// progress — [`SupervisedRun`] only reports after the fact. Counters
/// accumulate across successive [`Supervisor::run`] calls on the same
/// supervisor, which is exactly what a breaker keyed on "repeated
/// escalations" wants.
#[derive(Debug, Default)]
pub struct HealthMonitor {
    epochs: AtomicU64,
    deaths: AtomicU64,
    restarts: AtomicU32,
    budget_exhausted: AtomicBool,
}

impl HealthMonitor {
    /// Epochs launched so far (across every run of the owning supervisor).
    pub fn epochs_launched(&self) -> u64 {
        self.epochs.load(Ordering::SeqCst)
    }

    /// Epochs that ended with at least one rank death (injected crash,
    /// panic, or join timeout).
    pub fn deaths(&self) -> u64 {
        self.deaths.load(Ordering::SeqCst)
    }

    /// Restarts consumed respawning dead epochs.
    pub fn restarts(&self) -> u32 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// True once a run ended with deaths it no longer had budget to
    /// respawn — the strongest escalation the supervisor can report.
    pub fn budget_exhausted(&self) -> bool {
        self.budget_exhausted.load(Ordering::SeqCst)
    }

    fn note_epoch(&self) {
        self.epochs.fetch_add(1, Ordering::SeqCst);
    }

    fn note_death(&self, respawning: bool) {
        self.deaths.fetch_add(1, Ordering::SeqCst);
        if respawning {
            self.restarts.fetch_add(1, Ordering::SeqCst);
        } else {
            self.budget_exhausted.store(true, Ordering::SeqCst);
        }
    }
}

/// Restart budget and backoff of a [`Supervisor`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RestartPolicy {
    /// How many times a dead epoch may be re-launched (0 = never respawn;
    /// callers fall through to degraded-mode recomputation instead).
    pub max_restarts: u32,
    /// Backoff before restart `k` is `base_backoff · 2^(k-1)`, capped at
    /// one second — a token of the real-world stabilization delay before
    /// re-admitting a node.
    pub base_backoff: Duration,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 2,
            base_backoff: Duration::from_millis(5),
        }
    }
}

impl RestartPolicy {
    /// A policy that never respawns (restart budget 0).
    pub fn disabled() -> Self {
        RestartPolicy {
            max_restarts: 0,
            ..RestartPolicy::default()
        }
    }

    /// The pause before restart number `restart` (1-based).
    pub fn backoff(&self, restart: u32) -> Duration {
        let factor = 1u32 << restart.saturating_sub(1).min(16);
        (self.base_backoff * factor).min(Duration::from_secs(1))
    }
}

/// What one epoch of a supervised run knows about recovery: the shared
/// checkpoint store, which incarnation this is, and which phases had
/// committed globally when the epoch launched.
///
/// The committed list is *frozen at launch* — phases that commit while the
/// epoch runs do not appear — so all ranks of the epoch agree on the
/// resume point without racing the store.
pub struct RecoveryCtx {
    store: Arc<CheckpointStore>,
    epoch: u64,
    restarts: u32,
    committed: Vec<&'static str>,
}

impl RecoveryCtx {
    /// Builds a recovery context for an externally launched epoch — the
    /// multi-process supervisor's children call this after opening the
    /// shared disk-mode [`CheckpointStore`], freezing the committed list
    /// at the moment the epoch (generation) starts. All ranks of a
    /// generation open the same directory before any of them saves new
    /// phases, so they freeze the same resume frontier.
    pub fn resume(store: Arc<CheckpointStore>, epoch: u64, restarts: u32) -> Self {
        RecoveryCtx::for_epoch(&store, epoch, restarts)
    }

    /// Snapshot of `store` for an epoch about to launch.
    pub(crate) fn for_epoch(store: &Arc<CheckpointStore>, epoch: u64, restarts: u32) -> Self {
        RecoveryCtx {
            store: Arc::clone(store),
            epoch,
            restarts,
            committed: store.committed_phases(),
        }
    }

    /// A first-epoch context over a fresh store — what a recoverable
    /// pipeline sees when invoked outside a supervisor (nothing committed,
    /// nothing to resume).
    pub fn fresh(parties: usize) -> Self {
        RecoveryCtx {
            store: Arc::new(CheckpointStore::new(parties)),
            epoch: 0,
            restarts: 0,
            committed: Vec::new(),
        }
    }

    /// The shared checkpoint store.
    pub fn store(&self) -> &Arc<CheckpointStore> {
        &self.store
    }

    /// This incarnation's epoch (0 on the first launch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Restarts consumed before this epoch launched.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// True if `phase` had committed globally when this epoch launched.
    pub fn committed(&self, phase: &'static str) -> bool {
        self.committed.contains(&phase)
    }

    /// The deepest phase committed at launch — the epoch's resume point
    /// (`None` on a fresh run).
    pub fn resume_point(&self) -> Option<&'static str> {
        self.committed.last().copied()
    }
}

/// The result of a supervised run.
pub struct SupervisedRun<T> {
    /// The final epoch's per-rank outcomes.
    pub outcomes: Vec<RankOutcome<T>>,
    /// Restarts consumed.
    pub restarts: u32,
    /// Epochs launched (`restarts + 1`).
    pub epochs: u64,
    /// The run's checkpoint store (degraded-mode recovery reads the dead
    /// rank's surviving snapshots out of it).
    pub store: Arc<CheckpointStore>,
}

impl<T> SupervisedRun<T> {
    /// True when every rank of the final epoch completed normally.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(RankOutcome::is_ok)
    }
}

/// Supervised launcher: [`Cluster::run_with`](crate::Cluster::run_with)
/// plus rank-lifecycle ownership (see module docs).
///
/// # Example
///
/// ```
/// use soifft_cluster::{ClusterConfig, RestartPolicy, Supervisor};
///
/// let sup = Supervisor::new(ClusterConfig::default(), RestartPolicy::default());
/// let run = sup.run(2, |comm, ctx| {
///     assert_eq!(ctx.epoch(), 0); // no faults: first epoch succeeds
///     comm.rank()
/// });
/// assert!(run.all_ok());
/// assert_eq!(run.restarts, 0);
/// ```
pub struct Supervisor {
    config: ClusterConfig,
    policy: RestartPolicy,
    monitor: Arc<HealthMonitor>,
}

impl Supervisor {
    /// A supervisor launching under `config` with restart budget `policy`.
    pub fn new(config: ClusterConfig, policy: RestartPolicy) -> Self {
        Supervisor {
            config,
            policy,
            monitor: Arc::new(HealthMonitor::default()),
        }
    }

    /// The restart policy in force.
    pub fn policy(&self) -> RestartPolicy {
        self.policy
    }

    /// A shared handle onto this supervisor's live health counters,
    /// updated while [`Supervisor::run`] is in progress (see
    /// [`HealthMonitor`]).
    pub fn monitor(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.monitor)
    }

    /// Runs `f` on `ranks` ranks, re-launching the epoch (with a fresh
    /// [`RecoveryCtx`]) every time a rank dies, until the run completes
    /// without deaths or the restart budget is exhausted. Typed rank
    /// *errors* ([`RankOutcome::Err`]) do not consume restarts — only
    /// deaths (crashes, panics, join timeouts) do, since a survivor's
    /// error is the symptom, not the cause.
    pub fn run<T, F>(&self, ranks: usize, f: F) -> SupervisedRun<T>
    where
        T: Send,
        F: Fn(&mut Comm, &RecoveryCtx) -> T + Sync,
    {
        assert!(ranks >= 1, "need at least one rank");
        let store = Arc::new(CheckpointStore::new(ranks));
        let (txs, rxs) = make_channels(&self.config, ranks);
        let mut restarts = 0u32;
        let mut epoch = 0u64;
        loop {
            let ctx = RecoveryCtx::for_epoch(&store, epoch, restarts);
            let g = |comm: &mut Comm| f(comm, &ctx);
            self.monitor.note_epoch();
            let outcomes = launch_epoch(&self.config, ranks, epoch, txs.clone(), &rxs, &g);
            let died = outcomes
                .iter()
                .any(|o| matches!(o, RankOutcome::Crashed | RankOutcome::Panicked(_)));
            if died {
                self.monitor.note_death(restarts < self.policy.max_restarts);
            }
            if !died || restarts >= self.policy.max_restarts {
                return SupervisedRun {
                    outcomes,
                    restarts,
                    epochs: epoch + 1,
                    store,
                };
            }
            restarts += 1;
            std::thread::sleep(self.policy.backoff(restarts));
            epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tags, CrashSite, FaultPlan, RankOutcome};
    use soifft_num::c64;

    fn echo_ring(comm: &mut Comm, _ctx: &RecoveryCtx) -> usize {
        let next = (comm.rank() + 1) % comm.size();
        let prev = (comm.rank() + comm.size() - 1) % comm.size();
        let token = vec![c64::real(comm.rank() as f64)];
        let got = comm.send_recv(next, tags::USER, token, prev, tags::USER);
        got[0].re as usize
    }

    #[test]
    fn healthy_run_uses_one_epoch() {
        let sup = Supervisor::new(ClusterConfig::default(), RestartPolicy::default());
        let run = sup.run(3, echo_ring);
        assert!(run.all_ok());
        assert_eq!(run.restarts, 0);
        assert_eq!(run.epochs, 1);
    }

    #[test]
    fn single_crash_respawns_and_completes() {
        let plan = FaultPlan::new(17).crash(1, CrashSite::Barrier);
        let sup = Supervisor::new(ClusterConfig::with_faults(plan), RestartPolicy::default());
        let run = sup.run(3, |comm, ctx| {
            comm.barrier();
            ctx.epoch()
        });
        assert!(run.all_ok(), "outcomes: restarts={}", run.restarts);
        assert_eq!(run.restarts, 1);
        assert_eq!(run.epochs, 2);
        for o in &run.outcomes {
            assert_eq!(*o, RankOutcome::Ok(1), "work ran in the respawned epoch");
        }
    }

    #[test]
    fn repeated_crash_consumes_budget_then_completes() {
        let plan = FaultPlan::new(17).crash_times(2, CrashSite::Barrier, 2);
        let sup = Supervisor::new(ClusterConfig::with_faults(plan), RestartPolicy::default());
        let run = sup.run(3, |comm, _ctx| {
            comm.barrier();
            comm.rank()
        });
        assert!(run.all_ok());
        assert_eq!(run.restarts, 2);
        assert_eq!(run.epochs, 3);
    }

    #[test]
    fn exhausted_budget_reports_the_final_dead_epoch() {
        let plan = FaultPlan::new(17).crash_times(0, CrashSite::Barrier, 5);
        let sup = Supervisor::new(
            ClusterConfig::with_faults(plan),
            RestartPolicy {
                max_restarts: 1,
                base_backoff: Duration::from_millis(1),
            },
        );
        let run = sup.run(2, |comm, _ctx| {
            comm.barrier();
            comm.rank()
        });
        assert!(!run.all_ok());
        assert_eq!(run.restarts, 1);
        assert_eq!(run.outcomes[0], RankOutcome::Crashed);
    }

    #[test]
    fn disabled_policy_never_respawns() {
        let plan = FaultPlan::new(17).crash(0, CrashSite::Barrier);
        let sup = Supervisor::new(ClusterConfig::with_faults(plan), RestartPolicy::disabled());
        let run = sup.run(2, |comm, _ctx| {
            comm.barrier();
            comm.rank()
        });
        assert_eq!(run.restarts, 0);
        assert_eq!(run.epochs, 1);
        assert_eq!(run.outcomes[0], RankOutcome::Crashed);
    }

    #[test]
    fn committed_phases_are_frozen_per_epoch() {
        // Every rank checkpoints "stage" in epoch 0 and rank 1 then dies;
        // epoch 1's ctx must see "stage" as committed (it committed before
        // the crash) while epoch 0's ctx saw nothing.
        let plan = FaultPlan::new(3).crash(1, CrashSite::Barrier);
        let sup = Supervisor::new(ClusterConfig::with_faults(plan), RestartPolicy::default());
        let run = sup.run(2, |comm, ctx| {
            let saw_committed = ctx.committed("stage");
            if !saw_committed {
                let data = vec![c64::real(comm.rank() as f64)];
                ctx.store().save(comm.rank(), "stage", ctx.epoch(), &data);
            }
            comm.barrier(); // rank 1 dies here in epoch 0
            saw_committed
        });
        assert!(run.all_ok());
        assert_eq!(run.restarts, 1);
        for o in run.outcomes {
            assert_eq!(o, RankOutcome::Ok(true), "epoch 1 resumed from the commit");
        }
    }

    #[test]
    fn monitor_tracks_deaths_and_restarts() {
        let plan = FaultPlan::new(17).crash(1, CrashSite::Barrier);
        let sup = Supervisor::new(ClusterConfig::with_faults(plan), RestartPolicy::default());
        let mon = sup.monitor();
        assert_eq!(mon.epochs_launched(), 0);
        let run = sup.run(3, |comm, _ctx| {
            comm.barrier();
            comm.rank()
        });
        assert!(run.all_ok());
        assert_eq!(mon.epochs_launched(), 2);
        assert_eq!(mon.deaths(), 1);
        assert_eq!(mon.restarts(), 1);
        assert!(!mon.budget_exhausted());
    }

    #[test]
    fn monitor_reports_budget_exhaustion() {
        let plan = FaultPlan::new(17).crash_times(0, CrashSite::Barrier, 5);
        let sup = Supervisor::new(
            ClusterConfig::with_faults(plan),
            RestartPolicy {
                max_restarts: 1,
                base_backoff: Duration::from_millis(1),
            },
        );
        let mon = sup.monitor();
        let run = sup.run(2, |comm, _ctx| {
            comm.barrier();
            comm.rank()
        });
        assert!(!run.all_ok());
        assert_eq!(mon.deaths(), 2, "both epochs died");
        assert_eq!(mon.restarts(), 1, "only the first death had budget");
        assert!(mon.budget_exhausted());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let p = RestartPolicy {
            max_restarts: 8,
            base_backoff: Duration::from_millis(4),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(16));
        assert_eq!(p.backoff(40), Duration::from_secs(1), "capped");
    }

    #[test]
    fn stale_messages_from_dead_epoch_are_discarded() {
        // In epoch 0, rank 0 wires one generation-0 message to rank 1 and
        // dies on its second send attempt; rank 1 never picks it up. The
        // respawned epoch must not consume the stranded copy: rank 1 sees
        // the generation-1 payloads and counts exactly one stale discard.
        let plan = FaultPlan::new(5).crash(0, CrashSite::AfterSends(1));
        let sup = Supervisor::new(ClusterConfig::with_faults(plan), RestartPolicy::default());
        let run = sup.run(2, |comm, ctx| {
            if comm.rank() == 0 {
                comm.send(1, tags::USER, vec![c64::real(10.0 + ctx.epoch() as f64)]);
                comm.send(
                    1,
                    tags::USER + 1,
                    vec![c64::real(20.0 + ctx.epoch() as f64)],
                );
                comm.barrier();
                (0.0, 0.0, 0)
            } else {
                comm.barrier();
                let a = comm.recv(0, tags::USER)[0].re;
                let b = comm.recv(0, tags::USER + 1)[0].re;
                (a, b, comm.stats().stale_discarded())
            }
        });
        assert_eq!(run.restarts, 1);
        assert!(run.all_ok());
        let (a, b, stale) = match &run.outcomes[1] {
            RankOutcome::Ok(v) => *v,
            other => panic!("rank 1 should complete, got an error outcome: {other:?}"),
        };
        assert_eq!(a, 11.0, "payload must come from the live epoch");
        assert_eq!(b, 21.0);
        assert_eq!(
            stale, 1,
            "exactly the stranded epoch-0 message is discarded"
        );
    }
}
