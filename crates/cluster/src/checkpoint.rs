//! In-memory checkpoint store for supervised cluster runs.
//!
//! A [`CheckpointStore`] holds per-rank, per-phase snapshots of pipeline
//! state (the SOI phase boundaries: `ghost` / `convolution` /
//! `segment-fft` / `all-to-all`; the CT baseline uses its own names).
//! Each snapshot is tagged with the epoch that produced it and carries an
//! FNV-1a checksum ([`checksum`](crate::resilience::checksum), the same
//! function the wire layer uses) so a restore can detect corruption
//! instead of silently recomputing from bad state.
//!
//! A phase **commits globally** once *all* ranks have saved it; committed
//! phases are the resume points a respawned rank may rejoin at (the
//! supervisor freezes the committed list per epoch so every rank makes
//! the same collective resume decision). When a phase commits, snapshots
//! of *earlier-committed* phases are pruned — the store never holds more
//! than the active recovery frontier plus the phase in flight.
//!
//! The store is shared (`Arc`) across epochs and rank incarnations, and
//! all methods take `&self`; internal state is mutex-protected.

use std::collections::HashMap;
use std::sync::Mutex;

use soifft_num::c64;

use crate::resilience::checksum;

/// Why a snapshot could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// No snapshot exists for this `(rank, phase)`.
    Missing {
        /// The rank whose snapshot was requested.
        rank: usize,
        /// The requested phase.
        phase: &'static str,
    },
    /// The stored data no longer matches its FNV-1a checksum.
    Corrupt {
        /// The rank whose snapshot is corrupt.
        rank: usize,
        /// The corrupt phase.
        phase: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Missing { rank, phase } => {
                write!(f, "no checkpoint for rank {rank} at phase {phase:?}")
            }
            CheckpointError::Corrupt { rank, phase } => {
                write!(
                    f,
                    "checkpoint for rank {rank} at phase {phase:?} failed its checksum"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One epoch-tagged, checksummed snapshot.
#[derive(Clone, Debug)]
struct Snapshot {
    epoch: u64,
    checksum: u64,
    data: Vec<c64>,
}

#[derive(Default)]
struct Inner {
    snaps: HashMap<(usize, &'static str), Snapshot>,
    /// Phases that have committed globally, in commit order.
    committed: Vec<&'static str>,
    saves: u64,
    pruned: u64,
    /// When set, a phase is re-verified against its checksums before it
    /// may commit (see [`CheckpointStore::enable_scrub_on_commit`]).
    scrub_on_commit: bool,
    scrub_failures: u64,
}

/// Shared per-run checkpoint store (see module docs).
pub struct CheckpointStore {
    parties: usize,
    inner: Mutex<Inner>,
}

impl CheckpointStore {
    /// A store for a cluster of `parties` ranks (a phase commits once all
    /// `parties` ranks have saved it).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "need at least one party");
        CheckpointStore {
            parties,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The number of ranks whose saves commit a phase.
    pub fn parties(&self) -> usize {
        self.parties
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Saves `rank`'s snapshot of `phase` produced in `epoch`, replacing
    /// any earlier snapshot for the pair. When this save is the last of
    /// the `parties` ranks, the phase commits and every snapshot of
    /// phases committed *before* it is pruned.
    pub fn save(&self, rank: usize, phase: &'static str, epoch: u64, data: &[c64]) {
        assert!(rank < self.parties, "rank out of range");
        let snap = Snapshot {
            epoch,
            checksum: checksum(data),
            data: data.to_vec(),
        };
        let mut g = self.lock();
        g.snaps.insert((rank, phase), snap);
        g.saves += 1;
        let all_saved = (0..self.parties).all(|r| g.snaps.contains_key(&(r, phase)));
        if all_saved && g.scrub_on_commit {
            // Scrub pass: a snapshot flipped in store memory since its save
            // is caught *now*, at write/commit time — the phase stays
            // uncommitted (never becomes a resume point) until the owning
            // rank re-saves clean data.
            let bad = (0..self.parties).filter(|&r| {
                let snap = &g.snaps[&(r, phase)];
                checksum(&snap.data) != snap.checksum
            });
            let failures = bad.count() as u64;
            if failures > 0 {
                g.scrub_failures += failures;
                return;
            }
        }
        if all_saved && !g.committed.contains(&phase) {
            g.committed.push(phase);
            // Prune everything superseded by the new commit frontier.
            let keep_from = g.committed.len() - 1;
            let stale: Vec<&'static str> = g.committed[..keep_from].to_vec();
            for ph in stale {
                for r in 0..self.parties {
                    if g.snaps.remove(&(r, ph)).is_some() {
                        g.pruned += 1;
                    }
                }
            }
        }
    }

    /// Restores `rank`'s snapshot of `phase`, verifying its checksum.
    ///
    /// # Errors
    /// [`CheckpointError::Missing`] if nothing was saved,
    /// [`CheckpointError::Corrupt`] if the data fails verification.
    pub fn restore(&self, rank: usize, phase: &'static str) -> Result<Vec<c64>, CheckpointError> {
        let g = self.lock();
        let snap = g
            .snaps
            .get(&(rank, phase))
            .ok_or(CheckpointError::Missing { rank, phase })?;
        if checksum(&snap.data) != snap.checksum {
            return Err(CheckpointError::Corrupt { rank, phase });
        }
        Ok(snap.data.clone())
    }

    /// Verifies every live snapshot against its stored FNV-1a checksum
    /// (without waiting for a restore to need it). Returns the number of
    /// snapshots verified, or the first corruption found.
    ///
    /// # Errors
    /// [`CheckpointError::Corrupt`] naming the first bad `(rank, phase)`,
    /// in deterministic (sorted) order.
    pub fn scrub(&self) -> Result<usize, CheckpointError> {
        let g = self.lock();
        let mut keys: Vec<&(usize, &'static str)> = g.snaps.keys().collect();
        keys.sort();
        for &&(rank, phase) in &keys {
            let snap = &g.snaps[&(rank, phase)];
            if checksum(&snap.data) != snap.checksum {
                return Err(CheckpointError::Corrupt { rank, phase });
            }
        }
        Ok(keys.len())
    }

    /// Turns on the scrub-on-commit pass: before a phase commits (all
    /// ranks saved), every one of its snapshots is re-verified against its
    /// checksum, and a corrupt snapshot blocks the commit — so a flipped
    /// image is caught at write time, not at the moment a recovery needs
    /// it. Callable on the shared store at any point (the supervised
    /// pipelines enable it when their validation policy is on).
    pub fn enable_scrub_on_commit(&self) {
        self.lock().scrub_on_commit = true;
    }

    /// Commits blocked (and snapshots flagged) by the scrub-on-commit pass.
    pub fn scrub_failures(&self) -> u64 {
        self.lock().scrub_failures
    }

    /// The FNV-1a checksum recorded when `rank`'s snapshot of `phase` was
    /// saved, if present. Lets a writer verify its save landed intact
    /// (write-time read-back) without cloning the payload out.
    pub fn stored_checksum(&self, rank: usize, phase: &'static str) -> Option<u64> {
        self.lock().snaps.get(&(rank, phase)).map(|s| s.checksum)
    }

    /// True once every rank has saved `phase`.
    pub fn is_committed(&self, phase: &'static str) -> bool {
        self.lock().committed.contains(&phase)
    }

    /// The globally committed phases, in commit order (the last entry is
    /// the deepest resume point).
    pub fn committed_phases(&self) -> Vec<&'static str> {
        self.lock().committed.clone()
    }

    /// True if `rank` has a snapshot of `phase` (committed or not).
    pub fn has(&self, rank: usize, phase: &'static str) -> bool {
        self.lock().snaps.contains_key(&(rank, phase))
    }

    /// The epoch that produced `rank`'s snapshot of `phase`, if present.
    pub fn epoch_of(&self, rank: usize, phase: &'static str) -> Option<u64> {
        self.lock().snaps.get(&(rank, phase)).map(|s| s.epoch)
    }

    /// Live (unpruned) snapshots currently held.
    pub fn live_snapshots(&self) -> usize {
        self.lock().snaps.len()
    }

    /// Total snapshots ever saved.
    pub fn saves(&self) -> u64 {
        self.lock().saves
    }

    /// Snapshots discarded by commit-time pruning.
    pub fn pruned(&self) -> u64 {
        self.lock().pruned
    }

    /// Chaos hook: flips one bit of `rank`'s stored snapshot of `phase`
    /// *without* updating its checksum, so the next restore reports
    /// [`CheckpointError::Corrupt`]. Returns false when no such snapshot
    /// exists. Test-facing — the pipeline never corrupts its own store.
    pub fn corrupt(&self, rank: usize, phase: &'static str) -> bool {
        let mut g = self.lock();
        match g.snaps.get_mut(&(rank, phase)) {
            Some(snap) if !snap.data.is_empty() => {
                let v = &mut snap.data[0];
                v.re = f64::from_bits(v.re.to_bits() ^ 1);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(seed: u64, len: usize) -> Vec<c64> {
        (0..len)
            .map(|i| c64::new((seed as f64) + i as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let store = CheckpointStore::new(2);
        let data = buf(7, 33);
        store.save(0, "ghost", 0, &data);
        let got = store.restore(0, "ghost").unwrap();
        let bits = |v: &[c64]| -> Vec<u64> {
            v.iter()
                .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
                .collect()
        };
        assert_eq!(bits(&got), bits(&data));
    }

    #[test]
    fn missing_and_corrupt_are_distinguished() {
        let store = CheckpointStore::new(2);
        assert_eq!(
            store.restore(1, "ghost"),
            Err(CheckpointError::Missing {
                rank: 1,
                phase: "ghost"
            })
        );
        store.save(1, "ghost", 0, &buf(1, 8));
        assert!(store.corrupt(1, "ghost"));
        assert_eq!(
            store.restore(1, "ghost"),
            Err(CheckpointError::Corrupt {
                rank: 1,
                phase: "ghost"
            })
        );
        // A fresh save repairs the slot.
        store.save(1, "ghost", 1, &buf(2, 8));
        assert!(store.restore(1, "ghost").is_ok());
        assert_eq!(store.epoch_of(1, "ghost"), Some(1));
    }

    #[test]
    fn phase_commits_when_all_ranks_saved() {
        let store = CheckpointStore::new(3);
        store.save(0, "conv", 0, &buf(0, 4));
        store.save(1, "conv", 0, &buf(1, 4));
        assert!(!store.is_committed("conv"));
        store.save(2, "conv", 0, &buf(2, 4));
        assert!(store.is_committed("conv"));
        assert_eq!(store.committed_phases(), vec!["conv"]);
    }

    #[test]
    fn commit_prunes_earlier_phases() {
        let store = CheckpointStore::new(2);
        for r in 0..2 {
            store.save(r, "ghost", 0, &buf(r as u64, 4));
        }
        for r in 0..2 {
            store.save(r, "conv", 0, &buf(10 + r as u64, 4));
        }
        assert_eq!(store.committed_phases(), vec!["ghost", "conv"]);
        // The ghost snapshots are gone; conv survives.
        assert!(!store.has(0, "ghost"));
        assert!(!store.has(1, "ghost"));
        assert!(store.has(0, "conv"));
        assert_eq!(store.pruned(), 2);
        assert_eq!(store.live_snapshots(), 2);
    }

    #[test]
    fn scrub_verifies_all_live_snapshots() {
        let store = CheckpointStore::new(2);
        store.save(0, "ghost", 0, &buf(1, 8));
        store.save(1, "ghost", 0, &buf(2, 8));
        assert_eq!(store.scrub(), Ok(2));
        assert!(store.corrupt(1, "ghost"));
        assert_eq!(
            store.scrub(),
            Err(CheckpointError::Corrupt {
                rank: 1,
                phase: "ghost"
            })
        );
        assert_eq!(store.scrub_failures(), 0, "manual scrub does not count");
    }

    #[test]
    fn scrub_on_commit_blocks_commit_until_resave() {
        let store = CheckpointStore::new(2);
        store.enable_scrub_on_commit();
        store.save(0, "conv", 0, &buf(1, 8));
        store.save(1, "conv", 0, &buf(2, 8));
        assert!(store.is_committed("conv"), "clean saves commit normally");

        let store = CheckpointStore::new(2);
        store.enable_scrub_on_commit();
        store.save(0, "conv", 0, &buf(1, 8));
        assert!(store.corrupt(0, "conv"));
        store.save(1, "conv", 0, &buf(2, 8));
        assert!(
            !store.is_committed("conv"),
            "a flipped image must not become a resume point"
        );
        assert_eq!(store.scrub_failures(), 1);
        // The owning rank re-saves clean data: the phase commits.
        store.save(0, "conv", 1, &buf(3, 8));
        assert!(store.is_committed("conv"));
    }

    #[test]
    fn stored_checksum_supports_write_time_readback() {
        let store = CheckpointStore::new(1);
        assert_eq!(store.stored_checksum(0, "ghost"), None);
        let data = buf(9, 16);
        store.save(0, "ghost", 0, &data);
        assert_eq!(
            store.stored_checksum(0, "ghost"),
            Some(crate::resilience::checksum(&data))
        );
        let mut flipped = data.clone();
        flipped[3].im = f64::from_bits(flipped[3].im.to_bits() ^ (1 << 62));
        assert_ne!(
            store.stored_checksum(0, "ghost"),
            Some(crate::resilience::checksum(&flipped))
        );
    }

    #[test]
    fn uncommitted_saves_are_visible_but_not_resume_points() {
        let store = CheckpointStore::new(2);
        store.save(0, "segment-fft", 3, &buf(3, 4));
        assert!(store.has(0, "segment-fft"));
        assert!(!store.is_committed("segment-fft"));
        assert_eq!(store.epoch_of(0, "segment-fft"), Some(3));
        assert_eq!(store.saves(), 1);
    }
}
