//! In-memory checkpoint store for supervised cluster runs.
//!
//! A [`CheckpointStore`] holds per-rank, per-phase snapshots of pipeline
//! state (the SOI phase boundaries: `ghost` / `convolution` /
//! `segment-fft` / `all-to-all`; the CT baseline uses its own names).
//! Each snapshot is tagged with the epoch that produced it and carries an
//! FNV-1a checksum ([`checksum`](crate::resilience::checksum), the same
//! function the wire layer uses) so a restore can detect corruption
//! instead of silently recomputing from bad state.
//!
//! A phase **commits globally** once *all* ranks have saved it; committed
//! phases are the resume points a respawned rank may rejoin at (the
//! supervisor freezes the committed list per epoch so every rank makes
//! the same collective resume decision). When a phase commits, snapshots
//! of *earlier-committed* phases are pruned — the store never holds more
//! than the active recovery frontier plus the phase in flight.
//!
//! The store is shared (`Arc`) across epochs and rank incarnations, and
//! all methods take `&self`; internal state is mutex-protected.
//!
//! # Disk persistence
//!
//! [`CheckpointStore::persistent`] opens the store in **disk mode**: the
//! directory is the single source of truth, so snapshots survive full
//! process death (the in-process store dies with its process, which is
//! exactly what the multi-process transport's `kill -9` chaos needs to
//! survive). Every property the in-memory store enforces has a disk
//! counterpart:
//!
//! * **Atomicity** — images are written to a temp file and `rename`d
//!   into place, so a crash mid-write can never leave a half-written
//!   image under the live name (readers see the old image or the new
//!   one, nothing in between).
//! * **Integrity** — each image carries a magic, the producing epoch,
//!   and the payload's FNV-1a checksum; restores re-verify, and opening
//!   the store scrubs every image on load, quarantining (removing)
//!   corrupt ones so they read as *missing*, never as valid state.
//! * **Global commit** — a phase commits when all `parties` image files
//!   exist; the commit is recorded as an ordered `commit-NNNN-<phase>`
//!   marker file created with `create_new` (so concurrent committers
//!   race safely), and images of earlier-committed phases are pruned.
//!
//! Separate OS processes sharing the directory each open their own
//! `CheckpointStore`; commit state lives in the marker files, so every
//! process sees the same resume frontier.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use soifft_num::c64;

use crate::resilience::checksum;

/// Interns a runtime phase name (e.g. parsed from a checkpoint file
/// name) into the `&'static str` world the store's API speaks.
fn intern(name: &str) -> &'static str {
    static REGISTRY: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let reg = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut g = reg.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&s) = g.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    g.insert(name.to_string(), leaked);
    leaked
}

/// Magic prefix of a checkpoint image file (versioned).
const IMAGE_MAGIC: &[u8; 8] = b"SOICKPT1";

fn image_name(rank: usize, phase: &str) -> String {
    format!("r{rank}-{phase}.ckpt")
}

/// A decoded checkpoint image file.
struct DiskImage {
    epoch: u64,
    stored_checksum: u64,
    data: Vec<c64>,
}

fn encode_image(epoch: u64, sum: u64, data: &[c64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(32 + data.len() * 16);
    bytes.extend_from_slice(IMAGE_MAGIC);
    bytes.extend_from_slice(&epoch.to_le_bytes());
    bytes.extend_from_slice(&sum.to_le_bytes());
    bytes.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for z in data {
        bytes.extend_from_slice(&z.re.to_bits().to_le_bytes());
        bytes.extend_from_slice(&z.im.to_bits().to_le_bytes());
    }
    bytes
}

/// Reads and structurally validates an image file (`None` when the file
/// is unreadable, truncated, or not an image — payload *checksum*
/// verification is the caller's, so corrupt-vs-missing stays
/// distinguishable).
fn read_image(path: &Path) -> Option<DiskImage> {
    let bytes = fs::read(path).ok()?;
    if bytes.len() < 32 || bytes[..8] != IMAGE_MAGIC[..] {
        return None;
    }
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let epoch = word(8);
    let stored_checksum = word(16);
    let len = word(24) as usize;
    if bytes.len() != 32 + len.checked_mul(16)? {
        return None;
    }
    let data = (0..len)
        .map(|i| {
            let at = 32 + i * 16;
            c64::new(f64::from_bits(word(at)), f64::from_bits(word(at + 8)))
        })
        .collect();
    Some(DiskImage {
        epoch,
        stored_checksum,
        data,
    })
}

/// The committed phases recorded in `dir`'s marker files, in commit
/// (sequence) order.
fn disk_committed(dir: &Path) -> Vec<(u32, &'static str)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("commit-") else {
            continue;
        };
        let Some((seq, phase)) = rest.split_once('-') else {
            continue;
        };
        if let Ok(seq) = seq.parse::<u32>() {
            out.push((seq, intern(phase)));
        }
    }
    out.sort();
    out
}

/// Why a snapshot could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// No snapshot exists for this `(rank, phase)`.
    Missing {
        /// The rank whose snapshot was requested.
        rank: usize,
        /// The requested phase.
        phase: &'static str,
    },
    /// The stored data no longer matches its FNV-1a checksum.
    Corrupt {
        /// The rank whose snapshot is corrupt.
        rank: usize,
        /// The corrupt phase.
        phase: &'static str,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Missing { rank, phase } => {
                write!(f, "no checkpoint for rank {rank} at phase {phase:?}")
            }
            CheckpointError::Corrupt { rank, phase } => {
                write!(
                    f,
                    "checkpoint for rank {rank} at phase {phase:?} failed its checksum"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One epoch-tagged, checksummed snapshot.
#[derive(Clone, Debug)]
struct Snapshot {
    epoch: u64,
    checksum: u64,
    data: Vec<c64>,
}

#[derive(Default)]
struct Inner {
    snaps: HashMap<(usize, &'static str), Snapshot>,
    /// Phases that have committed globally, in commit order.
    committed: Vec<&'static str>,
    saves: u64,
    pruned: u64,
    /// When set, a phase is re-verified against its checksums before it
    /// may commit (see [`CheckpointStore::enable_scrub_on_commit`]).
    scrub_on_commit: bool,
    scrub_failures: u64,
}

/// Shared per-run checkpoint store (see module docs).
pub struct CheckpointStore {
    parties: usize,
    inner: Mutex<Inner>,
    /// When set, this directory — not the in-memory map — is the source
    /// of truth for snapshots and commit state (disk mode).
    disk: Option<PathBuf>,
}

impl CheckpointStore {
    /// A store for a cluster of `parties` ranks (a phase commits once all
    /// `parties` ranks have saved it).
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "need at least one party");
        CheckpointStore {
            parties,
            inner: Mutex::new(Inner::default()),
            disk: None,
        }
    }

    /// Opens a **disk-mode** store rooted at `dir` (created if absent):
    /// snapshots and commit markers live as files and survive process
    /// death, so a respawned OS process resumes from exactly what its
    /// predecessor committed. Opening scrubs every existing image —
    /// half-written temp files are swept and images failing their
    /// checksum are quarantined (removed, counted in
    /// [`scrub_failures`](Self::scrub_failures)) so they read back as
    /// *missing* rather than as valid state.
    ///
    /// # Errors
    /// Propagates directory creation / listing failures.
    pub fn persistent(parties: usize, dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        assert!(parties >= 1, "need at least one party");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut scrub_failures = 0u64;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with('.') && name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            } else if name.starts_with('r') && name.ends_with(".ckpt") {
                let ok = read_image(&entry.path())
                    .is_some_and(|img| checksum(&img.data) == img.stored_checksum);
                if !ok {
                    let _ = fs::remove_file(entry.path());
                    scrub_failures += 1;
                }
            }
        }
        let store = CheckpointStore {
            parties,
            inner: Mutex::new(Inner::default()),
            disk: Some(dir),
        };
        store.lock().scrub_failures = scrub_failures;
        Ok(store)
    }

    /// The backing directory when the store is in disk mode.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk.as_deref()
    }

    /// The number of ranks whose saves commit a phase.
    pub fn parties(&self) -> usize {
        self.parties
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn image_path(&self, dir: &Path, rank: usize, phase: &str) -> PathBuf {
        let _ = self;
        dir.join(image_name(rank, phase))
    }

    /// Disk-mode save: atomic image write, then the global commit check
    /// against what is actually on disk (other parties may live in other
    /// OS processes — the marker files are the only shared commit state).
    fn save_disk(&self, dir: &Path, rank: usize, phase: &'static str, epoch: u64, data: &[c64]) {
        let sum = checksum(data);
        let tmp = dir.join(format!(".r{rank}-{phase}.tmp"));
        let bytes = encode_image(epoch, sum, data);
        // Durability over liveness: a rank that cannot persist its state
        // must not keep computing past the checkpoint, so a write failure
        // kills it (the supervisor treats that as a rank death).
        fs::write(&tmp, &bytes).expect("checkpoint image write failed");
        fs::rename(&tmp, self.image_path(dir, rank, phase)).expect("checkpoint rename failed");
        {
            let mut g = self.lock();
            g.saves += 1;
        }
        let committed = disk_committed(dir);
        if committed.iter().any(|&(_, ph)| ph == phase) {
            return;
        }
        let all_saved = (0..self.parties).all(|r| self.image_path(dir, r, phase).exists());
        if !all_saved {
            return;
        }
        if self.lock().scrub_on_commit {
            let failures = (0..self.parties)
                .filter(|&r| {
                    read_image(&self.image_path(dir, r, phase))
                        .is_none_or(|img| checksum(&img.data) != img.stored_checksum)
                })
                .count() as u64;
            if failures > 0 {
                self.lock().scrub_failures += failures;
                return;
            }
        }
        // Claim the next free marker sequence number; `create_new` makes
        // concurrent committers (possibly in different processes) race
        // safely — on collision, re-check whether someone else already
        // committed this phase, else try the next slot.
        let mut seq = committed.len() as u32;
        loop {
            let marker = dir.join(format!("commit-{seq:04}-{phase}"));
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&marker)
            {
                Ok(_) => break,
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if disk_committed(dir).iter().any(|&(_, ph)| ph == phase) {
                        return;
                    }
                    seq += 1;
                }
                Err(_) => return,
            }
        }
        // Prune images of phases committed before this one (the new
        // commit supersedes them as resume points).
        let mut pruned = 0u64;
        for &(_, ph) in &committed {
            for r in 0..self.parties {
                if fs::remove_file(self.image_path(dir, r, ph)).is_ok() {
                    pruned += 1;
                }
            }
        }
        self.lock().pruned += pruned;
    }

    /// Saves `rank`'s snapshot of `phase` produced in `epoch`, replacing
    /// any earlier snapshot for the pair. When this save is the last of
    /// the `parties` ranks, the phase commits and every snapshot of
    /// phases committed *before* it is pruned.
    pub fn save(&self, rank: usize, phase: &'static str, epoch: u64, data: &[c64]) {
        assert!(rank < self.parties, "rank out of range");
        if let Some(dir) = self.disk.clone() {
            return self.save_disk(&dir, rank, phase, epoch, data);
        }
        let snap = Snapshot {
            epoch,
            checksum: checksum(data),
            data: data.to_vec(),
        };
        let mut g = self.lock();
        g.snaps.insert((rank, phase), snap);
        g.saves += 1;
        let all_saved = (0..self.parties).all(|r| g.snaps.contains_key(&(r, phase)));
        if all_saved && g.scrub_on_commit {
            // Scrub pass: a snapshot flipped in store memory since its save
            // is caught *now*, at write/commit time — the phase stays
            // uncommitted (never becomes a resume point) until the owning
            // rank re-saves clean data.
            let bad = (0..self.parties).filter(|&r| {
                let snap = &g.snaps[&(r, phase)];
                checksum(&snap.data) != snap.checksum
            });
            let failures = bad.count() as u64;
            if failures > 0 {
                g.scrub_failures += failures;
                return;
            }
        }
        if all_saved && !g.committed.contains(&phase) {
            g.committed.push(phase);
            // Prune everything superseded by the new commit frontier.
            let keep_from = g.committed.len() - 1;
            let stale: Vec<&'static str> = g.committed[..keep_from].to_vec();
            for ph in stale {
                for r in 0..self.parties {
                    if g.snaps.remove(&(r, ph)).is_some() {
                        g.pruned += 1;
                    }
                }
            }
        }
    }

    /// Restores `rank`'s snapshot of `phase`, verifying its checksum.
    ///
    /// # Errors
    /// [`CheckpointError::Missing`] if nothing was saved,
    /// [`CheckpointError::Corrupt`] if the data fails verification.
    pub fn restore(&self, rank: usize, phase: &'static str) -> Result<Vec<c64>, CheckpointError> {
        if let Some(dir) = &self.disk {
            let path = self.image_path(dir, rank, phase);
            if !path.exists() {
                return Err(CheckpointError::Missing { rank, phase });
            }
            let img = read_image(&path).ok_or(CheckpointError::Corrupt { rank, phase })?;
            if checksum(&img.data) != img.stored_checksum {
                return Err(CheckpointError::Corrupt { rank, phase });
            }
            return Ok(img.data);
        }
        let g = self.lock();
        let snap = g
            .snaps
            .get(&(rank, phase))
            .ok_or(CheckpointError::Missing { rank, phase })?;
        if checksum(&snap.data) != snap.checksum {
            return Err(CheckpointError::Corrupt { rank, phase });
        }
        Ok(snap.data.clone())
    }

    /// Verifies every live snapshot against its stored FNV-1a checksum
    /// (without waiting for a restore to need it). Returns the number of
    /// snapshots verified, or the first corruption found.
    ///
    /// # Errors
    /// [`CheckpointError::Corrupt`] naming the first bad `(rank, phase)`,
    /// in deterministic (sorted) order.
    pub fn scrub(&self) -> Result<usize, CheckpointError> {
        if let Some(dir) = &self.disk {
            let mut images: Vec<(usize, &'static str)> = self
                .disk_images(dir)
                .into_iter()
                .map(|(rank, phase, _)| (rank, phase))
                .collect();
            images.sort();
            for &(rank, phase) in &images {
                let ok = read_image(&self.image_path(dir, rank, phase))
                    .is_some_and(|img| checksum(&img.data) == img.stored_checksum);
                if !ok {
                    return Err(CheckpointError::Corrupt { rank, phase });
                }
            }
            return Ok(images.len());
        }
        let g = self.lock();
        let mut keys: Vec<&(usize, &'static str)> = g.snaps.keys().collect();
        keys.sort();
        for &&(rank, phase) in &keys {
            let snap = &g.snaps[&(rank, phase)];
            if checksum(&snap.data) != snap.checksum {
                return Err(CheckpointError::Corrupt { rank, phase });
            }
        }
        Ok(keys.len())
    }

    /// Turns on the scrub-on-commit pass: before a phase commits (all
    /// ranks saved), every one of its snapshots is re-verified against its
    /// checksum, and a corrupt snapshot blocks the commit — so a flipped
    /// image is caught at write time, not at the moment a recovery needs
    /// it. Callable on the shared store at any point (the supervised
    /// pipelines enable it when their validation policy is on).
    pub fn enable_scrub_on_commit(&self) {
        self.lock().scrub_on_commit = true;
    }

    /// Commits blocked (and snapshots flagged) by the scrub-on-commit pass.
    pub fn scrub_failures(&self) -> u64 {
        self.lock().scrub_failures
    }

    /// The FNV-1a checksum recorded when `rank`'s snapshot of `phase` was
    /// saved, if present. Lets a writer verify its save landed intact
    /// (write-time read-back) without cloning the payload out.
    pub fn stored_checksum(&self, rank: usize, phase: &'static str) -> Option<u64> {
        if let Some(dir) = &self.disk {
            return read_image(&self.image_path(dir, rank, phase)).map(|img| img.stored_checksum);
        }
        self.lock().snaps.get(&(rank, phase)).map(|s| s.checksum)
    }

    /// True once every rank has saved `phase`.
    pub fn is_committed(&self, phase: &'static str) -> bool {
        if let Some(dir) = &self.disk {
            return disk_committed(dir).iter().any(|&(_, ph)| ph == phase);
        }
        self.lock().committed.contains(&phase)
    }

    /// The globally committed phases, in commit order (the last entry is
    /// the deepest resume point).
    pub fn committed_phases(&self) -> Vec<&'static str> {
        if let Some(dir) = &self.disk {
            return disk_committed(dir).into_iter().map(|(_, ph)| ph).collect();
        }
        self.lock().committed.clone()
    }

    /// True if `rank` has a snapshot of `phase` (committed or not).
    pub fn has(&self, rank: usize, phase: &'static str) -> bool {
        if let Some(dir) = &self.disk {
            return self.image_path(dir, rank, phase).exists();
        }
        self.lock().snaps.contains_key(&(rank, phase))
    }

    /// The epoch that produced `rank`'s snapshot of `phase`, if present.
    pub fn epoch_of(&self, rank: usize, phase: &'static str) -> Option<u64> {
        if let Some(dir) = &self.disk {
            return read_image(&self.image_path(dir, rank, phase)).map(|img| img.epoch);
        }
        self.lock().snaps.get(&(rank, phase)).map(|s| s.epoch)
    }

    /// Live (unpruned) snapshots currently held.
    pub fn live_snapshots(&self) -> usize {
        if let Some(dir) = &self.disk {
            return self.disk_images(dir).len();
        }
        self.lock().snaps.len()
    }

    /// Every `(rank, phase, path)` image currently on disk.
    fn disk_images(&self, dir: &Path) -> Vec<(usize, &'static str, PathBuf)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix('r') else {
                continue;
            };
            let Some(rest) = rest.strip_suffix(".ckpt") else {
                continue;
            };
            let Some((rank, phase)) = rest.split_once('-') else {
                continue;
            };
            if let Ok(rank) = rank.parse::<usize>() {
                out.push((rank, intern(phase), entry.path()));
            }
        }
        out
    }

    /// Total snapshots ever saved.
    pub fn saves(&self) -> u64 {
        self.lock().saves
    }

    /// Snapshots discarded by commit-time pruning.
    pub fn pruned(&self) -> u64 {
        self.lock().pruned
    }

    /// Chaos hook: flips one bit of `rank`'s stored snapshot of `phase`
    /// *without* updating its checksum, so the next restore reports
    /// [`CheckpointError::Corrupt`]. Returns false when no such snapshot
    /// exists. Test-facing — the pipeline never corrupts its own store.
    pub fn corrupt(&self, rank: usize, phase: &'static str) -> bool {
        if let Some(dir) = &self.disk {
            let path = self.image_path(dir, rank, phase);
            let Ok(mut bytes) = fs::read(&path) else {
                return false;
            };
            if bytes.len() <= 32 {
                return false;
            }
            bytes[32] ^= 1; // flip a payload bit, leave the stored checksum
            return fs::write(&path, &bytes).is_ok();
        }
        let mut g = self.lock();
        match g.snaps.get_mut(&(rank, phase)) {
            Some(snap) if !snap.data.is_empty() => {
                let v = &mut snap.data[0];
                v.re = f64::from_bits(v.re.to_bits() ^ 1);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(seed: u64, len: usize) -> Vec<c64> {
        (0..len)
            .map(|i| c64::new((seed as f64) + i as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let store = CheckpointStore::new(2);
        let data = buf(7, 33);
        store.save(0, "ghost", 0, &data);
        let got = store.restore(0, "ghost").unwrap();
        let bits = |v: &[c64]| -> Vec<u64> {
            v.iter()
                .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
                .collect()
        };
        assert_eq!(bits(&got), bits(&data));
    }

    #[test]
    fn missing_and_corrupt_are_distinguished() {
        let store = CheckpointStore::new(2);
        assert_eq!(
            store.restore(1, "ghost"),
            Err(CheckpointError::Missing {
                rank: 1,
                phase: "ghost"
            })
        );
        store.save(1, "ghost", 0, &buf(1, 8));
        assert!(store.corrupt(1, "ghost"));
        assert_eq!(
            store.restore(1, "ghost"),
            Err(CheckpointError::Corrupt {
                rank: 1,
                phase: "ghost"
            })
        );
        // A fresh save repairs the slot.
        store.save(1, "ghost", 1, &buf(2, 8));
        assert!(store.restore(1, "ghost").is_ok());
        assert_eq!(store.epoch_of(1, "ghost"), Some(1));
    }

    #[test]
    fn phase_commits_when_all_ranks_saved() {
        let store = CheckpointStore::new(3);
        store.save(0, "conv", 0, &buf(0, 4));
        store.save(1, "conv", 0, &buf(1, 4));
        assert!(!store.is_committed("conv"));
        store.save(2, "conv", 0, &buf(2, 4));
        assert!(store.is_committed("conv"));
        assert_eq!(store.committed_phases(), vec!["conv"]);
    }

    #[test]
    fn commit_prunes_earlier_phases() {
        let store = CheckpointStore::new(2);
        for r in 0..2 {
            store.save(r, "ghost", 0, &buf(r as u64, 4));
        }
        for r in 0..2 {
            store.save(r, "conv", 0, &buf(10 + r as u64, 4));
        }
        assert_eq!(store.committed_phases(), vec!["ghost", "conv"]);
        // The ghost snapshots are gone; conv survives.
        assert!(!store.has(0, "ghost"));
        assert!(!store.has(1, "ghost"));
        assert!(store.has(0, "conv"));
        assert_eq!(store.pruned(), 2);
        assert_eq!(store.live_snapshots(), 2);
    }

    #[test]
    fn scrub_verifies_all_live_snapshots() {
        let store = CheckpointStore::new(2);
        store.save(0, "ghost", 0, &buf(1, 8));
        store.save(1, "ghost", 0, &buf(2, 8));
        assert_eq!(store.scrub(), Ok(2));
        assert!(store.corrupt(1, "ghost"));
        assert_eq!(
            store.scrub(),
            Err(CheckpointError::Corrupt {
                rank: 1,
                phase: "ghost"
            })
        );
        assert_eq!(store.scrub_failures(), 0, "manual scrub does not count");
    }

    #[test]
    fn scrub_on_commit_blocks_commit_until_resave() {
        let store = CheckpointStore::new(2);
        store.enable_scrub_on_commit();
        store.save(0, "conv", 0, &buf(1, 8));
        store.save(1, "conv", 0, &buf(2, 8));
        assert!(store.is_committed("conv"), "clean saves commit normally");

        let store = CheckpointStore::new(2);
        store.enable_scrub_on_commit();
        store.save(0, "conv", 0, &buf(1, 8));
        assert!(store.corrupt(0, "conv"));
        store.save(1, "conv", 0, &buf(2, 8));
        assert!(
            !store.is_committed("conv"),
            "a flipped image must not become a resume point"
        );
        assert_eq!(store.scrub_failures(), 1);
        // The owning rank re-saves clean data: the phase commits.
        store.save(0, "conv", 1, &buf(3, 8));
        assert!(store.is_committed("conv"));
    }

    #[test]
    fn stored_checksum_supports_write_time_readback() {
        let store = CheckpointStore::new(1);
        assert_eq!(store.stored_checksum(0, "ghost"), None);
        let data = buf(9, 16);
        store.save(0, "ghost", 0, &data);
        assert_eq!(
            store.stored_checksum(0, "ghost"),
            Some(crate::resilience::checksum(&data))
        );
        let mut flipped = data.clone();
        flipped[3].im = f64::from_bits(flipped[3].im.to_bits() ^ (1 << 62));
        assert_ne!(
            store.stored_checksum(0, "ghost"),
            Some(crate::resilience::checksum(&flipped))
        );
    }

    #[test]
    fn uncommitted_saves_are_visible_but_not_resume_points() {
        let store = CheckpointStore::new(2);
        store.save(0, "segment-fft", 3, &buf(3, 4));
        assert!(store.has(0, "segment-fft"));
        assert!(!store.is_committed("segment-fft"));
        assert_eq!(store.epoch_of(0, "segment-fft"), Some(3));
        assert_eq!(store.saves(), 1);
    }

    /// Fresh scratch dir, removed on drop.
    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("soifft-ckpt-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn bits(v: &[c64]) -> Vec<u64> {
        v.iter()
            .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
            .collect()
    }

    #[test]
    fn disk_round_trip_survives_reopen() {
        let tmp = TempDir::new("roundtrip");
        let data = buf(11, 57);
        {
            let store = CheckpointStore::persistent(2, &tmp.0).unwrap();
            store.save(0, "ghost", 4, &data);
            assert_eq!(store.epoch_of(0, "ghost"), Some(4));
        }
        // A brand-new store on the same dir (≈ respawned process) sees
        // the snapshot bit-for-bit.
        let store = CheckpointStore::persistent(2, &tmp.0).unwrap();
        assert!(store.has(0, "ghost"));
        assert_eq!(store.epoch_of(0, "ghost"), Some(4));
        assert_eq!(
            store.stored_checksum(0, "ghost"),
            Some(crate::resilience::checksum(&data))
        );
        assert_eq!(bits(&store.restore(0, "ghost").unwrap()), bits(&data));
        assert_eq!(
            store.restore(1, "ghost"),
            Err(CheckpointError::Missing {
                rank: 1,
                phase: "ghost"
            })
        );
    }

    #[test]
    fn disk_commit_markers_order_and_prune_across_stores() {
        let tmp = TempDir::new("commit");
        // Two stores on the same dir stand in for two OS processes.
        let a = CheckpointStore::persistent(2, &tmp.0).unwrap();
        let b = CheckpointStore::persistent(2, &tmp.0).unwrap();
        a.save(0, "ghost", 0, &buf(1, 8));
        assert!(!a.is_committed("ghost"));
        b.save(1, "ghost", 0, &buf(2, 8));
        assert!(a.is_committed("ghost"), "commit state is shared via disk");
        a.save(0, "conv", 0, &buf(3, 8));
        b.save(1, "conv", 0, &buf(4, 8));
        assert_eq!(a.committed_phases(), vec!["ghost", "conv"]);
        assert_eq!(b.committed_phases(), vec!["ghost", "conv"]);
        // The conv commit pruned the ghost images.
        assert!(!a.has(0, "ghost"));
        assert!(!b.has(1, "ghost"));
        assert_eq!(a.live_snapshots(), 2);
        assert_eq!(a.scrub(), Ok(2));
    }

    #[test]
    fn disk_corrupt_image_detected_and_quarantined_on_reopen() {
        let tmp = TempDir::new("scrubload");
        let store = CheckpointStore::persistent(1, &tmp.0).unwrap();
        store.save(0, "segment-fft", 2, &buf(5, 16));
        assert!(store.corrupt(0, "segment-fft"));
        assert_eq!(
            store.restore(0, "segment-fft"),
            Err(CheckpointError::Corrupt {
                rank: 0,
                phase: "segment-fft"
            })
        );
        assert!(store.scrub().is_err());
        // Reopen scrubs on load: the bad image is quarantined (removed)
        // and reads back as missing, never as valid state.
        let store = CheckpointStore::persistent(1, &tmp.0).unwrap();
        assert_eq!(store.scrub_failures(), 1);
        assert_eq!(
            store.restore(0, "segment-fft"),
            Err(CheckpointError::Missing {
                rank: 0,
                phase: "segment-fft"
            })
        );
    }
}
