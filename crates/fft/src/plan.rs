//! FFT plans: the general node-local transform front-end.
//!
//! A [`Plan`] is built once for a given length and reused (plans own their
//! twiddle tables, so construction is `O(n)` trig and execution is
//! allocation-free when the caller supplies scratch). Plans are generic
//! over the precision parameter ([`soifft_num::Real`], default `f64`); the
//! butterfly constants are computed in `f64` and demoted once at
//! construction. Dispatch:
//!
//! * `n == 1` — identity,
//! * `n` smooth (largest prime factor ≤ [`MAX_RADIX`]) — recursive
//!   decimation-in-time Cooley–Tukey with specialized radix-2/3/4/5
//!   butterflies and a generic small-prime butterfly,
//! * anything else — Bluestein's chirp-z algorithm
//!   ([`crate::bluestein`]).
//!
//! The recursion reads the (conceptually strided) input depth-first and
//! writes contiguous output, which keeps each combine pass within the
//! subarray produced by its children — the cache-oblivious layout that the
//! 6-step algorithm then scales past LLC sizes.

use std::fmt;

use soifft_num::factor::factorize;
use soifft_num::{Complex, Real};

use crate::bluestein::BluesteinPlan;
use crate::twiddle::Twiddles;

/// Largest prime handled by the generic Cooley–Tukey butterfly; larger
/// prime factors route the whole transform to Bluestein.
pub const MAX_RADIX: usize = 31;

/// Error from fallible plan construction ([`Plan::try_new`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The requested transform length was zero; transforms need `n ≥ 1`.
    ZeroLength,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ZeroLength => write!(f, "transform length must be at least 1"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A reusable FFT plan for a fixed transform length.
///
/// # Example
///
/// ```
/// use soifft_fft::Plan;
/// use soifft_num::c64;
///
/// let plan = Plan::new(240); // 2^4·3·5 — mixed radix
/// let mut data = vec![c64::ZERO; 240];
/// data[1] = c64::ONE;
/// plan.forward(&mut data);
/// // The DFT of a shifted impulse is a complex exponential:
/// assert!((data[10] - c64::root_of_unity(240, 10)).abs() < 1e-12);
/// plan.inverse(&mut data);
/// assert!((data[1] - c64::ONE).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct Plan<T: Real = f64> {
    n: usize,
    kind: Kind<T>,
}

#[derive(Clone, Debug)]
enum Kind<T: Real> {
    Identity,
    CooleyTukey {
        factors: Vec<usize>,
        tw: Twiddles<T>,
    },
    Bluestein(Box<BluesteinPlan<T>>),
}

impl<T: Real> Plan<T> {
    /// Builds a plan for `n`-point transforms (`n ≥ 1`).
    ///
    /// # Panics
    /// Panics if `n == 0`; use [`Plan::try_new`] where a zero length can
    /// come from untrusted input.
    pub fn new(n: usize) -> Self {
        match Self::try_new(n) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible plan construction: returns a typed error for a zero
    /// length instead of panicking.
    pub fn try_new(n: usize) -> Result<Self, PlanError> {
        if n == 0 {
            return Err(PlanError::ZeroLength);
        }
        if n == 1 {
            return Ok(Plan {
                n,
                kind: Kind::Identity,
            });
        }
        let fac = factorize(n);
        if fac.iter().all(|&(p, _)| p <= MAX_RADIX) {
            // Radix schedule: fold the power-of-two part into radix-8
            // stages (the paper's §5.2.4 register-blocking choice: "we use
            // radix 8 and 16, case by case"), topping up with a 4 and/or a
            // 2; other primes appear with their multiplicity.
            let mut factors = Vec::new();
            for (p, mult) in fac {
                if p == 2 {
                    let mut e = mult;
                    while e >= 3 {
                        factors.push(8);
                        e -= 3;
                    }
                    if e == 2 {
                        factors.push(4);
                    } else if e == 1 {
                        factors.push(2);
                    }
                } else {
                    for _ in 0..mult {
                        factors.push(p);
                    }
                }
            }
            Ok(Plan {
                n,
                kind: Kind::CooleyTukey {
                    factors,
                    tw: Twiddles::new(n),
                },
            })
        } else {
            Ok(Plan {
                n,
                kind: Kind::Bluestein(Box::new(BluesteinPlan::new(n))),
            })
        }
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the trivial length-1 plan.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when this plan fell back to Bluestein (useful for tests and for
    /// planning reports).
    pub fn is_bluestein(&self) -> bool {
        matches!(self.kind, Kind::Bluestein(_))
    }

    /// Scratch length needed by [`Plan::forward_with_scratch`] /
    /// [`Plan::inverse_with_scratch`].
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            Kind::Identity => 0,
            Kind::CooleyTukey { .. } => self.n,
            Kind::Bluestein(b) => b.scratch_len(),
        }
    }

    /// Allocates a scratch buffer of the right size.
    pub fn make_scratch(&self) -> Vec<Complex<T>> {
        vec![Complex::<T>::ZERO; self.scratch_len()]
    }

    /// Forward transform, in place. Allocates scratch internally; hot loops
    /// should use [`Plan::forward_with_scratch`].
    pub fn forward(&self, data: &mut [Complex<T>]) {
        let mut scratch = self.make_scratch();
        self.forward_with_scratch(data, &mut scratch);
    }

    /// Forward transform, in place, with caller-provided scratch
    /// (`scratch.len() >= self.scratch_len()`).
    pub fn forward_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "data length != plan length");
        match &self.kind {
            Kind::Identity => {}
            Kind::CooleyTukey { factors, tw } => {
                let (src, _) = scratch.split_at_mut(self.n);
                src.copy_from_slice(data);
                ct_recursive(src, 0, 1, data, self.n, factors, tw, self.n);
            }
            Kind::Bluestein(b) => b.forward(data, scratch),
        }
    }

    /// Forward transform, out of place (`input` is left untouched).
    pub fn forward_oop(&self, input: &[Complex<T>], output: &mut [Complex<T>]) {
        assert_eq!(input.len(), self.n, "input length != plan length");
        assert_eq!(output.len(), self.n, "output length != plan length");
        match &self.kind {
            Kind::Identity => output.copy_from_slice(input),
            Kind::CooleyTukey { factors, tw } => {
                ct_recursive(input, 0, 1, output, self.n, factors, tw, self.n);
            }
            Kind::Bluestein(b) => {
                output.copy_from_slice(input);
                let mut scratch = self.make_scratch();
                b.forward(output, &mut scratch);
            }
        }
    }

    /// Inverse transform, in place, normalized by `1/n` so that
    /// `inverse(forward(x)) == x`.
    pub fn inverse(&self, data: &mut [Complex<T>]) {
        let mut scratch = self.make_scratch();
        self.inverse_with_scratch(data, &mut scratch);
    }

    /// Inverse transform with caller-provided scratch.
    ///
    /// Implemented by conjugation around the forward kernel
    /// (`ifft(x) = conj(fft(conj(x)))/n`), so every fast path is exercised
    /// by both directions.
    pub fn inverse_with_scratch(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward_with_scratch(data, scratch);
        let inv_n = T::from_f64(1.0 / self.n as f64);
        for z in data.iter_mut() {
            *z = z.conj().scale(inv_n);
        }
    }
}

/// Recursive decimation-in-time step: computes the `n`-point DFT of the
/// virtual sequence `src[src_off + i·stride]` into `dst[0..n]`.
///
/// `factors` is the radix schedule for this level downward; `tw` is the
/// shared full-size table for `big_n` (the root length), indexed with
/// stride `big_n / n` at this level.
#[allow(clippy::too_many_arguments)]
fn ct_recursive<T: Real>(
    src: &[Complex<T>],
    src_off: usize,
    stride: usize,
    dst: &mut [Complex<T>],
    n: usize,
    factors: &[usize],
    tw: &Twiddles<T>,
    big_n: usize,
) {
    if n == 1 {
        dst[0] = src[src_off];
        return;
    }
    // Unrolled leaves (§5.2.4 "we unroll the leaf of the FFT recursion"):
    // computing the 2- and 4-point DFTs directly from the strided input
    // skips two levels of call overhead per leaf.
    if n == 2 {
        let a = src[src_off];
        let b = src[src_off + stride];
        dst[0] = a + b;
        dst[1] = a - b;
        return;
    }
    if n == 4 {
        let a = src[src_off];
        let b = src[src_off + stride];
        let c = src[src_off + 2 * stride];
        let d = src[src_off + 3 * stride];
        let s0 = a + c;
        let s1 = a - c;
        let s2 = b + d;
        let s3 = (b - d).mul_neg_i();
        dst[0] = s0 + s2;
        dst[1] = s1 + s3;
        dst[2] = s0 - s2;
        dst[3] = s1 - s3;
        return;
    }
    let r = factors[0];
    let m = n / r;
    debug_assert_eq!(r * m, n, "factor schedule does not divide n");

    // Children: r interleaved sub-sequences, each of length m.
    for j in 0..r {
        ct_recursive(
            src,
            src_off + j * stride,
            stride * r,
            &mut dst[j * m..(j + 1) * m],
            m,
            &factors[1..],
            tw,
            big_n,
        );
    }

    // Combine: for every k, gather the r children's k-th outputs, apply
    // level twiddles w_n^{jk}, and run an r-point DFT across them.
    let tw_stride = big_n / n;
    match r {
        2 => combine_radix2(dst, m, tw, tw_stride),
        3 => combine_radix3(dst, m, tw, tw_stride),
        4 => combine_radix4(dst, m, tw, tw_stride),
        5 => combine_radix5(dst, m, tw, tw_stride),
        8 => combine_radix8(dst, m, tw, tw_stride),
        _ => combine_generic(dst, r, m, tw, tw_stride, n),
    }
}

/// Radix-8 DIT butterfly, built from two radix-4 halves joined by
/// `w_8 = (1−i)/√2` rotations — 8 outputs per column with all constants in
/// registers (the unrolled-leaf / register-blocking style of §5.2.4).
#[inline]
fn combine_radix8<T: Real>(dst: &mut [Complex<T>], m: usize, tw: &Twiddles<T>, ts: usize) {
    let inv_sqrt2 = T::from_f64(std::f64::consts::FRAC_1_SQRT_2);
    let n_tw = tw.len();
    for k in 0..m {
        // Gather twiddled children.
        let mut a = [Complex::<T>::ZERO; 8];
        a[0] = dst[k];
        for (j, slot) in a.iter_mut().enumerate().skip(1) {
            *slot = tw.get(j * k * ts % n_tw) * dst[j * m + k];
        }
        // Even half: radix-4 over a0,a2,a4,a6.
        let e0 = a[0] + a[4];
        let e1 = a[0] - a[4];
        let e2 = a[2] + a[6];
        let e3 = (a[2] - a[6]).mul_neg_i();
        let x0 = e0 + e2;
        let x1 = e1 + e3;
        let x2 = e0 - e2;
        let x3 = e1 - e3;
        // Odd half: radix-4 over a1,a3,a5,a7.
        let o0 = a[1] + a[5];
        let o1 = a[1] - a[5];
        let o2 = a[3] + a[7];
        let o3 = (a[3] - a[7]).mul_neg_i();
        let y0 = o0 + o2;
        let y1 = o1 + o3;
        let y2 = o0 - o2;
        let y3 = o1 - o3;
        // Join with w8^l rotations: w8 = (1−i)/√2, w8² = −i, w8³ = −(1+i)/√2.
        let r1 = Complex::new((y1.re + y1.im) * inv_sqrt2, (y1.im - y1.re) * inv_sqrt2);
        let r2 = y2.mul_neg_i();
        let r3 = Complex::new((y3.im - y3.re) * inv_sqrt2, -(y3.re + y3.im) * inv_sqrt2);
        dst[k] = x0 + y0;
        dst[m + k] = x1 + r1;
        dst[2 * m + k] = x2 + r2;
        dst[3 * m + k] = x3 + r3;
        dst[4 * m + k] = x0 - y0;
        dst[5 * m + k] = x1 - r1;
        dst[6 * m + k] = x2 - r2;
        dst[7 * m + k] = x3 - r3;
    }
}

#[inline]
fn combine_radix2<T: Real>(dst: &mut [Complex<T>], m: usize, tw: &Twiddles<T>, ts: usize) {
    let (e, o) = dst.split_at_mut(m);
    for k in 0..m {
        let t = tw.get(k * ts) * o[k];
        let a = e[k];
        e[k] = a + t;
        o[k] = a - t;
    }
}

#[inline]
fn combine_radix4<T: Real>(dst: &mut [Complex<T>], m: usize, tw: &Twiddles<T>, ts: usize) {
    // Split into the four children's output rows.
    let (q01, q23) = dst.split_at_mut(2 * m);
    let (q0, q1) = q01.split_at_mut(m);
    let (q2, q3) = q23.split_at_mut(m);
    for k in 0..m {
        let a = q0[k];
        let b = tw.get(k * ts) * q1[k];
        let c = tw.get(2 * k * ts % tw.len()) * q2[k];
        let d = tw.get(3 * k * ts % tw.len()) * q3[k];
        // Radix-4 DIT butterfly (forward sign: w_4 = −i).
        let s0 = a + c;
        let s1 = a - c;
        let s2 = b + d;
        let s3 = (b - d).mul_neg_i();
        q0[k] = s0 + s2;
        q1[k] = s1 + s3;
        q2[k] = s0 - s2;
        q3[k] = s1 - s3;
    }
}

#[inline]
fn combine_radix3<T: Real>(dst: &mut [Complex<T>], m: usize, tw: &Twiddles<T>, ts: usize) {
    // w_3 = e^{−2πi/3}: re = −1/2, im = −√3/2.
    let c_3 = T::from_f64(-0.5);
    let s_3 = T::from_f64(-0.866_025_403_784_438_6);
    let (q0, q12) = dst.split_at_mut(m);
    let (q1, q2) = q12.split_at_mut(m);
    for k in 0..m {
        let a = q0[k];
        let b = tw.get(k * ts) * q1[k];
        let c = tw.get(2 * k * ts % tw.len()) * q2[k];
        let sum = b + c;
        let diff = b - c;
        // X0 = a + b + c
        // X1 = a + w b + w² c = a + C·sum + i·S·diff
        // X2 = conj-pattern with −S.
        let re_part = a + sum * c_3;
        let im_part = Complex::new(-diff.im * s_3, diff.re * s_3);
        q0[k] = a + sum;
        q1[k] = re_part + im_part;
        q2[k] = re_part - im_part;
    }
}

#[inline]
fn combine_radix5<T: Real>(dst: &mut [Complex<T>], m: usize, tw: &Twiddles<T>, ts: usize) {
    // w_5^k constants (forward sign).
    let c1 = T::from_f64(0.309_016_994_374_947_45); // cos(2π/5)
    let s1 = T::from_f64(-0.951_056_516_295_153_5); // −sin(2π/5)
    let c2 = T::from_f64(-0.809_016_994_374_947_4); // cos(4π/5)
    let s2 = T::from_f64(-0.587_785_252_292_473_1); // −sin(4π/5)
    let n_tw = tw.len();
    let (q0, rest) = dst.split_at_mut(m);
    let (q1, rest) = rest.split_at_mut(m);
    let (q2, rest) = rest.split_at_mut(m);
    let (q3, q4) = rest.split_at_mut(m);
    for k in 0..m {
        let a0 = q0[k];
        let a1 = tw.get(k * ts) * q1[k];
        let a2 = tw.get(2 * k * ts % n_tw) * q2[k];
        let a3 = tw.get(3 * k * ts % n_tw) * q3[k];
        let a4 = tw.get(4 * k * ts % n_tw) * q4[k];
        let t1 = a1 + a4;
        let t2 = a2 + a3;
        let t3 = a1 - a4;
        let t4 = a2 - a3;
        q0[k] = a0 + t1 + t2;
        // X1 = a0 + C1·t1 + C2·t2 + i(S1·t3 + S2·t4), X4 its mirror.
        let r1 = a0 + t1 * c1 + t2 * c2;
        let i1 = Complex::new(-(t3.im * s1 + t4.im * s2), t3.re * s1 + t4.re * s2);
        // X2 = a0 + C2·t1 + C1·t2 + i(S2·t3 − S1·t4), X3 its mirror.
        let r2 = a0 + t1 * c2 + t2 * c1;
        let i2 = Complex::new(-(t3.im * s2 - t4.im * s1), t3.re * s2 - t4.re * s1);
        q1[k] = r1 + i1;
        q4[k] = r1 - i1;
        q2[k] = r2 + i2;
        q3[k] = r2 - i2;
    }
}

/// Generic small-prime butterfly: an explicit r-point DFT per output
/// column. O(r²) per column — acceptable for the r ≤ 31 primes this plan
/// admits.
fn combine_generic<T: Real>(
    dst: &mut [Complex<T>],
    r: usize,
    m: usize,
    tw: &Twiddles<T>,
    ts: usize,
    n: usize,
) {
    let n_tw = tw.len();
    let mut col_storage = [Complex::<T>::ZERO; MAX_RADIX + 1];
    let col = &mut col_storage[..r];
    for k in 0..m {
        for (j, c) in col.iter_mut().enumerate() {
            *c = tw.get(j * k * ts % n_tw) * dst[j * m + k];
        }
        for l in 0..r {
            // w_n^{(n/r)·jl} = w_r^{jl}; reuse the shared table.
            let mut acc = col[0];
            for (j, &c) in col.iter().enumerate().skip(1) {
                acc += tw.get(j * l * (n / r) * ts % n_tw) * c;
            }
            dst[l * m + k] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, idft};
    use soifft_num::c32;
    use soifft_num::c64;
    use soifft_num::error::rel_linf;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                c64::new((0.37 * t).sin() + 0.2, (0.11 * t).cos() - 0.05 * t.sqrt())
            })
            .collect()
    }

    fn check_forward(n: usize, tol: f64) {
        let x = signal(n);
        let plan = Plan::new(n);
        let mut got = x.clone();
        plan.forward(&mut got);
        let want = dft(&x);
        let err = rel_linf(&got, &want);
        assert!(err < tol, "n={n}: err={err:.3e}");
    }

    #[test]
    fn identity_plan() {
        let plan = Plan::new(1);
        let mut d = vec![c64::new(2.0, 3.0)];
        plan.forward(&mut d);
        assert_eq!(d[0], c64::new(2.0, 3.0));
        plan.inverse(&mut d);
        assert_eq!(d[0], c64::new(2.0, 3.0));
        assert_eq!(plan.scratch_len(), 0);
    }

    #[test]
    fn try_new_reports_zero_length() {
        assert_eq!(Plan::<f64>::try_new(0).unwrap_err(), PlanError::ZeroLength);
        assert!(Plan::<f64>::try_new(1).is_ok());
        assert_eq!(
            PlanError::ZeroLength.to_string(),
            "transform length must be at least 1"
        );
    }

    #[test]
    #[should_panic(expected = "transform length must be at least 1")]
    fn zero_length_panics() {
        let _ = Plan::<f64>::new(0);
    }

    #[test]
    fn powers_of_two_match_direct_dft() {
        for n in [2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
            check_forward(n, 1e-11);
        }
    }

    #[test]
    fn odd_radices_match_direct_dft() {
        for n in [3, 9, 27, 5, 25, 15, 45, 7, 21, 35, 11, 13, 33] {
            check_forward(n, 1e-11);
        }
    }

    #[test]
    fn mixed_sizes_match_direct_dft() {
        for n in [
            6,
            12,
            24,
            48,
            60,
            120,
            360,
            960,
            1000,
            1 << 10,
            3 * (1 << 8),
        ] {
            check_forward(n, 1e-11);
        }
    }

    #[test]
    fn f32_plan_tracks_f64_oracle() {
        // Single-precision transforms over the same dispatch paths: the
        // error floor scales with f32 epsilon, not with a broken butterfly.
        for n in [8usize, 12, 27, 48, 100, 256, 257, 1009] {
            let x = signal(n);
            let x32: Vec<c32> = x.iter().map(|&z| c32::from_c64(z)).collect();
            let plan32 = Plan::<f32>::new(n);
            let mut got32 = x32.clone();
            plan32.forward(&mut got32);
            let want = dft(&x);
            let got: Vec<c64> = got32.iter().map(|z| z.to_c64()).collect();
            let err = rel_linf(&got, &want);
            assert!(err < 1e-3, "n={n}: err={err:.3e}");
            // And round-trip.
            plan32.inverse(&mut got32);
            let back: Vec<c64> = got32.iter().map(|z| z.to_c64()).collect();
            let xq: Vec<c64> = x32.iter().map(|z| z.to_c64()).collect();
            assert!(rel_linf(&back, &xq) < 1e-4, "n={n}");
        }
    }

    #[test]
    fn prime_sizes_use_bluestein_and_match() {
        for n in [37, 101, 257, 1009] {
            let plan = Plan::<f64>::new(n);
            assert!(plan.is_bluestein(), "n={n} should be Bluestein");
            check_forward(n, 1e-10);
        }
        // 31 is the largest direct radix.
        assert!(!Plan::<f64>::new(31).is_bluestein());
        assert!(!Plan::<f64>::new(62).is_bluestein());
        assert!(Plan::<f64>::new(74).is_bluestein()); // 2 · 37
    }

    #[test]
    fn inverse_round_trips() {
        for n in [8, 12, 27, 100, 256, 1009] {
            let x = signal(n);
            let plan = Plan::new(n);
            let mut d = x.clone();
            plan.forward(&mut d);
            plan.inverse(&mut d);
            assert!(rel_linf(&d, &x) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn inverse_matches_direct_idft() {
        let n = 48;
        let x = signal(n);
        let plan = Plan::new(n);
        let mut d = x.clone();
        plan.inverse(&mut d);
        let want = idft(&x);
        assert!(rel_linf(&d, &want) < 1e-11);
    }

    #[test]
    fn oop_matches_in_place_and_preserves_input() {
        let n = 192;
        let x = signal(n);
        let plan = Plan::new(n);
        let mut out = vec![c64::ZERO; n];
        plan.forward_oop(&x, &mut out);
        let mut inplace = x.clone();
        plan.forward(&mut inplace);
        assert_eq!(out, inplace);
    }

    #[test]
    fn large_pow2_transform_accuracy() {
        // 2^16: accuracy should stay near machine precision relative to a
        // double-checked smaller reference property — use Parseval.
        let n = 1 << 16;
        let x = signal(n);
        let plan = Plan::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((ex - ey).abs() / ex < 1e-12);
        // And invert back.
        plan.inverse(&mut y);
        assert!(rel_linf(&y, &x) < 1e-11);
    }

    #[test]
    fn impulse_response_is_flat() {
        let n = 64;
        let mut d = vec![c64::ZERO; n];
        d[0] = c64::ONE;
        Plan::new(n).forward(&mut d);
        for &v in &d {
            assert!((v - c64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn shift_theorem() {
        // x delayed by s ⇒ spectrum multiplied by w^{ks}.
        let n = 40;
        let x = signal(n);
        let mut shifted = vec![c64::ZERO; n];
        for i in 0..n {
            shifted[(i + 3) % n] = x[i];
        }
        let plan = Plan::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fs = shifted;
        plan.forward(&mut fs);
        for k in 0..n {
            let want = fx[k] * c64::root_of_unity(n, 3 * k as i64);
            assert!((fs[k] - want).abs() < 1e-10 * (1.0 + want.abs()), "k={k}");
        }
    }

    #[test]
    fn scratch_reuse_gives_identical_results() {
        let n = 360;
        let plan = Plan::new(n);
        let x = signal(n);
        let mut a = x.clone();
        plan.forward(&mut a);
        let mut b = x.clone();
        let mut scratch = plan.make_scratch();
        plan.forward_with_scratch(&mut b, &mut scratch);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "data length != plan length")]
    fn wrong_length_panics() {
        let plan = Plan::new(8);
        let mut d = vec![c64::ZERO; 7];
        plan.forward(&mut d);
    }
}
