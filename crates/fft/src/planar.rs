//! Planar ("Struct of Arrays") FFT kernels.
//!
//! Paper §5.2.4: the Xeon Phi implementation keeps complex data in SoA
//! layout internally — separate real and imaginary planes — because the
//! butterflies then vectorize without gather/scatter or cross-lane
//! shuffles. [`PlanarFft`] is that code path: a power-of-two
//! decimation-in-time transform whose butterflies operate on `f64` planes,
//! which LLVM autovectorizes cleanly (each arithmetic line touches one
//! plane with unit stride). The `layout` bench compares it with the
//! interleaved [`crate::Plan`] at equal sizes.
//!
//! Interface contract matches [`crate::Plan`]: forward is
//! `y_k = Σ x_n e^{−2πi nk/N}`, inverse normalized by `1/N`.

use soifft_num::{c64, SoaComplex};

/// A power-of-two planar FFT plan (twiddles stored as separate planes
/// too).
#[derive(Clone, Debug)]
pub struct PlanarFft {
    n: usize,
    tw_re: Vec<f64>,
    tw_im: Vec<f64>,
}

impl PlanarFft {
    /// Builds a plan for `n`-point transforms (`n` a power of two).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "PlanarFft requires a power-of-two length"
        );
        let mut tw_re = Vec::with_capacity(n / 2 + 1);
        let mut tw_im = Vec::with_capacity(n / 2 + 1);
        for j in 0..(n / 2).max(1) {
            let w = c64::root_of_unity(n, j as i64);
            tw_re.push(w.re);
            tw_im.push(w.im);
        }
        PlanarFft { n, tw_re, tw_im }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform of the planes `(re, im)` in place, using scratch
    /// planes of the same length.
    pub fn forward(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        scratch_re: &mut [f64],
        scratch_im: &mut [f64],
    ) {
        assert_eq!(re.len(), self.n, "re plane length");
        assert_eq!(im.len(), self.n, "im plane length");
        assert!(
            scratch_re.len() >= self.n && scratch_im.len() >= self.n,
            "scratch"
        );
        scratch_re[..self.n].copy_from_slice(re);
        scratch_im[..self.n].copy_from_slice(im);
        self.rec(
            &scratch_re[..self.n],
            &scratch_im[..self.n],
            0,
            1,
            re,
            im,
            self.n,
        );
    }

    /// Forward transform of an [`SoaComplex`] in place (allocates scratch).
    pub fn forward_soa(&self, data: &mut SoaComplex) {
        assert_eq!(data.len(), self.n);
        let mut sre = vec![0.0; self.n];
        let mut sim = vec![0.0; self.n];
        let (re, im) = data.parts_mut();
        self.forward(re, im, &mut sre, &mut sim);
    }

    /// Inverse (normalized) transform of the planes in place.
    pub fn inverse(
        &self,
        re: &mut [f64],
        im: &mut [f64],
        scratch_re: &mut [f64],
        scratch_im: &mut [f64],
    ) {
        // conj → forward → conj, scale: on planes, conj is an im negation —
        // itself a plane-wide vectorizable pass.
        for v in im.iter_mut() {
            *v = -*v;
        }
        self.forward(re, im, scratch_re, scratch_im);
        let s = 1.0 / self.n as f64;
        for v in re.iter_mut() {
            *v *= s;
        }
        for v in im.iter_mut() {
            *v *= -s;
        }
    }

    /// Radix-2 DIT on planes: strided reads, contiguous writes.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        &self,
        src_re: &[f64],
        src_im: &[f64],
        off: usize,
        stride: usize,
        dst_re: &mut [f64],
        dst_im: &mut [f64],
        n: usize,
    ) {
        if n == 1 {
            dst_re[0] = src_re[off];
            dst_im[0] = src_im[off];
            return;
        }
        let m = n / 2;
        {
            let (ere, ore) = dst_re.split_at_mut(m);
            let (eim, oim) = dst_im.split_at_mut(m);
            self.rec(src_re, src_im, off, stride * 2, ere, eim, m);
            self.rec(src_re, src_im, off + stride, stride * 2, ore, oim, m);
        }
        let ts = self.n / n;
        // Butterfly pass: everything below is plane-local unit-stride
        // arithmetic — the autovectorizable shape SoA buys.
        let (ere, ore) = dst_re.split_at_mut(m);
        let (eim, oim) = dst_im.split_at_mut(m);
        for k in 0..m {
            let wr = self.tw_re[k * ts];
            let wi = self.tw_im[k * ts];
            let tr = wr * ore[k] - wi * oim[k];
            let ti = wr * oim[k] + wi * ore[k];
            let ar = ere[k];
            let ai = eim[k];
            ere[k] = ar + tr;
            eim[k] = ai + ti;
            ore[k] = ar - tr;
            oim[k] = ai - ti;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Plan;
    use soifft_num::error::rel_linf;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new((0.23 * i as f64).sin(), (0.41 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn matches_interleaved_plan() {
        for n in [1usize, 2, 4, 16, 128, 1024, 1 << 14] {
            let x = signal(n);
            let mut soa = SoaComplex::from_aos(&x);
            PlanarFft::new(n).forward_soa(&mut soa);
            let mut want = x;
            Plan::new(n).forward(&mut want);
            let got = soa.to_aos();
            assert!(rel_linf(&got, &want) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let n = 512;
        let x = signal(n);
        let plan = PlanarFft::new(n);
        let mut soa = SoaComplex::from_aos(&x);
        let mut sre = vec![0.0; n];
        let mut sim = vec![0.0; n];
        {
            let (re, im) = soa.parts_mut();
            plan.forward(re, im, &mut sre, &mut sim);
            plan.inverse(re, im, &mut sre, &mut sim);
        }
        assert!(rel_linf(&soa.to_aos(), &x) < 1e-12);
    }

    #[test]
    fn explicit_planes_interface() {
        let n = 64;
        let x = signal(n);
        let mut re: Vec<f64> = x.iter().map(|z| z.re).collect();
        let mut im: Vec<f64> = x.iter().map(|z| z.im).collect();
        let mut sre = vec![0.0; n];
        let mut sim = vec![0.0; n];
        PlanarFft::new(n).forward(&mut re, &mut im, &mut sre, &mut sim);
        let mut want = x;
        Plan::new(n).forward(&mut want);
        for k in 0..n {
            assert!((re[k] - want[k].re).abs() < 1e-10);
            assert!((im[k] - want[k].im).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_rejected() {
        PlanarFft::new(12);
    }

    #[test]
    fn metadata() {
        let p = PlanarFft::new(256);
        assert_eq!(p.len(), 256);
        assert!(!p.is_empty());
    }
}
