//! Multi-dimensional FFTs (row–column algorithm).
//!
//! The paper's introduction singles out in-order 1D FFTs as "distinctly
//! more challenging than the 2D or 3D cases as these usually start with
//! each compute node possessing one or two complete dimensions of data".
//! This module supplies those easier cases for the library's users — and
//! `soifft_ct::Distributed2dFft` demonstrates the communication claim
//! concretely: a distributed 2D transform needs ONE all-to-all (the
//! transpose between dimension passes) versus the three of a conventional
//! distributed 1D transform.

use soifft_num::c64;
use soifft_num::transpose::transpose;

use crate::batch;
use crate::plan::Plan;

/// A 2D FFT plan (`rows × cols`, row-major data).
#[derive(Clone, Debug)]
pub struct Plan2d {
    rows: usize,
    cols: usize,
    row_plan: Plan,
    col_plan: Plan,
}

impl Plan2d {
    /// Builds a plan for `rows × cols` transforms.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows >= 1 && cols >= 1);
        Plan2d {
            rows,
            cols,
            row_plan: Plan::new(cols),
            col_plan: Plan::new(rows),
        }
    }

    /// The shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Forward 2D transform in place:
    /// `Y[r][c] = Σ_{a,b} X[a][b]·w_rows^{ar}·w_cols^{bc}`.
    pub fn forward(&self, data: &mut [c64]) {
        assert_eq!(data.len(), self.rows * self.cols, "shape mismatch");
        // Rows, then columns via transpose–rows–transpose.
        batch::forward_rows(&self.row_plan, data);
        let mut t = vec![c64::ZERO; data.len()];
        transpose(data, &mut t, self.rows, self.cols);
        batch::forward_rows(&self.col_plan, &mut t);
        transpose(&t, data, self.cols, self.rows);
    }

    /// Inverse (normalized by `1/(rows·cols)`), in place.
    pub fn inverse(&self, data: &mut [c64]) {
        assert_eq!(data.len(), self.rows * self.cols, "shape mismatch");
        batch::inverse_rows(&self.row_plan, data);
        let mut t = vec![c64::ZERO; data.len()];
        transpose(data, &mut t, self.rows, self.cols);
        batch::inverse_rows(&self.col_plan, &mut t);
        transpose(&t, data, self.cols, self.rows);
    }
}

/// A 3D FFT plan (`n0 × n1 × n2`, row-major / C order).
#[derive(Clone, Debug)]
pub struct Plan3d {
    n0: usize,
    n1: usize,
    n2: usize,
    plan0: Plan,
    plan1: Plan,
    plan2: Plan,
}

impl Plan3d {
    /// Builds a plan for `n0 × n1 × n2` transforms.
    pub fn new(n0: usize, n1: usize, n2: usize) -> Self {
        assert!(n0 >= 1 && n1 >= 1 && n2 >= 1);
        Plan3d {
            n0,
            n1,
            n2,
            plan0: Plan::new(n0),
            plan1: Plan::new(n1),
            plan2: Plan::new(n2),
        }
    }

    /// The shape `(n0, n1, n2)`.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.n0, self.n1, self.n2)
    }

    /// Forward 3D transform in place.
    pub fn forward(&self, data: &mut [c64]) {
        let (n0, n1, n2) = (self.n0, self.n1, self.n2);
        assert_eq!(data.len(), n0 * n1 * n2, "shape mismatch");
        // Innermost dimension: contiguous rows.
        batch::forward_rows(&self.plan2, data);
        // Middle dimension: for each n0-slab, transpose n1×n2 → n2×n1,
        // row FFTs (length n1), transpose back.
        let mut t = vec![c64::ZERO; n1 * n2];
        for slab in data.chunks_exact_mut(n1 * n2) {
            transpose(slab, &mut t, n1, n2);
            batch::forward_rows(&self.plan1, &mut t);
            transpose(&t, slab, n2, n1);
        }
        // Outermost dimension: gather lines with stride n1·n2.
        let stride = n1 * n2;
        let mut line = vec![c64::ZERO; n0];
        let mut scratch = self.plan0.make_scratch();
        for offset in 0..stride {
            for (i, v) in line.iter_mut().enumerate() {
                *v = data[offset + i * stride];
            }
            self.plan0.forward_with_scratch(&mut line, &mut scratch);
            for (i, &v) in line.iter().enumerate() {
                data[offset + i * stride] = v;
            }
        }
    }

    /// Inverse (normalized), in place, via conjugation.
    pub fn inverse(&self, data: &mut [c64]) {
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward(data);
        let s = 1.0 / (self.n0 * self.n1 * self.n2) as f64;
        for z in data.iter_mut() {
            *z = z.conj() * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new((0.37 * i as f64).sin(), (0.11 * i as f64).cos()))
            .collect()
    }

    /// Direct O(n²) 2D DFT reference.
    fn dft_2d(x: &[c64], rows: usize, cols: usize) -> Vec<c64> {
        let mut y = vec![c64::ZERO; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                let mut acc = c64::ZERO;
                for a in 0..rows {
                    for b in 0..cols {
                        let w = c64::root_of_unity(rows, (a * r) as i64)
                            * c64::root_of_unity(cols, (b * c) as i64);
                        acc += x[a * cols + b] * w;
                    }
                }
                y[r * cols + c] = acc;
            }
        }
        y
    }

    #[test]
    fn plan2d_matches_direct_dft() {
        for (rows, cols) in [(4usize, 8usize), (8, 8), (6, 10), (1, 16), (16, 1)] {
            let x = signal(rows * cols);
            let mut got = x.clone();
            Plan2d::new(rows, cols).forward(&mut got);
            let want = dft_2d(&x, rows, cols);
            let err = soifft_num::error::rel_linf(&got, &want);
            assert!(err < 1e-10, "{rows}x{cols}: {err:.3e}");
        }
    }

    #[test]
    fn plan2d_round_trip() {
        let (rows, cols) = (12, 20);
        let x = signal(rows * cols);
        let plan = Plan2d::new(rows, cols);
        let mut d = x.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        assert!(soifft_num::error::rel_linf(&d, &x) < 1e-11);
    }

    #[test]
    fn plan3d_separable_impulse() {
        // An impulse at the origin transforms to all-ones.
        let (n0, n1, n2) = (4usize, 3usize, 5usize);
        let mut d = vec![c64::ZERO; n0 * n1 * n2];
        d[0] = c64::ONE;
        Plan3d::new(n0, n1, n2).forward(&mut d);
        for &v in &d {
            assert!((v - c64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn plan3d_matches_iterated_2d() {
        // FFT over (n1, n2) for each slab then over n0 lines must equal
        // the 3D plan; verify against composing Plan2d + explicit n0 pass.
        let (n0, n1, n2) = (4usize, 6usize, 8usize);
        let x = signal(n0 * n1 * n2);
        let mut got = x.clone();
        Plan3d::new(n0, n1, n2).forward(&mut got);

        let mut want = x;
        let p2 = Plan2d::new(n1, n2);
        for slab in want.chunks_exact_mut(n1 * n2) {
            p2.forward(slab);
        }
        let stride = n1 * n2;
        let p0 = Plan::new(n0);
        let mut line = vec![c64::ZERO; n0];
        for offset in 0..stride {
            for (i, v) in line.iter_mut().enumerate() {
                *v = want[offset + i * stride];
            }
            p0.forward(&mut line);
            for (i, &v) in line.iter().enumerate() {
                want[offset + i * stride] = v;
            }
        }
        assert!(soifft_num::error::rel_linf(&got, &want) < 1e-11);
    }

    #[test]
    fn plan3d_round_trip() {
        let (n0, n1, n2) = (3usize, 4usize, 5usize);
        let x = signal(n0 * n1 * n2);
        let plan = Plan3d::new(n0, n1, n2);
        let mut d = x.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        assert!(soifft_num::error::rel_linf(&d, &x) < 1e-11);
    }

    #[test]
    fn shapes() {
        assert_eq!(Plan2d::new(3, 5).shape(), (3, 5));
        assert_eq!(Plan3d::new(2, 3, 4).shape(), (2, 3, 4));
    }
}
