//! Direct O(n²) discrete Fourier transform and Goertzel single-bin
//! evaluation.
//!
//! These are the *reference* implementations: every fast path in this crate
//! (and the SOI pipeline above it) is tested against them. They are also
//! used at plan-build time to evaluate window spectra exactly.

use soifft_num::c64;

/// Computes the forward DFT `y_k = Σ_n x_n e^{−2πi nk/n}` directly.
///
/// O(n²); intended for tests and tiny transforms only.
pub fn dft(input: &[c64]) -> Vec<c64> {
    let n = input.len();
    let mut out = vec![c64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = c64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            acc += x * c64::root_of_unity(n, (j as i64) * (k as i64));
        }
        *o = acc;
    }
    out
}

/// Computes the normalized inverse DFT `x_n = (1/n) Σ_k y_k e^{+2πi nk/n}`
/// directly. O(n²).
pub fn idft(input: &[c64]) -> Vec<c64> {
    let n = input.len();
    let mut out = vec![c64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = c64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            acc += x * c64::root_of_unity(n, -((j as i64) * (k as i64)));
        }
        *o = acc / n as f64;
    }
    out
}

/// Evaluates a single DFT bin `y_k` of `input` by the Goertzel recurrence —
/// O(n) per bin with one trig evaluation, numerically a second opinion
/// against the table-driven fast paths.
pub fn goertzel(input: &[c64], k: usize) -> c64 {
    let n = input.len();
    assert!(k < n, "bin out of range");
    let theta = 2.0 * std::f64::consts::PI * (k as f64) / (n as f64);
    let coeff = 2.0 * theta.cos();
    // Run the real recurrence on both components at once by treating the
    // complex samples directly: s_j = x_j + coeff·s_{j-1} − s_{j-2}.
    let mut s1 = c64::ZERO;
    let mut s2 = c64::ZERO;
    for &x in input {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    // The recurrence yields s1 − e^{−iθ}s2 = Σ_j x_j e^{+iθ(n−1−j)};
    // multiplying by e^{−iθ(n−1)} converts to the forward-sign bin
    // Σ_j x_j e^{−iθj}.
    let w = c64::cis(theta);
    (s1 - w.conj() * s2) * c64::cis(-theta * (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use soifft_num::error::rel_linf;

    fn impulse(n: usize, at: usize) -> Vec<c64> {
        let mut v = vec![c64::ZERO; n];
        v[at] = c64::ONE;
        v
    }

    #[test]
    fn dft_of_impulse_is_complex_exponential() {
        let n = 16;
        let y = dft(&impulse(n, 1));
        for (k, &v) in y.iter().enumerate() {
            let want = c64::root_of_unity(n, k as i64);
            assert!((v - want).abs() < 1e-12, "bin {k}");
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let n = 8;
        let y = dft(&vec![c64::ONE; n]);
        assert!((y[0] - c64::real(n as f64)).abs() < 1e-12);
        for &v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn dft_linearity() {
        let a: Vec<c64> = (0..12).map(|i| c64::new(i as f64, 1.0)).collect();
        let b: Vec<c64> = (0..12).map(|i| c64::new(0.5, -(i as f64))).collect();
        let sum: Vec<c64> = a.iter().zip(&b).map(|(&x, &y)| x + y * 2.0).collect();
        let lhs = dft(&sum);
        let ya = dft(&a);
        let yb = dft(&b);
        let rhs: Vec<c64> = ya.iter().zip(&yb).map(|(&x, &y)| x + y * 2.0).collect();
        assert!(rel_linf(&lhs, &rhs) < 1e-13);
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<c64> = (0..20)
            .map(|i| c64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let back = idft(&dft(&x));
        assert!(rel_linf(&back, &x) < 1e-12);
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<c64> = (0..31).map(|i| c64::new(i as f64 * 0.1, -0.3)).collect();
        let y = dft(&x);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((ex - ey).abs() / ex < 1e-12);
    }

    #[test]
    fn goertzel_matches_dft_bins() {
        let x: Vec<c64> = (0..25)
            .map(|i| c64::new((0.3 * i as f64).cos(), (0.11 * i as f64).sin()))
            .collect();
        let y = dft(&x);
        for k in [0, 1, 7, 12, 24] {
            let g = goertzel(&x, k);
            assert!(
                (g - y[k]).abs() < 1e-9 * (1.0 + y[k].abs()),
                "bin {k}: {g} vs {}",
                y[k]
            );
        }
    }
}
