//! Stockham autosort FFT (power-of-two, ping-pong buffers).
//!
//! The third engine in the library's pow2 toolbox, completing the classic
//! trio:
//!
//! | engine | permutation | scratch | access pattern |
//! |---|---|---|---|
//! | [`crate::Plan`] (recursive DIT) | implicit in recursion | n | depth-first, cache-oblivious |
//! | [`crate::IterativeFft`] | explicit bit-reversal | none | breadth-first, in-place |
//! | `StockhamFft` | folded into the butterflies | n | breadth-first, fully sequential reads/writes |
//!
//! Stockham reads and writes *contiguously* at every stage (the
//! permutation is absorbed into where results land), which is why it is
//! the classical choice for vector machines and GPUs — and why the paper's
//! lineage of bandwidth-aware FFTs (Bailey's external-memory work) starts
//! from it.

use soifft_num::c64;

use crate::twiddle::Twiddles;

/// A power-of-two Stockham plan.
#[derive(Clone, Debug)]
pub struct StockhamFft {
    n: usize,
    tw: Twiddles,
}

impl StockhamFft {
    /// Builds a plan for length `n` (a power of two ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "StockhamFft requires a power of two");
        StockhamFft {
            n,
            tw: Twiddles::new(n.max(2)),
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform: result in `data`, using `scratch` (same length)
    /// as the ping-pong partner.
    pub fn forward(&self, data: &mut [c64], scratch: &mut [c64]) {
        let n = self.n;
        assert_eq!(data.len(), n, "data length != plan length");
        assert_eq!(scratch.len(), n, "scratch length != plan length");
        if n < 2 {
            return;
        }
        // Classic decimation-in-frequency Stockham: sub-length `n_cur`
        // halves while the interleave stride `s` doubles; each stage reads
        // positions (p, p+m) and writes (2p, 2p+1) — contiguous streams in
        // both directions, permutation absorbed, natural-order output.
        let mut n_cur = n;
        let mut s = 1usize;
        let mut src_is_data = true;
        while n_cur > 1 {
            let m = n_cur / 2;
            let tw_stride = self.n / n_cur;
            {
                let (src, dst): (&[c64], &mut [c64]) = if src_is_data {
                    (data, scratch)
                } else {
                    (scratch, data)
                };
                for p in 0..m {
                    let w = self.tw.get(p * tw_stride);
                    for q in 0..s {
                        let a = src[q + s * p];
                        let b = src[q + s * (p + m)];
                        dst[q + s * 2 * p] = a + b;
                        dst[q + s * (2 * p + 1)] = (a - b) * w;
                    }
                }
            }
            src_is_data = !src_is_data;
            n_cur = m;
            s *= 2;
        }
        if !src_is_data {
            data.copy_from_slice(scratch);
        }
    }

    /// Inverse (normalized), via conjugation.
    pub fn inverse(&self, data: &mut [c64], scratch: &mut [c64]) {
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward(data, scratch);
        let s = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj() * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use crate::plan::Plan;
    use soifft_num::error::rel_linf;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new((0.29 * i as f64).sin(), (0.13 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn matches_direct_dft_small() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let x = signal(n);
            let mut got = x.clone();
            let mut scratch = vec![c64::ZERO; n];
            StockhamFft::new(n).forward(&mut got, &mut scratch);
            let want = dft(&x);
            assert!(rel_linf(&got, &want) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn matches_recursive_plan_large() {
        for n in [1usize << 12, 1 << 16] {
            let x = signal(n);
            let mut a = x.clone();
            let mut scratch = vec![c64::ZERO; n];
            StockhamFft::new(n).forward(&mut a, &mut scratch);
            let mut b = x;
            Plan::new(n).forward(&mut b);
            assert!(rel_linf(&a, &b) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn round_trip() {
        let n = 1024;
        let x = signal(n);
        let plan = StockhamFft::new(n);
        let mut d = x.clone();
        let mut scratch = vec![c64::ZERO; n];
        plan.forward(&mut d, &mut scratch);
        plan.inverse(&mut d, &mut scratch);
        assert!(rel_linf(&d, &x) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        StockhamFft::new(24);
    }
}
