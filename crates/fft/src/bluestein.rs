//! Bluestein's chirp-z algorithm: FFTs of arbitrary length.
//!
//! SOI plans need an `F_L` transform whose length is the *total segment
//! count* `L = S·P` — a deployment parameter that is not necessarily smooth
//! — so the FFT library must handle any length. Bluestein rewrites an
//! `n`-point DFT as a circular convolution of length `m ≥ 2n − 1` (a power
//! of two), using the identity `nk = (n² + k² − (k−n)²)/2`:
//!
//! ```text
//! y_k = c_k · Σ_n (x_n c_n) · conj(c_{k−n}),    c_t = e^{−πi t²/n}
//! ```
//!
//! The chirp exponent `t²` is reduced modulo `2n` in integer arithmetic
//! before the trig call, so precision does not degrade with size.

use soifft_num::factor::next_pow2;
use soifft_num::{Complex, Real};

use crate::plan::Plan;

/// Precomputed state for an arbitrary-length transform.
#[derive(Clone, Debug)]
pub struct BluesteinPlan<T: Real = f64> {
    n: usize,
    m: usize,
    inner: Plan<T>,
    /// `c_t = e^{−πi t² / n}` for `t < n`.
    chirp: Vec<Complex<T>>,
    /// Forward FFT of the conjugate-chirp kernel, length `m`.
    kernel_fft: Vec<Complex<T>>,
}

impl<T: Real> BluesteinPlan<T> {
    /// Builds the plan. `n ≥ 2` (length 1 never reaches Bluestein).
    pub fn new(n: usize) -> Self {
        assert!(n >= 2);
        let m = next_pow2(2 * n - 1);
        let inner = Plan::new(m);
        let chirp: Vec<Complex<T>> = (0..n).map(|t| chirp_factor(t, n)).collect();
        // Kernel b[t] = conj(c_t) placed circularly at ±t.
        let mut kernel = vec![Complex::<T>::ZERO; m];
        kernel[0] = chirp[0].conj();
        for t in 1..n {
            let v = chirp[t].conj();
            kernel[t] = v;
            kernel[m - t] = v;
        }
        inner.forward(&mut kernel);
        BluesteinPlan {
            n,
            m,
            inner,
            chirp,
            kernel_fft: kernel,
        }
    }

    /// The (outer) transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; for API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Scratch requirement: one padded buffer plus the inner plan's own
    /// scratch.
    pub fn scratch_len(&self) -> usize {
        self.m + self.inner.scratch_len()
    }

    /// In-place forward transform of `data` (`data.len() == n`).
    pub fn forward(&self, data: &mut [Complex<T>], scratch: &mut [Complex<T>]) {
        assert_eq!(data.len(), self.n, "data length != plan length");
        assert!(scratch.len() >= self.scratch_len(), "scratch too small");
        let (a, inner_scratch) = scratch.split_at_mut(self.m);

        // a = chirp-modulated input, zero-padded to m.
        for (i, slot) in a.iter_mut().enumerate().take(self.n) {
            *slot = data[i] * self.chirp[i];
        }
        for slot in a.iter_mut().skip(self.n) {
            *slot = Complex::<T>::ZERO;
        }

        // Convolve with the kernel via the inner power-of-two plan.
        self.inner.forward_with_scratch(a, inner_scratch);
        for (v, &k) in a.iter_mut().zip(&self.kernel_fft) {
            *v *= k;
        }
        self.inner.inverse_with_scratch(a, inner_scratch);

        // Demodulate the first n outputs.
        for (k, out) in data.iter_mut().enumerate() {
            *out = a[k] * self.chirp[k];
        }
    }
}

/// `e^{−πi (t² mod 2n) / n}` with the square reduced in `u128` and the
/// trig evaluated in `f64` before demotion to the target precision.
fn chirp_factor<T: Real>(t: usize, n: usize) -> Complex<T> {
    let sq = (t as u128 * t as u128) % (2 * n as u128);
    Complex::cis(-std::f64::consts::PI * sq as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use soifft_num::c64;
    use soifft_num::error::rel_linf;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new((0.21 * i as f64).sin(), (0.13 * i as f64).cos()))
            .collect()
    }

    fn run(n: usize) -> f64 {
        let x = signal(n);
        let plan = BluesteinPlan::<f64>::new(n);
        let mut got = x.clone();
        let mut scratch = vec![c64::ZERO; plan.scratch_len()];
        plan.forward(&mut got, &mut scratch);
        rel_linf(&got, &dft(&x))
    }

    #[test]
    fn primes_match_direct_dft() {
        for n in [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 61, 127, 251, 509,
        ] {
            let err = run(n);
            assert!(err < 1e-10, "n={n}: err={err:.3e}");
        }
    }

    #[test]
    fn composites_match_direct_dft() {
        // Bluestein must be correct even for sizes the planner would send
        // to Cooley–Tukey.
        for n in [4, 12, 100, 256, 730] {
            let err = run(n);
            assert!(err < 1e-10, "n={n}: err={err:.3e}");
        }
    }

    #[test]
    fn chirp_exponent_is_reduced_safely() {
        // For huge t, t² overflows u64; the u128 path must still give the
        // exactly-reduced angle.
        let n = 1000;
        let t = 3_000_000_007usize;
        let reduced = (t as u128 * t as u128 % (2 * n as u128)) as f64;
        let expect = c64::cis(-std::f64::consts::PI * reduced / n as f64);
        assert!((chirp_factor::<f64>(t, n) - expect).abs() < 1e-12);
    }

    #[test]
    fn plan_metadata() {
        let p = BluesteinPlan::<f64>::new(37);
        assert_eq!(p.len(), 37);
        assert!(p.scratch_len() >= 128);
        assert!(!p.is_empty());
    }

    #[test]
    fn large_prime_accuracy_holds() {
        let err = run(1009);
        assert!(err < 5e-10, "err={err:.3e}");
    }
}
