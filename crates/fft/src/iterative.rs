//! In-place iterative power-of-two FFT (bit-reversal + breadth-first
//! stages).
//!
//! The recursive [`crate::Plan`] needs an `n`-element scratch buffer; this
//! engine needs none — it permutes in place and then runs the classic
//! log₂n radix-2 stage sweep. The trade: breadth-first stages make one full
//! pass over the data per level (poorer locality than the depth-first
//! recursion once `n` outgrows cache), so this engine is the right tool
//! for *small* transforms in memory-tight inner loops — e.g. the `F_L`
//! block transforms, whose working set is a single cache-resident block —
//! while [`crate::Plan`]/[`crate::SixStepFft`] own the large sizes. The
//! `local_fft` bench compares them across the size range.

use soifft_num::c64;

use crate::twiddle::Twiddles;

/// An in-place, scratch-free FFT plan for power-of-two lengths.
#[derive(Clone, Debug)]
pub struct IterativeFft {
    n: usize,
    /// Bit-reversal permutation table.
    rev: Vec<u32>,
    tw: Twiddles,
}

impl IterativeFft {
    /// Builds a plan for length `n` (a power of two, ≥ 1).
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "IterativeFft requires a power of two");
        assert!(n <= u32::MAX as usize, "length fits the table type");
        let log2n = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 1..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (log2n.max(1) - 1));
        }
        IterativeFft {
            n,
            rev,
            tw: Twiddles::new(n.max(2)),
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Forward transform, fully in place, no scratch.
    pub fn forward(&self, data: &mut [c64]) {
        assert_eq!(data.len(), self.n, "data length != plan length");
        if self.n < 2 {
            return;
        }
        // Bit-reversal permutation (swap once per pair).
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Breadth-first radix-2 stages.
        let mut len = 2usize;
        while len <= self.n {
            let half = len / 2;
            let tw_stride = self.n / len;
            for block in data.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                for k in 0..half {
                    let w = self.tw.get(k * tw_stride);
                    let t = w * hi[k];
                    let a = lo[k];
                    lo[k] = a + t;
                    hi[k] = a - t;
                }
            }
            len *= 2;
        }
    }

    /// Inverse transform (normalized), in place, no scratch.
    pub fn inverse(&self, data: &mut [c64]) {
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward(data);
        let s = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj() * s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use crate::plan::Plan;
    use soifft_num::error::rel_linf;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new((0.31 * i as f64).sin(), (0.17 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn matches_direct_dft() {
        for n in [1usize, 2, 4, 8, 32, 128, 1024] {
            let x = signal(n);
            let mut got = x.clone();
            IterativeFft::new(n).forward(&mut got);
            let want = dft(&x);
            assert!(rel_linf(&got, &want) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn matches_recursive_plan_at_larger_sizes() {
        for n in [1usize << 12, 1 << 15] {
            let x = signal(n);
            let mut a = x.clone();
            IterativeFft::new(n).forward(&mut a);
            let mut b = x;
            Plan::new(n).forward(&mut b);
            assert!(rel_linf(&a, &b) < 1e-11, "n={n}");
        }
    }

    #[test]
    fn round_trip() {
        let n = 512;
        let x = signal(n);
        let plan = IterativeFft::new(n);
        let mut d = x.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        assert!(rel_linf(&d, &x) < 1e-12);
    }

    #[test]
    fn bit_reversal_table_is_an_involution() {
        let plan = IterativeFft::new(256);
        for i in 0..256usize {
            let j = plan.rev[i] as usize;
            assert_eq!(plan.rev[j] as usize, i);
        }
    }

    #[test]
    fn trivial_lengths() {
        let mut one = vec![c64::new(5.0, -2.0)];
        IterativeFft::new(1).forward(&mut one);
        assert_eq!(one[0], c64::new(5.0, -2.0));
        let mut two = vec![c64::ONE, c64::ZERO];
        IterativeFft::new(2).forward(&mut two);
        assert!((two[0] - c64::ONE).abs() < 1e-15);
        assert!((two[1] - c64::ONE).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_rejected() {
        IterativeFft::new(12);
    }
}
