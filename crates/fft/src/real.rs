//! Real-input FFTs (r2c / c2r).
//!
//! Measurement data (the spectral-surveillance workload in the examples,
//! most sensor streams) is real-valued; transforming it as complex wastes
//! 2× memory and flops. The classic pack-into-half-length trick: view the
//! `n` reals as `n/2` complex samples, run one `n/2`-point complex FFT, and
//! untangle the even/odd spectra with one twiddle pass:
//!
//! ```text
//! Z = FFT(x[2t] + i·x[2t+1])
//! y_k = (Z_k + conj(Z_{m−k}))/2 − (i/2)·w_n^k·(Z_k − conj(Z_{m−k}))
//! ```
//!
//! The forward output is the non-redundant half-spectrum `y[0..=n/2]`
//! (Hermitian symmetry gives the rest); the inverse reconstructs the real
//! signal from it.

use soifft_num::c64;

use crate::plan::Plan;
use crate::twiddle::Twiddles;

/// A real-input FFT plan for even lengths `n ≥ 2`.
#[derive(Clone, Debug)]
pub struct RealFft {
    n: usize,
    half: Plan,
    tw: Twiddles,
}

impl RealFft {
    /// Builds a plan for length `n` (must be even).
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_multiple_of(2),
            "real FFT length must be even and >= 2"
        );
        RealFft {
            n,
            half: Plan::new(n / 2),
            tw: Twiddles::new(n),
        }
    }

    /// Transform length (number of real samples).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Length of the forward output: `n/2 + 1` non-redundant bins.
    pub fn spectrum_len(&self) -> usize {
        self.n / 2 + 1
    }

    /// Forward r2c transform: `input.len() == n`, returns
    /// `y[0..=n/2]` with the same convention as [`Plan::forward`].
    pub fn forward(&self, input: &[f64]) -> Vec<c64> {
        assert_eq!(input.len(), self.n, "input length != n");
        let m = self.n / 2;
        // Pack adjacent real pairs into complex samples.
        let mut z: Vec<c64> = input
            .chunks_exact(2)
            .map(|p| c64::new(p[0], p[1]))
            .collect();
        self.half.forward(&mut z);

        let mut out = vec![c64::ZERO; m + 1];
        for k in 0..=m {
            let zk = if k == m { z[0] } else { z[k] };
            let zmk = z[(m - k) % m].conj();
            let even = (zk + zmk) * 0.5;
            let odd = (zk - zmk) * 0.5;
            // y_k = even − i·w^k·odd.
            out[k] = even - self.tw.get(k % self.n).mul_i() * odd;
        }
        out
    }

    /// Inverse c2r transform: `spectrum.len() == n/2 + 1`, returns the `n`
    /// real samples (normalized so `inverse(forward(x)) == x`).
    ///
    /// The spectrum's `y[0]` and `y[n/2]` imaginary parts must be ~0 (they
    /// are for any spectrum produced from real data).
    pub fn inverse(&self, spectrum: &[c64]) -> Vec<f64> {
        let m = self.n / 2;
        assert_eq!(spectrum.len(), m + 1, "spectrum length != n/2 + 1");
        // Repack into the half-length complex spectrum, inverting the
        // untangle: Z_k = even_k + i·w^{-k}·odd_k where
        // even = (y_k + conj(y_{m−k}))/2, odd = i·w^k·... inverted below.
        let mut z = vec![c64::ZERO; m];
        for (k, slot) in z.iter_mut().enumerate() {
            let yk = spectrum[k];
            let ymk = spectrum[m - k].conj();
            let even = (yk + ymk) * 0.5;
            // From the forward definitions
            //   even = (Z_k + conj(Z_{m−k}))/2,  d = (Z_k − conj(Z_{m−k}))/2,
            //   y_k = even − i·w^k·d
            // solve: i·w^k·d = even − y_k ⇒ d = −i·w^{−k}·(even − y_k),
            // then Z_k = even + d.
            let d = (even - yk).mul_neg_i() * self.tw.get((self.n - k) % self.n);
            *slot = even + d;
        }
        self.half.inverse(&mut z);
        let mut out = Vec::with_capacity(self.n);
        for v in z {
            out.push(v.re);
            out.push(v.im);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn real_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (0.07 * i as f64).sin() + 0.3 * (0.41 * i as f64).cos() - 0.1)
            .collect()
    }

    #[test]
    fn forward_matches_complex_dft_half_spectrum() {
        for n in [2usize, 4, 8, 16, 60, 128, 1 << 10] {
            let x = real_signal(n);
            let plan = RealFft::new(n);
            let got = plan.forward(&x);
            let as_complex: Vec<c64> = x.iter().map(|&r| c64::real(r)).collect();
            let want = dft(&as_complex);
            assert_eq!(got.len(), n / 2 + 1);
            for k in 0..=n / 2 {
                assert!(
                    (got[k] - want[k]).abs() < 1e-9 * (1.0 + want[k].abs()),
                    "n={n} k={k}: {:?} vs {:?}",
                    got[k],
                    want[k]
                );
            }
        }
    }

    #[test]
    fn dc_and_nyquist_bins_are_real() {
        let n = 64;
        let x = real_signal(n);
        let got = RealFft::new(n).forward(&x);
        assert!(got[0].im.abs() < 1e-10);
        assert!(got[n / 2].im.abs() < 1e-10);
        // DC bin equals the sum.
        let sum: f64 = x.iter().sum();
        assert!((got[0].re - sum).abs() < 1e-9);
    }

    #[test]
    fn inverse_round_trips() {
        for n in [4usize, 16, 100, 512] {
            let x = real_signal(n);
            let plan = RealFft::new(n);
            let spec = plan.forward(&x);
            let back = plan.inverse(&spec);
            let max_err = x
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(max_err < 1e-10, "n={n}: {max_err:.3e}");
        }
    }

    #[test]
    fn pure_cosine_hits_single_bin() {
        let n = 128;
        let k0 = 17;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64).cos())
            .collect();
        let spec = RealFft::new(n).forward(&x);
        assert!((spec[k0].re - n as f64 / 2.0).abs() < 1e-9);
        for (k, v) in spec.iter().enumerate() {
            if k != k0 {
                assert!(v.abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn spectrum_len_accessor() {
        let p = RealFft::new(64);
        assert_eq!(p.len(), 64);
        assert_eq!(p.spectrum_len(), 33);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_length_rejected() {
        RealFft::new(9);
    }

    #[test]
    fn half_spectrum_matches_hermitian_symmetry() {
        // Reconstruct the full spectrum from the half and compare to the
        // complex transform of the full signal.
        let n = 96;
        let x = real_signal(n);
        let half = RealFft::new(n).forward(&x);
        let as_complex: Vec<c64> = x.iter().map(|&r| c64::real(r)).collect();
        let full = dft(&as_complex);
        for k in n / 2 + 1..n {
            let mirrored = half[n - k].conj();
            assert!(
                (full[k] - mirrored).abs() < 1e-9 * (1.0 + full[k].abs()),
                "k={k}"
            );
        }
    }
}
