//! Batched transforms: many independent same-length FFTs.
//!
//! The SOI convolution stage ends with `M'` independent `L`-point FFTs per
//! node (`I_{M'} ⊗ F_L` realized as `I_P ⊗ (I_{M'/P} ⊗ F_L)`, paper §2), and
//! the 6-step algorithm runs row batches at both of its FFT stages. Batches
//! are embarrassingly parallel; the paper assigns them to OpenMP threads,
//! here they go to a [`soifft_par::Pool`] with one scratch buffer per
//! worker piece (no allocation inside the loop).

use soifft_num::{Complex, Real};
use soifft_par::Pool;

use crate::plan::Plan;

/// Forward-transforms every contiguous `plan.len()`-row of `data` in place,
/// serially. `data.len()` must be a multiple of the plan length.
pub fn forward_rows<T: Real>(plan: &Plan<T>, data: &mut [Complex<T>]) {
    let mut scratch = plan.make_scratch();
    forward_rows_with(plan, data, &mut scratch);
}

/// [`forward_rows`] against caller-owned plan scratch (no allocation
/// inside the call). `scratch` must come from `plan.make_scratch()`.
pub fn forward_rows_with<T: Real>(
    plan: &Plan<T>,
    data: &mut [Complex<T>],
    scratch: &mut [Complex<T>],
) {
    let n = plan.len();
    assert_eq!(data.len() % n, 0, "data is not a whole number of rows");
    for row in data.chunks_exact_mut(n) {
        plan.forward_with_scratch(row, scratch);
    }
}

/// Inverse-transforms every row in place (normalized), serially.
pub fn inverse_rows<T: Real>(plan: &Plan<T>, data: &mut [Complex<T>]) {
    let n = plan.len();
    assert_eq!(data.len() % n, 0, "data is not a whole number of rows");
    let mut scratch = plan.make_scratch();
    for row in data.chunks_exact_mut(n) {
        plan.inverse_with_scratch(row, &mut scratch);
    }
}

/// Forward-transforms every row in place, with rows statically partitioned
/// over the pool's threads. Each partition allocates one scratch buffer;
/// steady-state callers should plan worker scratch once and use
/// [`forward_rows_parallel_with`] instead.
pub fn forward_rows_parallel<T: Real>(plan: &Plan<T>, pool: &Pool, data: &mut [Complex<T>]) {
    let mut workers = make_worker_scratch(plan, pool);
    forward_rows_parallel_with(plan, pool, data, &mut workers);
}

/// One plan-scratch buffer per pool worker, for
/// [`forward_rows_parallel_with`].
pub fn make_worker_scratch<T: Real>(plan: &Plan<T>, pool: &Pool) -> Vec<Vec<Complex<T>>> {
    (0..pool.threads()).map(|_| plan.make_scratch()).collect()
}

/// [`forward_rows_parallel`] against caller-owned per-worker scratch
/// (`workers.len() >= pool.threads()`): no allocation inside the call.
pub fn forward_rows_parallel_with<T: Real>(
    plan: &Plan<T>,
    pool: &Pool,
    data: &mut [Complex<T>],
    workers: &mut [Vec<Complex<T>>],
) {
    let n = plan.len();
    assert_eq!(data.len() % n, 0, "data is not a whole number of rows");
    if data.is_empty() {
        return;
    }
    pool.par_chunks_mut_scratch(data, n, workers, |_, _, piece, scratch| {
        for row in piece.chunks_exact_mut(n) {
            plan.forward_with_scratch(row, scratch);
        }
    });
}

/// Forward-transforms each row and then multiplies element `(r, c)` by
/// `scale(r, c)` in the same pass over the row — the loop-fusion pattern of
/// Fig 4(b) (step 2 + step 3 without an intermediate memory sweep).
pub fn forward_rows_scaled<T: Real, F>(plan: &Plan<T>, data: &mut [Complex<T>], scale: F)
where
    F: Fn(usize, usize) -> Complex<T>,
{
    let n = plan.len();
    assert_eq!(data.len() % n, 0, "data is not a whole number of rows");
    let mut scratch = plan.make_scratch();
    for (r, row) in data.chunks_exact_mut(n).enumerate() {
        plan.forward_with_scratch(row, &mut scratch);
        for (c, v) in row.iter_mut().enumerate() {
            *v *= scale(r, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use soifft_num::c64;
    use soifft_num::error::rel_linf;

    fn rows_signal(rows: usize, n: usize) -> Vec<c64> {
        (0..rows * n)
            .map(|i| c64::new((0.17 * i as f64).sin(), (0.05 * i as f64).cos()))
            .collect()
    }

    #[test]
    fn rows_match_individual_transforms() {
        let (rows, n) = (7, 24);
        let plan = Plan::new(n);
        let src = rows_signal(rows, n);
        let mut batch = src.clone();
        forward_rows(&plan, &mut batch);
        for r in 0..rows {
            let want = dft(&src[r * n..(r + 1) * n]);
            assert!(
                rel_linf(&batch[r * n..(r + 1) * n], &want) < 1e-11,
                "row {r}"
            );
        }
    }

    #[test]
    fn parallel_matches_serial_for_all_thread_counts() {
        let (rows, n) = (16, 32);
        let plan = Plan::new(n);
        let src = rows_signal(rows, n);
        let mut serial = src.clone();
        forward_rows(&plan, &mut serial);
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let mut par = src.clone();
            forward_rows_parallel(&plan, &pool, &mut par);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn inverse_rows_round_trip() {
        let (rows, n) = (5, 20);
        let plan = Plan::new(n);
        let src = rows_signal(rows, n);
        let mut data = src.clone();
        forward_rows(&plan, &mut data);
        inverse_rows(&plan, &mut data);
        assert!(rel_linf(&data, &src) < 1e-11);
    }

    #[test]
    fn scaled_rows_fuse_twiddle_multiplication() {
        let (rows, n) = (4, 16);
        let plan = Plan::new(n);
        let src = rows_signal(rows, n);
        // Fused path.
        let mut fused = src.clone();
        forward_rows_scaled(&plan, &mut fused, |r, c| {
            c64::root_of_unity(rows * n, (r * c) as i64)
        });
        // Separate passes.
        let mut separate = src.clone();
        forward_rows(&plan, &mut separate);
        for r in 0..rows {
            for c in 0..n {
                separate[r * n + c] *= c64::root_of_unity(rows * n, (r * c) as i64);
            }
        }
        assert!(rel_linf(&fused, &separate) < 1e-13);
    }

    #[test]
    fn empty_batch_is_noop() {
        let plan = Plan::<f64>::new(8);
        let mut nothing: Vec<c64> = vec![];
        forward_rows(&plan, &mut nothing);
        forward_rows_parallel(&plan, &Pool::new(4), &mut nothing);
    }

    #[test]
    #[should_panic(expected = "whole number of rows")]
    fn ragged_batch_panics() {
        let plan = Plan::new(8);
        let mut data = vec![c64::ZERO; 12];
        forward_rows(&plan, &mut data);
    }
}
