//! Bailey's 6-step algorithm for large node-local 1D FFTs (paper §5.2).
//!
//! A length-`N = n1·n2` transform is computed on the data viewed as an
//! `n1 × n2` row-major matrix `A[a][b] = x[a·n2 + b]`:
//!
//! ```text
//! y[c + d·n1] = Σ_b W_{n2}^{bd} · W_N^{bc} · (Σ_a W_{n1}^{ac} A[a][b])
//! ```
//!
//! i.e. column FFTs, twiddle by `W_N^{bc}`, then row FFTs, with the output
//! landing in transposed order. The paper's Fig 4 gives two realizations —
//! the naive one with three explicit transposes (13 memory sweeps) and the
//! loop-fused one (4 sweeps) — and §5.2.3 adds architecture-aware rungs.
//! [`SixStepVariant`] exposes the same ladder, which `soifft-bench`'s
//! `fig10` reproduces:
//!
//! | rung | paper | here |
//! |---|---|---|
//! | 1 | `6-step-naïve` (13 sweeps) | [`SixStepVariant::Naive`] |
//! | 2 | `6-step-opt` (fused, 4 sweeps) | [`SixStepVariant::Fused`] |
//! | 3 | `latency-hiding` (prefetch + SMT pipelining) | [`SixStepVariant::FusedDynamic`]: dynamic-block twiddle tables (`O(√N)` working set) + 8×8 tiled transposed write-back — the portable subset of the same bandwidth/locality mechanisms |
//! | 4 | `fine-grain` parallelization | [`SixStepVariant::FusedParallel`] |
//!
//! The parallel rung trades two extra memory sweeps for safe disjoint
//! writes (Rust cannot express the paper's cross-thread strided tile writes
//! without `unsafe`); the bench documents this when reporting the ladder.
//!
//! §5.2.4's "Saving Bandwidth by Fusing Demodulation and FFT" is
//! [`SixStepFft::forward_scaled`]: a caller-supplied diagonal is applied
//! during the final write-back pass instead of as a separate sweep — the
//! SOI pipeline passes its demodulation window `W⁻¹` here.

use soifft_num::c64;
use soifft_num::factor::balanced_split;
use soifft_num::transpose::{transpose, transpose_tile, TILE};
use soifft_par::Pool;

use crate::plan::Plan;
use crate::twiddle::{DynamicBlock, Twiddles};

/// Which rung of the Fig 10 optimization ladder to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SixStepVariant {
    /// Fig 4(a): explicit transposes and a separate twiddle pass —
    /// 13 memory sweeps, full-size twiddle table.
    Naive,
    /// Fig 4(b): loops fused through a contiguous column buffer —
    /// 4 memory sweeps, still a full-size twiddle table.
    Fused,
    /// Fused plus dynamic-block twiddle tables (√N working set) and 8×8
    /// tiled transposed write-back.
    FusedDynamic,
    /// FusedDynamic plus fine-grain thread parallelization over column and
    /// row bands.
    FusedParallel,
}

impl SixStepVariant {
    /// All rungs in ladder order (used by benches).
    pub const LADDER: [SixStepVariant; 4] = [
        SixStepVariant::Naive,
        SixStepVariant::Fused,
        SixStepVariant::FusedDynamic,
        SixStepVariant::FusedParallel,
    ];

    /// Display label matching the paper's Fig 10 x-axis.
    pub fn label(self) -> &'static str {
        match self {
            SixStepVariant::Naive => "6-step-naive",
            SixStepVariant::Fused => "6-step-opt",
            SixStepVariant::FusedDynamic => "+locality",
            SixStepVariant::FusedParallel => "+fine-grain",
        }
    }

    /// Number of full-array memory sweeps this variant performs
    /// (the quantity Fig 4 counts).
    pub fn memory_sweeps(self) -> usize {
        match self {
            SixStepVariant::Naive => 13,
            SixStepVariant::Fused | SixStepVariant::FusedDynamic => 4,
            // Safe parallel write-back costs one extra transpose pass.
            SixStepVariant::FusedParallel => 6,
        }
    }
}

#[derive(Clone)]
enum TwiddleStore {
    Full(Twiddles),
    Dynamic(DynamicBlock),
}

impl TwiddleStore {
    /// `w^t` for an already-reduced index `t < n`.
    #[inline(always)]
    fn get(&self, t: usize) -> c64 {
        match self {
            TwiddleStore::Full(tw) => tw.get(t),
            TwiddleStore::Dynamic(tw) => tw.get(t),
        }
    }

    /// Multiplies `row[c] *= w^{b·c}` for all `c`, stepping the exponent
    /// incrementally (`t += b` with a conditional subtract) instead of a
    /// division/modulo per element — the twiddle pass is bandwidth-critical
    /// and a per-element `u128` modulo would dominate it.
    fn scale_row(&self, row: &mut [c64], b: usize, n: usize) {
        let step = b % n;
        let mut t = 0usize;
        for v in row.iter_mut() {
            *v *= self.get(t);
            t += step;
            if t >= n {
                t -= n;
            }
        }
    }
}

/// A large-FFT plan: 2D decomposition, component plans, twiddles, variant.
#[derive(Clone)]
pub struct SixStepFft {
    n: usize,
    n1: usize,
    n2: usize,
    plan1: std::sync::Arc<Plan>,
    plan2: std::sync::Arc<Plan>,
    tw: TwiddleStore,
    variant: SixStepVariant,
    pool: Pool,
}

/// Per-worker scratch slot for [`SixStepVariant::FusedParallel`].
#[derive(Clone, Debug)]
struct WorkerScratch {
    s1: Vec<c64>,
    s2: Vec<c64>,
}

/// Reusable scratch for one [`SixStepFft`] plan: the column-group buffer,
/// the component-plan scratch, and (for the parallel variant) one scratch
/// slot per pool worker. Build it once with [`SixStepFft::make_scratch`]
/// and pass it to [`SixStepFft::forward_with`] /
/// [`SixStepFft::forward_scaled_with`] — repeated transforms then run with
/// no heap allocation at all, which is what the steady-state SOI pipeline
/// needs (the twiddle pass is bandwidth-bound, so allocator traffic is
/// pure overhead).
#[derive(Clone, Debug)]
pub struct SixStepScratch {
    buf: Vec<c64>,
    s1: Vec<c64>,
    s2: Vec<c64>,
    workers: Vec<WorkerScratch>,
}

impl SixStepFft {
    /// Builds a plan for length `n` with a balanced `n1 × n2` split and a
    /// serial pool.
    pub fn new(n: usize, variant: SixStepVariant) -> Self {
        Self::with_pool(n, variant, Pool::serial())
    }

    /// Builds a plan that parallelizes (where the variant allows) on
    /// `pool`.
    pub fn with_pool(n: usize, variant: SixStepVariant, pool: Pool) -> Self {
        let (n1, n2) = balanced_split(n);
        Self::with_split(n, n1, n2, variant, pool)
    }

    /// Builds a plan with an explicit `n1 × n2` decomposition
    /// (`n1 * n2 == n`).
    pub fn with_split(n: usize, n1: usize, n2: usize, variant: SixStepVariant, pool: Pool) -> Self {
        assert!(n >= 1 && n1 * n2 == n, "n1*n2 must equal n");
        let tw = match variant {
            SixStepVariant::Naive | SixStepVariant::Fused => TwiddleStore::Full(Twiddles::new(n)),
            SixStepVariant::FusedDynamic | SixStepVariant::FusedParallel => {
                TwiddleStore::Dynamic(DynamicBlock::new(n))
            }
        };
        SixStepFft {
            n,
            n1,
            n2,
            // Component plans come from the process-wide cache: simulated
            // ranks all build the same geometry, and `n1 == n2` on even
            // log₂ sizes shares one table within a single plan too.
            plan1: crate::cache::shared_plan(n1),
            plan2: crate::cache::shared_plan(n2),
            tw,
            variant,
            pool,
        }
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The decomposition `(n1, n2)`.
    pub fn split(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// The variant this plan runs.
    pub fn variant(&self) -> SixStepVariant {
        self.variant
    }

    /// Builds the reusable scratch this plan's variant needs. Sized once
    /// here so every later [`SixStepFft::forward_with`] call is
    /// allocation-free.
    pub fn make_scratch(&self) -> SixStepScratch {
        let buf = match self.variant {
            SixStepVariant::Fused | SixStepVariant::FusedDynamic => {
                let cs = soifft_num::factor::padded_stride(self.n1, 4);
                vec![c64::ZERO; TILE * cs]
            }
            SixStepVariant::Naive | SixStepVariant::FusedParallel => Vec::new(),
        };
        let workers = match self.variant {
            SixStepVariant::FusedParallel => (0..self.pool.threads())
                .map(|_| WorkerScratch {
                    s1: self.plan1.make_scratch(),
                    s2: self.plan2.make_scratch(),
                })
                .collect(),
            _ => Vec::new(),
        };
        SixStepScratch {
            buf,
            s1: self.plan1.make_scratch(),
            s2: self.plan2.make_scratch(),
            workers,
        }
    }

    /// Forward transform of `data` in place. `aux` is caller-provided
    /// scratch of the same length (ping-pong buffer).
    pub fn forward(&self, data: &mut [c64], aux: &mut [c64]) {
        let mut scratch = self.make_scratch();
        self.forward_impl(data, aux, None, &mut scratch);
    }

    /// [`SixStepFft::forward`] against caller-owned scratch: no heap
    /// allocation happens inside the call.
    pub fn forward_with(&self, data: &mut [c64], aux: &mut [c64], scratch: &mut SixStepScratch) {
        self.forward_impl(data, aux, None, scratch);
    }

    /// Forward transform with a diagonal `scale` fused into the final
    /// write-back: `out[k] = y_k · scale[k]` without an extra memory sweep
    /// (§5.2.4 fused demodulation). `scale.len() == n`.
    pub fn forward_scaled(&self, data: &mut [c64], aux: &mut [c64], scale: &[c64]) {
        assert_eq!(scale.len(), self.n, "scale length != n");
        let mut scratch = self.make_scratch();
        self.forward_impl(data, aux, Some(scale), &mut scratch);
    }

    /// [`SixStepFft::forward_scaled`] against caller-owned scratch.
    pub fn forward_scaled_with(
        &self,
        data: &mut [c64],
        aux: &mut [c64],
        scale: &[c64],
        scratch: &mut SixStepScratch,
    ) {
        assert_eq!(scale.len(), self.n, "scale length != n");
        self.forward_impl(data, aux, Some(scale), scratch);
    }

    /// Inverse transform (normalized by `1/n`), via conjugation around the
    /// forward kernel.
    pub fn inverse(&self, data: &mut [c64], aux: &mut [c64]) {
        let mut scratch = self.make_scratch();
        for z in data.iter_mut() {
            *z = z.conj();
        }
        self.forward_impl(data, aux, None, &mut scratch);
        let s = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.conj() * s;
        }
    }

    fn forward_impl(
        &self,
        data: &mut [c64],
        aux: &mut [c64],
        scale: Option<&[c64]>,
        scratch: &mut SixStepScratch,
    ) {
        assert_eq!(data.len(), self.n, "data length != n");
        assert_eq!(aux.len(), self.n, "aux length != n");
        match self.variant {
            SixStepVariant::Naive => self.forward_naive(data, aux, scale, scratch),
            SixStepVariant::Fused | SixStepVariant::FusedDynamic => {
                self.forward_fused(data, aux, scale, scratch)
            }
            SixStepVariant::FusedParallel => self.forward_parallel(data, aux, scale, scratch),
        }
    }

    /// Fig 4(a): six explicit steps, 13 memory sweeps.
    fn forward_naive(
        &self,
        data: &mut [c64],
        aux: &mut [c64],
        scale: Option<&[c64]>,
        scratch: &mut SixStepScratch,
    ) {
        let (n1, n2) = (self.n1, self.n2);
        // Step 1: transpose n1×n2 → n2×n1 (aux[b][a]).
        transpose(data, aux, n1, n2);
        // Step 2: n2 rows of n1-point FFTs.
        for row in aux.chunks_exact_mut(n1) {
            self.plan1.forward_with_scratch(row, &mut scratch.s1);
        }
        // Step 3: twiddle B[b][c] *= W_N^{bc} (a separate full sweep).
        for (b, row) in aux.chunks_exact_mut(n1).enumerate() {
            self.tw.scale_row(row, b, self.n);
        }
        // Step 4: transpose back n2×n1 → n1×n2 (data[c][b]).
        transpose(aux, data, n2, n1);
        // Step 5: n1 rows of n2-point FFTs.
        for row in data.chunks_exact_mut(n2) {
            self.plan2.forward_with_scratch(row, &mut scratch.s2);
        }
        // Step 6: transpose n1×n2 → n2×n1; output natural order is d-major.
        transpose(data, aux, n1, n2);
        if let Some(s) = scale {
            for (v, &m) in aux.iter_mut().zip(s) {
                *v *= m;
            }
        }
        data.copy_from_slice(aux);
    }

    /// Fig 4(b): loop-fused, 4 memory sweeps. `aux` holds the intermediate
    /// C matrix in c-major (`aux[c·n2 + b]`).
    fn forward_fused(
        &self,
        data: &mut [c64],
        aux: &mut [c64],
        scale: Option<&[c64]>,
        scratch: &mut SixStepScratch,
    ) {
        let (n1, n2) = (self.n1, self.n2);
        // Column stride padded past power-of-two alignments so the 8
        // gathered columns do not alias the same cache sets (§5.2.3).
        let cs = soifft_num::factor::padded_stride(n1, 4);
        if scratch.buf.len() < TILE * cs {
            scratch.buf.resize(TILE * cs, c64::ZERO);
        }
        let buf = &mut scratch.buf[..TILE * cs];

        // loop_a over column groups: gather → FFT → twiddle → permuted
        // write-back, all while the group lives in the contiguous buffer.
        let mut b0 = 0;
        while b0 < n2 {
            let g = TILE.min(n2 - b0);
            // Gather columns b0..b0+g: buf[gg·cs + a] = data[a·n2 + b0+gg].
            let mut a0 = 0;
            while a0 < n1 {
                let rows = TILE.min(n1 - a0);
                transpose_tile(&data[a0 * n2 + b0..], n2, &mut buf[a0..], cs, rows, g);
                a0 += rows;
            }
            // FFT each gathered column, then twiddle in-cache (steps 2+3
            // fused).
            for gg in 0..g {
                let col = &mut buf[gg * cs..gg * cs + n1];
                self.plan1.forward_with_scratch(col, &mut scratch.s1);
                self.tw.scale_row(col, b0 + gg, self.n);
            }
            // Permuted write-back into the c-major intermediate:
            // aux[c·n2 + b0+gg] = buf[gg·cs + c], via 8×8 tiles.
            let mut c0 = 0;
            while c0 < n1 {
                let cols = TILE.min(n1 - c0);
                transpose_tile(&buf[c0..], cs, &mut aux[c0 * n2 + b0..], n2, g, cols);
                c0 += cols;
            }
            b0 += g;
        }

        // loop_b over row groups: FFT rows in place, then transposed
        // write-back into natural (d-major) order, with optional fused
        // demodulation.
        let mut c0 = 0;
        while c0 < n1 {
            let rows = TILE.min(n1 - c0);
            for c in c0..c0 + rows {
                self.plan2
                    .forward_with_scratch(&mut aux[c * n2..(c + 1) * n2], &mut scratch.s2);
            }
            // data[d·n1 + c] = aux[c·n2 + d] (· scale[d·n1 + c]).
            let mut d0 = 0;
            while d0 < n2 {
                let cols = TILE.min(n2 - d0);
                transpose_tile(
                    &aux[c0 * n2 + d0..],
                    n2,
                    &mut data[d0 * n1 + c0..],
                    n1,
                    rows,
                    cols,
                );
                if let Some(s) = scale {
                    for d in d0..d0 + cols {
                        for c in c0..c0 + rows {
                            data[d * n1 + c] *= s[d * n1 + c];
                        }
                    }
                }
                d0 += cols;
            }
            c0 += rows;
        }
    }

    /// Fine-grain parallel variant: three band-parallel phases.
    ///
    /// Phase A writes the post-column-FFT matrix b-major (each thread owns
    /// a contiguous band of columns), phase B writes the post-row-FFT
    /// matrix c-major (each thread owns a band of rows), and phase C is a
    /// parallel transpose into natural order with the fused scale. The
    /// extra transpose (2 sweeps) is the price of safe disjoint writes.
    fn forward_parallel(
        &self,
        data: &mut [c64],
        aux: &mut [c64],
        scale: Option<&[c64]>,
        scratch: &mut SixStepScratch,
    ) {
        let (n1, n2) = (self.n1, self.n2);
        let pool = &self.pool;

        // Phase A: aux[b·n1 + c] = twiddled FFT over a of data[a·n2 + b].
        {
            let data_ro: &[c64] = data;
            pool.par_chunks_mut_scratch(aux, n1, &mut scratch.workers, |_, offset, band, w| {
                let b_base = offset / n1;
                for (local_b, col) in band.chunks_exact_mut(n1).enumerate() {
                    let b = b_base + local_b;
                    // Gather the column (stride n2 reads).
                    for (a, v) in col.iter_mut().enumerate() {
                        *v = data_ro[a * n2 + b];
                    }
                    self.plan1.forward_with_scratch(col, &mut w.s1);
                    self.tw.scale_row(col, b, self.n);
                }
            });
        }

        // Phase B: data[c·n2 + d] = FFT over b of aux[b·n1 + c]
        // (each thread owns a band of c-rows of the c-major output).
        {
            let aux_ro: &[c64] = aux;
            pool.par_chunks_mut_scratch(data, n2, &mut scratch.workers, |_, offset, band, w| {
                let c_base = offset / n2;
                for (local_c, row) in band.chunks_exact_mut(n2).enumerate() {
                    let c = c_base + local_c;
                    for (b, v) in row.iter_mut().enumerate() {
                        *v = aux_ro[b * n1 + c];
                    }
                    self.plan2.forward_with_scratch(row, &mut w.s2);
                }
            });
        }

        // Phase C: parallel transpose to natural order with fused scale:
        // aux[d·n1 + c] = data[c·n2 + d] · scale[d·n1 + c].
        {
            let data_ro: &[c64] = data;
            pool.par_chunks_mut(aux, n1, |_, offset, band| {
                let d_base = offset / n1;
                for (local_d, out_row) in band.chunks_exact_mut(n1).enumerate() {
                    let d = d_base + local_d;
                    for (c, v) in out_row.iter_mut().enumerate() {
                        *v = data_ro[c * n2 + d];
                    }
                    if let Some(s) = scale {
                        let srow = &s[d * n1..(d + 1) * n1];
                        for (v, &m) in out_row.iter_mut().zip(srow) {
                            *v *= m;
                        }
                    }
                }
            });
        }
        // Result back into `data` (band-parallel copy).
        {
            let aux_ro: &[c64] = aux;
            pool.par_chunks_mut(data, 1, |_, offset, band| {
                band.copy_from_slice(&aux_ro[offset..offset + band.len()]);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use soifft_num::error::rel_linf;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new((0.19 * i as f64).sin() + 0.1, (0.07 * i as f64).cos()))
            .collect()
    }

    fn check(n: usize, variant: SixStepVariant, pool: Pool, tol: f64) {
        let x = signal(n);
        let plan = SixStepFft::with_pool(n, variant, pool);
        let mut got = x.clone();
        let mut aux = vec![c64::ZERO; n];
        plan.forward(&mut got, &mut aux);
        let want = dft(&x);
        let err = rel_linf(&got, &want);
        assert!(err < tol, "n={n} {variant:?}: err={err:.3e}");
    }

    #[test]
    fn all_variants_match_direct_dft_pow2() {
        for variant in SixStepVariant::LADDER {
            for n in [16, 64, 256, 1024] {
                check(n, variant, Pool::serial(), 1e-11);
            }
        }
    }

    #[test]
    fn all_variants_match_direct_dft_nonpow2() {
        for variant in SixStepVariant::LADDER {
            for n in [36, 100, 240, 720] {
                check(n, variant, Pool::serial(), 1e-11);
            }
        }
    }

    #[test]
    fn parallel_variant_with_threads_matches() {
        for threads in [1, 2, 4] {
            check(
                512,
                SixStepVariant::FusedParallel,
                Pool::new(threads),
                1e-11,
            );
        }
    }

    #[test]
    fn ragged_splits_work() {
        // Explicit unbalanced splits exercise partial tiles on both axes.
        for &(n1, n2) in &[(3, 64), (64, 3), (5, 7), (12, 20), (1, 32), (32, 1)] {
            let n = n1 * n2;
            let x = signal(n);
            for variant in SixStepVariant::LADDER {
                let plan = SixStepFft::with_split(n, n1, n2, variant, Pool::new(2));
                let mut got = x.clone();
                let mut aux = vec![c64::ZERO; n];
                plan.forward(&mut got, &mut aux);
                let want = dft(&x);
                assert!(rel_linf(&got, &want) < 1e-11, "{n1}x{n2} {variant:?}");
            }
        }
    }

    #[test]
    fn variants_agree_with_each_other_on_larger_size() {
        let n = 1 << 12;
        let x = signal(n);
        let mut reference: Option<Vec<c64>> = None;
        for variant in SixStepVariant::LADDER {
            let plan = SixStepFft::with_pool(n, variant, Pool::new(2));
            let mut got = x.clone();
            let mut aux = vec![c64::ZERO; n];
            plan.forward(&mut got, &mut aux);
            match &reference {
                None => reference = Some(got),
                Some(r) => {
                    assert!(rel_linf(&got, r) < 1e-12, "{variant:?} diverges")
                }
            }
        }
    }

    #[test]
    fn forward_scaled_equals_forward_then_multiply() {
        let n = 256;
        let x = signal(n);
        let scale: Vec<c64> = (0..n)
            .map(|k| c64::new(1.0 / (1.0 + k as f64), 0.002 * k as f64))
            .collect();
        for variant in SixStepVariant::LADDER {
            let plan = SixStepFft::with_pool(n, variant, Pool::new(2));
            let mut fused = x.clone();
            let mut aux = vec![c64::ZERO; n];
            plan.forward_scaled(&mut fused, &mut aux, &scale);

            let mut separate = x.clone();
            plan.forward(&mut separate, &mut aux);
            for (v, &m) in separate.iter_mut().zip(&scale) {
                *v *= m;
            }
            assert!(rel_linf(&fused, &separate) < 1e-12, "{variant:?}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let n = 400;
        let x = signal(n);
        for variant in [SixStepVariant::Fused, SixStepVariant::FusedParallel] {
            let plan = SixStepFft::with_pool(n, variant, Pool::new(2));
            let mut d = x.clone();
            let mut aux = vec![c64::ZERO; n];
            plan.forward(&mut d, &mut aux);
            plan.inverse(&mut d, &mut aux);
            assert!(rel_linf(&d, &x) < 1e-11, "{variant:?}");
        }
    }

    #[test]
    fn conflict_padded_split_is_exercised() {
        // n1 = 512 triggers the §5.2.3 padded column stride in the fused
        // variant; the result must be unaffected.
        let n = 512 * 8;
        let x = signal(n);
        let plan = SixStepFft::with_split(n, 512, 8, SixStepVariant::Fused, Pool::serial());
        let mut got = x.clone();
        let mut aux = vec![c64::ZERO; n];
        plan.forward(&mut got, &mut aux);
        let mut want = x;
        crate::plan::Plan::new(n).forward(&mut want);
        assert!(rel_linf(&got, &want) < 1e-11);
    }

    #[test]
    fn length_one_transform() {
        let plan = SixStepFft::new(1, SixStepVariant::Fused);
        let mut d = vec![c64::new(3.0, 4.0)];
        let mut aux = vec![c64::ZERO; 1];
        plan.forward(&mut d, &mut aux);
        assert_eq!(d[0], c64::new(3.0, 4.0));
    }

    #[test]
    fn incremental_twiddle_stepping_matches_direct() {
        // scale_row steps t += b with conditional subtract; verify against
        // direct modular products across wrap-arounds.
        let n = 96;
        let tw = TwiddleStore::Full(crate::twiddle::Twiddles::new(n));
        for b in [0usize, 1, 7, 48, 95, 96, 100] {
            let mut row = vec![c64::ONE; 33];
            tw.scale_row(&mut row, b, n);
            for (c, v) in row.iter().enumerate() {
                let want = c64::root_of_unity(n, (b * c) as i64);
                assert!((*v - want).abs() < 1e-12, "b={b} c={c}");
            }
        }
    }

    #[test]
    fn metadata_accessors() {
        let plan = SixStepFft::new(1 << 10, SixStepVariant::Fused);
        assert_eq!(plan.len(), 1 << 10);
        assert_eq!(plan.split(), (32, 32));
        assert_eq!(plan.variant(), SixStepVariant::Fused);
        assert!(!plan.is_empty());
        assert_eq!(SixStepVariant::Naive.memory_sweeps(), 13);
        assert_eq!(SixStepVariant::Fused.memory_sweeps(), 4);
        assert_eq!(SixStepVariant::Naive.label(), "6-step-naive");
        assert_eq!(SixStepVariant::LADDER.len(), 4);
    }
}
