//! Node-local FFT library, built from scratch.
//!
//! The SOI algorithm (and the Cooley–Tukey baseline) needs three kinds of
//! node-local transforms, all implemented here rather than borrowed from an
//! external FFT crate — the local FFT is one of the things the paper
//! optimizes (§5.2), so it is part of what this reproduction builds:
//!
//! * **Small/medium transforms** ([`Plan`]): recursive decimation-in-time
//!   Cooley–Tukey for power-of-two and smooth composite sizes (specialized
//!   radix-2/3/4/5 butterflies, generic small-prime butterfly), and
//!   Bluestein's chirp-z algorithm for arbitrary sizes. These cover the
//!   `F_L` segment transforms, whose size is the total segment count and
//!   thus arbitrary.
//! * **Batched transforms** ([`batch`]): many independent same-size FFTs —
//!   the `I_{M'} ⊗ F_L` stage runs `M'` of them per node; the paper
//!   vectorizes 8 at a time across the batch (Fig 4(b) step 2).
//! * **Large 1D transforms** ([`sixstep`]): Bailey's 6-step algorithm for
//!   the `F_{M'}` stage, in the paper's two forms — the naive 13-memory-
//!   sweep variant of Fig 4(a) and the fused 4-sweep variant of Fig 4(b) —
//!   plus the architecture-aware rungs of the Fig 10 ladder (dynamic-block
//!   twiddle tables, tiled transposed write-back, fine-grain
//!   parallelization) and the fused-demodulation hook of §5.2.4.
//!
//! Conventions: forward transform is `y_k = Σ_n x_n e^{−2πi nk/N}`
//! (unnormalized, FFTW/MKL-compatible); the inverse is normalized by `1/N`
//! so `inverse(forward(x)) == x`. Flop counts everywhere use the paper's
//! `5 N log₂ N` convention.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod bluestein;
pub mod cache;
pub mod dft;
pub mod iterative;
pub mod multi;
pub mod plan;
pub mod planar;
pub mod real;
pub mod sixstep;
pub mod stockham;
pub mod twiddle;

pub use cache::{
    global_plan_cache_stats, shared_plan, shared_plan_f32, shared_plan_stats,
    shared_plan_stats_f32, try_shared_plan, try_shared_plan_f32, PlanCache, PlanCacheStats,
    DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use iterative::IterativeFft;
pub use multi::{Plan2d, Plan3d};
pub use plan::{Plan, PlanError};
pub use planar::PlanarFft;
pub use real::RealFft;
pub use sixstep::{SixStepFft, SixStepScratch, SixStepVariant};
pub use stockham::StockhamFft;

/// Flops of an `n`-point complex FFT under the paper's `5 n log₂ n`
/// convention (used consistently for GFLOPS reporting so that rates are
/// comparable with the paper's).
pub fn fft_flops(n: usize) -> f64 {
    let n = n as f64;
    5.0 * n * n.log2()
}
