//! Plan caching.
//!
//! Plans are expensive to build (O(n) trig for the twiddle tables;
//! Bluestein also FFTs its kernel) and cheap to share (`Plan` execution is
//! `&self`). Applications that transform many sizes — the SOI pipeline
//! builds `F_L` and `F_{M'}` plans, plus Bluestein's inner plans — go
//! through a [`PlanCache`] so repeated sizes are planned once. One global
//! cache exists per precision ([`shared_plan`] for `f64`,
//! [`shared_plan_f32`] for the half-payload path); the caches are
//! independent because an `f32` table is not a truncation of a shared
//! `f64` table entry-by-entry — it is built (and demoted) per precision at
//! construction.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use soifft_num::Real;

use crate::plan::{Plan, PlanError};

/// The process-wide shared `f64` cache behind [`shared_plan`].
static GLOBAL: OnceLock<PlanCache> = OnceLock::new();

/// The process-wide shared `f32` cache behind [`shared_plan_f32`].
static GLOBAL_F32: OnceLock<PlanCache<f32>> = OnceLock::new();

/// Returns the plan for `n` from the process-wide [`PlanCache`], building
/// it on first use. All SOI and Cooley–Tukey pipelines plan through this
/// entry point, so constructing many transforms of the same geometry
/// (ranks of a simulated cluster, iterated benchmark plans) shares one
/// twiddle table per size instead of rebuilding it per instance.
pub fn shared_plan(n: usize) -> Arc<Plan> {
    GLOBAL.get_or_init(PlanCache::new).get(n)
}

/// Fallible twin of [`shared_plan`]: surfaces [`PlanError`] (zero length)
/// instead of panicking, for plan sizes derived from untrusted input.
pub fn try_shared_plan(n: usize) -> Result<Arc<Plan>, PlanError> {
    GLOBAL.get_or_init(PlanCache::new).try_get(n)
}

/// Returns the single-precision plan for `n` from the process-wide `f32`
/// cache, building it on first use (the `f32` data path's counterpart of
/// [`shared_plan`]).
pub fn shared_plan_f32(n: usize) -> Arc<Plan<f32>> {
    GLOBAL_F32.get_or_init(PlanCache::new).get(n)
}

/// Fallible twin of [`shared_plan_f32`].
pub fn try_shared_plan_f32(n: usize) -> Result<Arc<Plan<f32>>, PlanError> {
    GLOBAL_F32.get_or_init(PlanCache::new).try_get(n)
}

/// A thread-safe cache of [`Plan`]s keyed by transform length, generic
/// over the precision parameter.
#[derive(Default)]
pub struct PlanCache<T: Real = f64> {
    plans: Mutex<HashMap<usize, Arc<Plan<T>>>>,
}

impl<T: Real> PlanCache<T> {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the plan for `n`, building it on first use.
    ///
    /// # Panics
    /// Panics if `n == 0` (via [`Plan::new`]); use [`PlanCache::try_get`]
    /// for sizes derived from untrusted input.
    pub fn get(&self, n: usize) -> Arc<Plan<T>> {
        match self.try_get(n) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Returns the plan for `n`, building it on first use; a zero length
    /// is reported as a typed [`PlanError`] instead of a panic.
    pub fn try_get(&self, n: usize) -> Result<Arc<Plan<T>>, PlanError> {
        // Fast path: already present.
        if let Some(p) = self.plans.lock().get(&n) {
            return Ok(Arc::clone(p));
        }
        // Build outside the lock (planning can take milliseconds), then
        // race benignly: first writer wins.
        let built = Arc::new(Plan::try_new(n)?);
        let mut map = self.plans.lock();
        Ok(Arc::clone(map.entry(n).or_insert(built)))
    }

    /// Number of distinct sizes cached.
    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.plans.lock().is_empty()
    }

    /// Drops all cached plans (they stay alive while callers hold `Arc`s).
    pub fn clear(&self) {
        self.plans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soifft_num::{c32, c64};

    #[test]
    fn caches_and_reuses() {
        let cache = PlanCache::<f64>::new();
        assert!(cache.is_empty());
        let a = cache.get(256);
        let b = cache.get(256);
        assert!(Arc::ptr_eq(&a, &b), "same size must share one plan");
        assert_eq!(cache.len(), 1);
        let c = cache.get(360);
        assert_eq!(c.len(), 360);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_plans_work() {
        let cache = PlanCache::<f64>::new();
        let plan = cache.get(64);
        let mut d = vec![c64::ZERO; 64];
        d[0] = c64::ONE;
        plan.forward(&mut d);
        assert!(d.iter().all(|v| (*v - c64::ONE).abs() < 1e-12));
    }

    #[test]
    fn f32_cache_is_independent_and_works() {
        let plan = shared_plan_f32(64);
        let again = shared_plan_f32(64);
        assert!(Arc::ptr_eq(&plan, &again));
        let mut d = vec![c32::ZERO; 64];
        d[0] = c32::ONE;
        plan.forward(&mut d);
        assert!(d.iter().all(|v| (*v - c32::ONE).abs() < 1e-4));
    }

    #[test]
    fn try_get_reports_zero_length() {
        let cache = PlanCache::<f64>::new();
        assert_eq!(cache.try_get(0).unwrap_err(), PlanError::ZeroLength);
        assert!(cache.is_empty(), "failed build must not populate the cache");
        assert!(try_shared_plan(0).is_err());
        assert!(try_shared_plan_f32(0).is_err());
        assert_eq!(try_shared_plan(32).unwrap().len(), 32);
    }

    #[test]
    fn clear_keeps_outstanding_arcs_valid() {
        let cache = PlanCache::<f64>::new();
        let p = cache.get(128);
        cache.clear();
        assert!(cache.is_empty());
        let mut d = vec![c64::ONE; 128];
        p.forward(&mut d); // still usable
        assert!((d[0].re - 128.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_access_yields_consistent_plans() {
        let cache = Arc::new(PlanCache::<f64>::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let p = c.get(512);
                p.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 512);
        }
        assert_eq!(cache.len(), 1);
    }
}
