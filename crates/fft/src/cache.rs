//! Plan caching.
//!
//! Plans are expensive to build (O(n) trig for the twiddle tables;
//! Bluestein also FFTs its kernel) and cheap to share (`Plan` execution is
//! `&self`). Applications that transform many sizes — the SOI pipeline
//! builds `F_L` and `F_{M'}` plans, plus Bluestein's inner plans — go
//! through a [`PlanCache`] so repeated sizes are planned once.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::plan::Plan;

/// The process-wide shared cache behind [`shared_plan`].
static GLOBAL: OnceLock<PlanCache> = OnceLock::new();

/// Returns the plan for `n` from the process-wide [`PlanCache`], building
/// it on first use. All SOI and Cooley–Tukey pipelines plan through this
/// entry point, so constructing many transforms of the same geometry
/// (ranks of a simulated cluster, iterated benchmark plans) shares one
/// twiddle table per size instead of rebuilding it per instance.
pub fn shared_plan(n: usize) -> Arc<Plan> {
    GLOBAL.get_or_init(PlanCache::new).get(n)
}

/// A thread-safe cache of [`Plan`]s keyed by transform length.
#[derive(Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<usize, Arc<Plan>>>,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the plan for `n`, building it on first use.
    pub fn get(&self, n: usize) -> Arc<Plan> {
        // Fast path: already present.
        if let Some(p) = self.plans.lock().get(&n) {
            return Arc::clone(p);
        }
        // Build outside the lock (planning can take milliseconds), then
        // race benignly: first writer wins.
        let built = Arc::new(Plan::new(n));
        let mut map = self.plans.lock();
        Arc::clone(map.entry(n).or_insert(built))
    }

    /// Number of distinct sizes cached.
    pub fn len(&self) -> usize {
        self.plans.lock().len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.plans.lock().is_empty()
    }

    /// Drops all cached plans (they stay alive while callers hold `Arc`s).
    pub fn clear(&self) {
        self.plans.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soifft_num::c64;

    #[test]
    fn caches_and_reuses() {
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        let a = cache.get(256);
        let b = cache.get(256);
        assert!(Arc::ptr_eq(&a, &b), "same size must share one plan");
        assert_eq!(cache.len(), 1);
        let c = cache.get(360);
        assert_eq!(c.len(), 360);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_plans_work() {
        let cache = PlanCache::new();
        let plan = cache.get(64);
        let mut d = vec![c64::ZERO; 64];
        d[0] = c64::ONE;
        plan.forward(&mut d);
        assert!(d.iter().all(|v| (*v - c64::ONE).abs() < 1e-12));
    }

    #[test]
    fn clear_keeps_outstanding_arcs_valid() {
        let cache = PlanCache::new();
        let p = cache.get(128);
        cache.clear();
        assert!(cache.is_empty());
        let mut d = vec![c64::ONE; 128];
        p.forward(&mut d); // still usable
        assert!((d[0].re - 128.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_access_yields_consistent_plans() {
        let cache = Arc::new(PlanCache::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let p = c.get(512);
                p.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 512);
        }
        assert_eq!(cache.len(), 1);
    }
}
