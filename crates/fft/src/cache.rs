//! Plan caching.
//!
//! Plans are expensive to build (O(n) trig for the twiddle tables;
//! Bluestein also FFTs its kernel) and cheap to share (`Plan` execution is
//! `&self`). Applications that transform many sizes — the SOI pipeline
//! builds `F_L` and `F_{M'}` plans, plus Bluestein's inner plans — go
//! through a [`PlanCache`] so repeated sizes are planned once. One global
//! cache exists per precision ([`shared_plan`] for `f64`,
//! [`shared_plan_f32`] for the half-payload path); the caches are
//! independent because an `f32` table is not a truncation of a shared
//! `f64` table entry-by-entry — it is built (and demoted) per precision at
//! construction.
//!
//! The cache is **bounded**: auto-tuners probe many candidate geometries
//! (each with its own `L`, `M'` and Bluestein inner sizes), and an
//! unbounded map would grow with every probed shape for the life of the
//! process. Past [`DEFAULT_PLAN_CACHE_CAPACITY`] distinct sizes the
//! least-recently-used entry is evicted — outstanding `Arc`s stay valid
//! (eviction only drops the cache's own reference), so eviction can never
//! invalidate a running transform. Hit/miss/eviction counters are exposed
//! through [`PlanCache::stats`] and, for the global caches,
//! [`shared_plan_stats`]; the SOI pipeline republishes them per superstep
//! into `CommStats` so `RunProfile` can show whether a workload is
//! replanning.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use soifft_num::Real;

use crate::plan::{Plan, PlanError};

/// Default capacity (distinct sizes) of a [`PlanCache`]. Sized for the
/// steady state of a tuning sweep: a handful of live geometries × the 3–4
/// plan sizes each SOI shape needs, with headroom — small enough that a
/// runaway candidate enumeration cannot hold hundreds of twiddle tables.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 64;

/// The process-wide shared `f64` cache behind [`shared_plan`].
static GLOBAL: OnceLock<PlanCache> = OnceLock::new();

/// The process-wide shared `f32` cache behind [`shared_plan_f32`].
static GLOBAL_F32: OnceLock<PlanCache<f32>> = OnceLock::new();

/// Returns the plan for `n` from the process-wide [`PlanCache`], building
/// it on first use. All SOI and Cooley–Tukey pipelines plan through this
/// entry point, so constructing many transforms of the same geometry
/// (ranks of a simulated cluster, iterated benchmark plans) shares one
/// twiddle table per size instead of rebuilding it per instance.
pub fn shared_plan(n: usize) -> Arc<Plan> {
    GLOBAL.get_or_init(PlanCache::new).get(n)
}

/// Fallible twin of [`shared_plan`]: surfaces [`PlanError`] (zero length)
/// instead of panicking, for plan sizes derived from untrusted input.
pub fn try_shared_plan(n: usize) -> Result<Arc<Plan>, PlanError> {
    GLOBAL.get_or_init(PlanCache::new).try_get(n)
}

/// Returns the single-precision plan for `n` from the process-wide `f32`
/// cache, building it on first use (the `f32` data path's counterpart of
/// [`shared_plan`]).
pub fn shared_plan_f32(n: usize) -> Arc<Plan<f32>> {
    GLOBAL_F32.get_or_init(PlanCache::new).get(n)
}

/// Fallible twin of [`shared_plan_f32`].
pub fn try_shared_plan_f32(n: usize) -> Result<Arc<Plan<f32>>, PlanError> {
    GLOBAL_F32.get_or_init(PlanCache::new).try_get(n)
}

/// Snapshot of the `f64` global cache's counters (see
/// [`PlanCache::stats`]).
pub fn shared_plan_stats() -> PlanCacheStats {
    GLOBAL.get_or_init(PlanCache::new).stats()
}

/// Snapshot of the `f32` global cache's counters.
pub fn shared_plan_stats_f32() -> PlanCacheStats {
    GLOBAL_F32.get_or_init(PlanCache::new).stats()
}

/// Combined counters of both global caches — what the SOI pipeline
/// publishes into its per-rank ledger each superstep.
pub fn global_plan_cache_stats() -> PlanCacheStats {
    let a = shared_plan_stats();
    let b = shared_plan_stats_f32();
    PlanCacheStats {
        hits: a.hits + b.hits,
        misses: a.misses + b.misses,
        evictions: a.evictions + b.evictions,
        len: a.len + b.len,
        capacity: a.capacity + b.capacity,
    }
}

/// Counter snapshot of one [`PlanCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a plan.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Distinct sizes currently cached.
    pub len: usize,
    /// Capacity bound (entries).
    pub capacity: usize,
}

/// One cached plan plus its recency stamp for LRU eviction.
struct Slot<T: Real> {
    plan: Arc<Plan<T>>,
    last_use: u64,
}

/// Map + logical clock; guarded by one mutex so recency updates are
/// atomic with lookups.
struct Inner<T: Real> {
    slots: HashMap<usize, Slot<T>>,
    tick: u64,
}

/// A thread-safe, capacity-bounded LRU cache of [`Plan`]s keyed by
/// transform length, generic over the precision parameter.
pub struct PlanCache<T: Real = f64> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<T: Real> Default for PlanCache<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Real> PlanCache<T> {
    /// An empty cache with the default capacity bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// An empty cache bounded to `capacity` distinct sizes (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                slots: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the plan for `n`, building it on first use.
    ///
    /// # Panics
    /// Panics if `n == 0` (via [`Plan::new`]); use [`PlanCache::try_get`]
    /// for sizes derived from untrusted input.
    pub fn get(&self, n: usize) -> Arc<Plan<T>> {
        match self.try_get(n) {
            Ok(plan) => plan,
            Err(e) => panic!("{e}"),
        }
    }

    /// Returns the plan for `n`, building it on first use; a zero length
    /// is reported as a typed [`PlanError`] instead of a panic.
    pub fn try_get(&self, n: usize) -> Result<Arc<Plan<T>>, PlanError> {
        // Fast path: already present — refresh recency under the lock.
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.slots.get_mut(&n) {
                slot.last_use = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&slot.plan));
            }
        }
        // Build outside the lock (planning can take milliseconds), then
        // race benignly: first writer wins.
        let built = Arc::new(Plan::try_new(n)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let plan = Arc::clone(
            &inner
                .slots
                .entry(n)
                .or_insert(Slot {
                    plan: built,
                    last_use: tick,
                })
                .plan,
        );
        // Enforce the bound, never evicting the entry just returned.
        while inner.slots.len() > self.capacity {
            let victim = inner
                .slots
                .iter()
                .filter(|(&k, _)| k != n)
                .min_by_key(|(_, s)| s.last_use)
                .map(|(&k, _)| k);
            match victim {
                Some(k) => {
                    inner.slots.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break, // capacity 1 holding only `n`
            }
        }
        Ok(plan)
    }

    /// Number of distinct sizes cached.
    pub fn len(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().slots.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the hit/miss/eviction counters and occupancy.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
        }
    }

    /// Drops all cached plans (they stay alive while callers hold `Arc`s).
    /// Counters are preserved — `clear` is a capacity reset, not a ledger
    /// reset.
    pub fn clear(&self) {
        self.inner.lock().slots.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soifft_num::{c32, c64};

    #[test]
    fn caches_and_reuses() {
        let cache = PlanCache::<f64>::new();
        assert!(cache.is_empty());
        let a = cache.get(256);
        let b = cache.get(256);
        assert!(Arc::ptr_eq(&a, &b), "same size must share one plan");
        assert_eq!(cache.len(), 1);
        let c = cache.get(360);
        assert_eq!(c.len(), 360);
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
    }

    #[test]
    fn cached_plans_work() {
        let cache = PlanCache::<f64>::new();
        let plan = cache.get(64);
        let mut d = vec![c64::ZERO; 64];
        d[0] = c64::ONE;
        plan.forward(&mut d);
        assert!(d.iter().all(|v| (*v - c64::ONE).abs() < 1e-12));
    }

    #[test]
    fn f32_cache_is_independent_and_works() {
        let plan = shared_plan_f32(64);
        let again = shared_plan_f32(64);
        assert!(Arc::ptr_eq(&plan, &again));
        let mut d = vec![c32::ZERO; 64];
        d[0] = c32::ONE;
        plan.forward(&mut d);
        assert!(d.iter().all(|v| (*v - c32::ONE).abs() < 1e-4));
    }

    #[test]
    fn try_get_reports_zero_length() {
        let cache = PlanCache::<f64>::new();
        assert_eq!(cache.try_get(0).unwrap_err(), PlanError::ZeroLength);
        assert!(cache.is_empty(), "failed build must not populate the cache");
        assert!(try_shared_plan(0).is_err());
        assert!(try_shared_plan_f32(0).is_err());
        assert_eq!(try_shared_plan(32).unwrap().len(), 32);
    }

    #[test]
    fn clear_keeps_outstanding_arcs_valid() {
        let cache = PlanCache::<f64>::new();
        let p = cache.get(128);
        cache.clear();
        assert!(cache.is_empty());
        let mut d = vec![c64::ONE; 128];
        p.forward(&mut d); // still usable
        assert!((d[0].re - 128.0).abs() < 1e-9);
    }

    #[test]
    fn lru_evicts_coldest_and_counts() {
        let cache = PlanCache::<f64>::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let p8 = cache.get(8); // miss
        let _p16 = cache.get(16); // miss
        let _ = cache.get(8); // hit — refreshes 8, making 16 the LRU
        let _p32 = cache.get(32); // miss → evicts 16
        assert_eq!(cache.len(), 2);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 1);
        // 8 survived (it was refreshed), 16 did not.
        let before = cache.stats().misses;
        let _ = cache.get(8);
        assert_eq!(cache.stats().misses, before, "8 must still be cached");
        let _ = cache.get(16);
        assert_eq!(
            cache.stats().misses,
            before + 1,
            "16 must have been evicted"
        );
        // Evicted plans held by callers keep working.
        let mut d = vec![c64::ONE; 8];
        p8.forward(&mut d);
        assert!((d[0].re - 8.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_one_always_serves_the_requested_plan() {
        let cache = PlanCache::<f64>::with_capacity(1);
        for n in [8usize, 16, 32, 8, 16] {
            assert_eq!(cache.get(n).len(), n);
            assert_eq!(cache.len(), 1);
        }
        assert_eq!(cache.stats().evictions, 4); // every switch evicts
    }

    #[test]
    fn with_capacity_zero_clamps_to_one() {
        let cache = PlanCache::<f64>::with_capacity(0);
        assert_eq!(cache.capacity(), 1);
        assert_eq!(cache.get(8).len(), 8);
    }

    #[test]
    fn global_stats_combine_both_precisions() {
        let _ = shared_plan(48);
        let _ = shared_plan_f32(48);
        let g = global_plan_cache_stats();
        assert!(g.misses >= 2);
        assert_eq!(g.capacity, 2 * DEFAULT_PLAN_CACHE_CAPACITY);
    }

    #[test]
    fn concurrent_access_yields_consistent_plans() {
        let cache = Arc::new(PlanCache::<f64>::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                let p = c.get(512);
                p.len()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 512);
        }
        assert_eq!(cache.len(), 1);
    }
}
