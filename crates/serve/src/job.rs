//! Job lifecycle types: typed rejection and failure surfaces, plus the
//! engine-internal pooled job slot.
//!
//! A submission is either **rejected** at the front door (typed
//! [`Rejected`], nothing was queued) or **admitted** into a pooled
//! [`JobSlot`] lease that ends in exactly one [`Result`]: the transform
//! output, or a typed [`JobError`]. Slots are preallocated at engine
//! start and recycled through a free list, so the warm submit → serve →
//! collect loop never touches the allocator.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize};
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};
use soifft_cluster::CommError;
use soifft_core::CancelGate;
use soifft_num::c64;

/// Why a submission was refused at the front door (nothing was queued;
/// the caller may back off and retry).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Rejected {
    /// The tenant's admission queue is at capacity (backpressure).
    QueueFull {
        /// The submitting tenant.
        tenant: usize,
        /// The per-tenant queue bound in force.
        capacity: usize,
    },
    /// The tenant's token bucket is empty.
    RateLimited {
        /// The submitting tenant.
        tenant: usize,
        /// Time until one token accumulates.
        retry_after: Duration,
    },
    /// The requested deadline cannot be met given the current backlog and
    /// the engine's execution-time estimate — shed *now*, before queueing,
    /// rather than burning a slot on a job that will miss.
    DeadlineInfeasible {
        /// The deadline the caller asked for.
        deadline: Duration,
        /// The engine's completion estimate (queue wait + execution).
        estimated: Duration,
    },
    /// Input length does not match the engine's planned transform size.
    InvalidInput {
        /// The planned `N`.
        expected: usize,
        /// The submitted length.
        got: usize,
    },
    /// Tenant id out of range.
    UnknownTenant {
        /// The offending id.
        tenant: usize,
    },
    /// The engine is draining toward shutdown; no new work.
    Draining,
    /// The engine cannot take work: the circuit breaker is open in
    /// [`DegradedMode::RejectNew`](crate::DegradedMode::RejectNew), or the
    /// cluster is gone (restart budget exhausted).
    Unavailable {
        /// Suggested backoff, when the condition is expected to clear
        /// (breaker cooldown); `None` when the engine is down for good.
        retry_after: Option<Duration>,
    },
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { tenant, capacity } => {
                write!(f, "tenant {tenant} queue full (capacity {capacity})")
            }
            Rejected::RateLimited {
                tenant,
                retry_after,
            } => write!(
                f,
                "tenant {tenant} rate limited; retry in {:.1} ms",
                retry_after.as_secs_f64() * 1e3
            ),
            Rejected::DeadlineInfeasible {
                deadline,
                estimated,
            } => write!(
                f,
                "deadline {:.1} ms infeasible (estimated completion {:.1} ms)",
                deadline.as_secs_f64() * 1e3,
                estimated.as_secs_f64() * 1e3
            ),
            Rejected::InvalidInput { expected, got } => {
                write!(f, "input length {got} != planned transform size {expected}")
            }
            Rejected::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant}"),
            Rejected::Draining => write!(f, "engine draining; not accepting work"),
            Rejected::Unavailable { retry_after: None } => write!(f, "engine unavailable"),
            Rejected::Unavailable {
                retry_after: Some(d),
            } => write!(
                f,
                "engine unavailable; retry in {:.1} ms",
                d.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for Rejected {}

/// Where an admitted job was shed on deadline expiry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedPoint {
    /// Expired while still queued: dispatched straight to a typed error,
    /// never touched the ranks.
    Queue,
    /// Expired in flight: cancelled cooperatively at the next collective
    /// boundary (ghost exchange or all-to-all) without tearing the
    /// collective, or completed after its deadline and was discarded.
    InFlight,
}

/// How an admitted job failed (the other arm is the transform output).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum JobError {
    /// The deadline expired before a result could be delivered.
    DeadlineExpired {
        /// Where the job was shed.
        shed_at: ShedPoint,
    },
    /// Transient communication faults (timeouts, checksum failures)
    /// persisted through the whole jittered-backoff retry budget.
    RetriesExhausted {
        /// Attempts made (initial + retries).
        attempts: u32,
        /// The final attempt's failure.
        last: CommError,
    },
    /// A permanent, job-scoped failure (e.g. silent data corruption that
    /// validation could not repair). The batch continued past this job.
    Failed {
        /// Pipeline phase that failed.
        phase: &'static str,
        /// The underlying failure.
        error: CommError,
    },
    /// A rank died while this job was in flight; the epoch was aborted
    /// and the supervisor is (or was) respawning. Queued jobs are *not*
    /// affected — only in-flight ones fail this way.
    RankFailure,
    /// The engine shut down (drain, or restart budget exhausted) before
    /// this job could complete.
    EngineDown,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::DeadlineExpired { shed_at } => write!(
                f,
                "deadline expired; job shed {}",
                match shed_at {
                    ShedPoint::Queue => "in queue",
                    ShedPoint::InFlight => "in flight",
                }
            ),
            JobError::RetriesExhausted { attempts, last } => {
                write!(f, "transient faults outlasted {attempts} attempts: {last}")
            }
            JobError::Failed { phase, error } => {
                write!(f, "failed permanently in phase {phase:?}: {error}")
            }
            JobError::RankFailure => write!(f, "a rank died while the job was in flight"),
            JobError::EngineDown => write!(f, "engine shut down before the job completed"),
        }
    }
}

impl std::error::Error for JobError {}

/// Sentinel for "no deadline" in [`JobSlot::deadline_ns`].
pub(crate) const NO_DEADLINE: u64 = u64::MAX;

/// Severity lattice for the per-job cross-rank outcome merge. Each rank
/// `fetch_max`es its attempt outcome into the slot; after the post-attempt
/// barrier every rank reads the same maximum and computes the same
/// decision (retry / finalize) with no further communication.
pub(crate) const SEV_OK: u8 = 0;
pub(crate) const SEV_CANCELLED: u8 = 1;
pub(crate) const SEV_TRANSIENT: u8 = 2;
pub(crate) const SEV_PERMANENT: u8 = 3;
pub(crate) const SEV_FATAL: u8 = 4;

/// Details of the highest-severity failure any rank saw this attempt.
#[derive(Clone, Debug)]
pub(crate) struct FailDetail {
    pub sev: u8,
    pub phase: &'static str,
    pub error: CommError,
}

/// A job's position in its lease lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Stage {
    /// In the free pool; no lease.
    Free,
    /// Admitted, waiting for dispatch.
    Queued,
    /// Dispatched to the ranks.
    InFlight,
    /// Finalized; result waiting for the client.
    Done,
}

/// Client-visible slot state, under one mutex with the completion
/// condvar.
#[derive(Debug)]
pub(crate) struct SlotState {
    pub stage: Stage,
    pub result: Option<Result<(), JobError>>,
    /// The ticket was dropped without waiting: whoever finalizes recycles.
    pub abandoned: bool,
}

/// One pooled job: preallocated input/output buffers plus the cross-rank
/// merge protocol state. All buffers are sized at engine start; a lease
/// writes them in place.
#[derive(Debug)]
pub(crate) struct JobSlot {
    /// Submitting tenant (valid while leased).
    pub tenant: AtomicUsize,
    /// Absolute deadline in nanoseconds since the engine origin
    /// ([`NO_DEADLINE`] = none).
    pub deadline_ns: AtomicU64,
    /// Admission time in nanoseconds since the engine origin.
    pub enqueued_ns: AtomicU64,
    /// Cooperative cancellation gate threaded through
    /// `SoiFft::try_forward_into_cancellable`.
    pub gate: CancelGate,
    /// Attempt-parity-indexed severity merge cells (`attempt % 2`): while
    /// attempt `k` merges into cell `k % 2`, the dispatcher pre-clears
    /// cell `(k + 1) % 2`, so a retry needs no extra rendezvous.
    pub severity: [AtomicU8; 2],
    /// Failure details for the severity cells, same parity scheme.
    pub detail: [Mutex<Option<FailDetail>>; 2],
    /// Finalize-once guard: the first finalizer (dispatcher, epoch
    /// recovery, or engine teardown) wins; everyone else no-ops.
    pub finalized: AtomicBool,
    /// Full-length input (capacity `n`); ranks read disjoint windows.
    pub input: RwLock<Vec<c64>>,
    /// Per-rank output parts (capacity `output_len(rank)` each).
    pub parts: Vec<Mutex<Vec<c64>>>,
    /// Lifecycle stage + result, guarded for the client rendezvous.
    pub state: Mutex<SlotState>,
    /// Signalled when the slot reaches [`Stage::Done`].
    pub done_cv: Condvar,
}

impl JobSlot {
    /// A free slot with buffers pre-sized for transform length `n` over
    /// per-rank output lengths `out_lens`.
    pub fn new(n: usize, out_lens: &[usize]) -> Self {
        JobSlot {
            tenant: AtomicUsize::new(0),
            deadline_ns: AtomicU64::new(NO_DEADLINE),
            enqueued_ns: AtomicU64::new(0),
            gate: CancelGate::new(),
            severity: [AtomicU8::new(SEV_OK), AtomicU8::new(SEV_OK)],
            detail: [Mutex::new(None), Mutex::new(None)],
            finalized: AtomicBool::new(false),
            input: RwLock::new(Vec::with_capacity(n)),
            parts: out_lens
                .iter()
                .map(|&len| Mutex::new(Vec::with_capacity(len)))
                .collect(),
            state: Mutex::new(SlotState {
                stage: Stage::Free,
                result: None,
                abandoned: false,
            }),
            done_cv: Condvar::new(),
        }
    }
}

/// Classifies a failed attempt for the severity merge.
pub(crate) fn classify(error: &CommError) -> u8 {
    match error {
        CommError::Cancelled { .. } => SEV_CANCELLED,
        e if e.is_transient() => SEV_TRANSIENT,
        CommError::PeerFailed { .. } | CommError::PeerDown { .. } | CommError::Shutdown => {
            SEV_FATAL
        }
        _ => SEV_PERMANENT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_severity_lattice() {
        assert_eq!(
            classify(&CommError::Cancelled { phase: "ghost" }),
            SEV_CANCELLED
        );
        assert_eq!(classify(&CommError::Timeout), SEV_TRANSIENT);
        assert_eq!(
            classify(&CommError::ChecksumMismatch { src: 0, tag: 1 }),
            SEV_TRANSIENT
        );
        assert_eq!(classify(&CommError::PeerFailed { rank: 1 }), SEV_FATAL);
        assert_eq!(classify(&CommError::PeerDown { rank: 1 }), SEV_FATAL);
        assert_eq!(classify(&CommError::Shutdown), SEV_FATAL);
        assert_eq!(
            classify(&CommError::SilentCorruption {
                rank: 0,
                segment: None
            }),
            SEV_PERMANENT
        );
    }

    #[test]
    fn rejections_render_their_cause() {
        let r = Rejected::QueueFull {
            tenant: 3,
            capacity: 8,
        };
        assert!(r.to_string().contains("tenant 3"));
        let r = Rejected::DeadlineInfeasible {
            deadline: Duration::from_millis(5),
            estimated: Duration::from_millis(20),
        };
        assert!(r.to_string().contains("infeasible"));
    }
}
