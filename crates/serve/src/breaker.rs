//! Circuit breaker: trip to a degraded mode after repeated crash/SDC
//! escalations, probe half-open, close on sustained success.
//!
//! Like [`Admission`](crate::admission::Admission), the breaker is a pure
//! state machine over an explicit clock so tests can walk it through
//! transitions deterministically.

use std::time::{Duration, Instant};

/// What the engine does with new work while the breaker is open.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradedMode {
    /// Reject new submissions with
    /// [`Rejected::Unavailable`](crate::Rejected::Unavailable) until the
    /// cooldown elapses (classic fail-fast).
    #[default]
    RejectNew,
    /// Keep serving, but run batches with
    /// [`ValidationPolicy::Off`](soifft_core::ValidationPolicy::Off) —
    /// shedding the ABFT invariant checks buys headroom and sidesteps a
    /// pathological validation layer, at the cost of SDC coverage. The
    /// paper's throughput mode (§5.3) with the PR 5 defenses turned off.
    ValidationOff,
}

/// Breaker tuning.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive escalations (rank deaths, silent-corruption failures)
    /// that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before probing half-open.
    pub cooldown: Duration,
    /// Successful half-open probes required to close again.
    pub half_open_probes: u32,
    /// Behaviour while open.
    pub degraded: DegradedMode,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
            half_open_probes: 1,
            degraded: DegradedMode::RejectNew,
        }
    }
}

/// The breaker's observable state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all work admitted normally.
    Closed,
    /// Tripped: degraded per [`DegradedMode`] until the cooldown elapses.
    Open,
    /// Cooldown elapsed: admitting probe work; the next outcome decides.
    HalfOpen,
}

/// Admission-time verdict from [`CircuitBreaker::admit`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BreakerVerdict {
    /// Admit and serve normally.
    Admit,
    /// Admit, but run without compute-side validation
    /// ([`DegradedMode::ValidationOff`]).
    AdmitDegraded,
    /// Reject; retry after roughly this long.
    Reject(Duration),
}

/// Crash/SDC-escalation circuit breaker (see module docs).
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    probes_ok: u32,
    opened_at: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker with `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        assert!(cfg.failure_threshold >= 1, "threshold must be positive");
        assert!(cfg.half_open_probes >= 1, "need at least one probe");
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            probes_ok: 0,
            opened_at: None,
        }
    }

    /// Current state, advancing Open → HalfOpen if the cooldown elapsed.
    pub fn state(&mut self, now: Instant) -> BreakerState {
        self.poll(now);
        self.state
    }

    /// Admission-time decision for one new job.
    pub fn admit(&mut self, now: Instant) -> BreakerVerdict {
        self.poll(now);
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => BreakerVerdict::Admit,
            BreakerState::Open => match self.cfg.degraded {
                DegradedMode::ValidationOff => BreakerVerdict::AdmitDegraded,
                DegradedMode::RejectNew => {
                    let since = self
                        .opened_at
                        .map(|at| now.saturating_duration_since(at))
                        .unwrap_or_default();
                    BreakerVerdict::Reject(self.cfg.cooldown.saturating_sub(since))
                }
            },
        }
    }

    /// True when batches should run with validation off
    /// ([`DegradedMode::ValidationOff`] while open). Half-open batches run
    /// with validation *on* — they are the probes.
    pub fn batch_validation_off(&mut self, now: Instant) -> bool {
        self.poll(now);
        self.state == BreakerState::Open && self.cfg.degraded == DegradedMode::ValidationOff
    }

    /// Records a successfully served job.
    pub fn on_success(&mut self, now: Instant) {
        self.poll(now);
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.probes_ok += 1;
                if self.probes_ok >= self.cfg.half_open_probes {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.probes_ok = 0;
                    self.opened_at = None;
                }
            }
            // Stale success landing while open (e.g. a validation-off
            // batch in degraded service): no transition.
            BreakerState::Open => {}
        }
    }

    /// Records an escalation: a rank death aborting a batch, or a job
    /// failing on silent data corruption.
    pub fn on_failure(&mut self, now: Instant) {
        self.poll(now);
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.failure_threshold {
                    self.trip(now);
                }
            }
            // A failed probe re-opens for a full cooldown.
            BreakerState::HalfOpen => self.trip(now),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: Instant) {
        self.state = BreakerState::Open;
        self.opened_at = Some(now);
        self.probes_ok = 0;
    }

    fn poll(&mut self, now: Instant) {
        if self.state == BreakerState::Open {
            if let Some(at) = self.opened_at {
                if now.saturating_duration_since(at) >= self.cfg.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probes_ok = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(100),
            half_open_probes: 2,
            degraded: DegradedMode::RejectNew,
        }
    }

    #[test]
    fn trips_after_threshold_and_recloses_after_probes() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        assert_eq!(b.state(t0), BreakerState::Closed);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed);
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Open);
        assert!(matches!(b.admit(t0), BreakerVerdict::Reject(_)));

        // Cooldown elapses: half-open, probes admitted.
        let t1 = t0 + Duration::from_millis(150);
        assert_eq!(b.admit(t1), BreakerVerdict::Admit);
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        b.on_success(t1);
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        b.on_success(t1);
        assert_eq!(b.state(t1), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens_for_a_full_cooldown() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(t0);
        b.on_failure(t0);
        let t1 = t0 + Duration::from_millis(120);
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        b.on_failure(t1);
        assert_eq!(b.state(t1), BreakerState::Open);
        // Not half-open again until a fresh cooldown from t1.
        let t2 = t1 + Duration::from_millis(60);
        assert_eq!(b.state(t2), BreakerState::Open);
        let t3 = t1 + Duration::from_millis(120);
        assert_eq!(b.state(t3), BreakerState::HalfOpen);
    }

    #[test]
    fn validation_off_mode_degrades_instead_of_rejecting() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(BreakerConfig {
            degraded: DegradedMode::ValidationOff,
            ..cfg()
        });
        b.on_failure(t0);
        b.on_failure(t0);
        assert_eq!(b.admit(t0), BreakerVerdict::AdmitDegraded);
        assert!(b.batch_validation_off(t0));
        // Half-open probes run validated.
        let t1 = t0 + Duration::from_millis(150);
        assert!(!b.batch_validation_off(t1));
        assert_eq!(b.admit(t1), BreakerVerdict::Admit);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let t0 = Instant::now();
        let mut b = CircuitBreaker::new(cfg());
        b.on_failure(t0);
        b.on_success(t0);
        b.on_failure(t0);
        // 1 failure + reset + 1 failure: still closed under threshold 2.
        assert_eq!(b.state(t0), BreakerState::Closed);
    }
}
