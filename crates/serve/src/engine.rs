//! The serving engine: a persistent supervised cluster turned into a
//! multi-tenant transform service.
//!
//! # Architecture
//!
//! [`ServeEngine::start`] plans one [`SoiFft`] and launches a background
//! thread running [`Supervisor::run`]. Inside the supervised closure,
//! **rank 0 doubles as the dispatcher**: it pulls admitted jobs from the
//! per-tenant queues (round-robin fair share), sheds anything whose
//! deadline already expired, and publishes the batch to the other ranks
//! through a sequence-numbered batch board. Every rank then executes the
//! batch job by job against its pooled [`SoiWorkspace`].
//!
//! # The per-job decision protocol
//!
//! Distributed execution must never let ranks disagree about a job's
//! fate (one rank retrying while another moves on deadlocks the next
//! collective). After each attempt every rank `fetch_max`es its outcome
//! severity into the job slot, then crosses a [`Comm::try_barrier`]
//! **twice**:
//!
//! 1. the first barrier fences the merge — after it, the maximum
//!    severity is frozen and every rank reads the same value, so all
//!    ranks compute the same decision (done / retry) from pure shared
//!    state;
//! 2. the second barrier fences the decision — only after it does rank 0
//!    finalize the slot (publish the result, wake the client), which is
//!    what makes the slot recyclable. No rank can observe a recycled
//!    slot's fresh lease mid-protocol.
//!
//! Retries re-merge into an attempt-parity-indexed severity cell, with
//! rank 0 pre-clearing the *other* cell between the two barriers, so the
//! retry loop costs no extra rendezvous. A **failed** barrier means a
//! rank died: survivors note the epoch abort (once, via a sequence-keyed
//! latch) and return, letting the supervisor respawn the epoch. In-flight
//! jobs of the aborted batch are finalized as [`JobError::RankFailure`]
//! by the next epoch's recovery scan (after every old rank thread has
//! exited — finalizing earlier would race a straggling survivor against
//! the slot's next lease); queued jobs simply survive in the queues.
//!
//! # Overload behaviour
//!
//! Admission is bounded (per-tenant queues + token buckets + deadline
//! feasibility, see [`Admission`]); expired queued jobs are shed before
//! execution; in-flight jobs past deadline are cancelled cooperatively at
//! collective boundaries via [`CancelGate`]; a completed-but-late job is
//! *discarded*, never delivered as a success. Repeated crash/SDC
//! escalations trip the [`CircuitBreaker`] into its configured
//! [`DegradedMode`]. The result: goodput plateaus at saturation instead
//! of collapsing, and every unserved job gets a typed answer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use soifft_cluster::{
    ClusterConfig, Comm, CommError, CommStats, ExchangePolicy, HealthMonitor, RankOutcome,
    RestartPolicy, Supervisor, ValidationPolicy,
};
use soifft_core::pipeline::phases;
use soifft_core::{SoiError, SoiFft, SoiParams, SoiWorkspace};
use soifft_num::c64;

use crate::admission::{Admission, RateLimit};
use crate::breaker::{BreakerConfig, BreakerState, BreakerVerdict, CircuitBreaker};
use crate::job::{
    classify, FailDetail, JobError, JobSlot, Rejected, ShedPoint, Stage, NO_DEADLINE,
    SEV_CANCELLED, SEV_OK, SEV_TRANSIENT,
};

/// Jittered exponential backoff for transient-fault retries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryConfig {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_backoff · 2^k`, jittered.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 2,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(10),
        }
    }
}

/// Serving-layer configuration (the transform itself comes from the
/// [`SoiParams`] passed to [`ServeEngine::start`]).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Number of tenants sharing the engine.
    pub tenants: usize,
    /// Admission-queue bound per tenant.
    pub queue_capacity: usize,
    /// Jobs coalesced per dispatched batch.
    pub max_batch: usize,
    /// Optional per-tenant token-bucket rate limit (each tenant gets its
    /// own bucket of this shape).
    pub rate_limit: Option<RateLimit>,
    /// Transient-fault retry budget and backoff.
    pub retry: RetryConfig,
    /// Crash/SDC circuit breaker.
    pub breaker: BreakerConfig,
    /// Per-collective deadline/round budget for the resilient exchanges.
    pub exchange: ExchangePolicy,
    /// Compute-side validation for normal (non-degraded) service.
    pub validation: ValidationPolicy,
    /// Supervisor restart budget for rank deaths.
    pub restart: RestartPolicy,
    /// Cluster runtime configuration (fault plans, tracing, pool caps).
    /// `join_deadline` is raised to at least one day: a serving epoch
    /// legitimately outlives batch-run defaults, and the engine's own
    /// protocol bounds every wait.
    pub cluster: ClusterConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            tenants: 1,
            queue_capacity: 16,
            max_batch: 4,
            rate_limit: None,
            retry: RetryConfig::default(),
            breaker: BreakerConfig::default(),
            exchange: ExchangePolicy::default(),
            validation: ValidationPolicy::Off,
            restart: RestartPolicy::default(),
            cluster: ClusterConfig::default(),
        }
    }
}

/// Monotone counters over the engine's lifetime (all `Relaxed`; exact
/// totals are settled by [`ServeEngine::shutdown`]).
#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed_queue: AtomicU64,
    shed_inflight: AtomicU64,
    failed: AtomicU64,
    rank_failures: AtomicU64,
    rejected: AtomicU64,
    retries: AtomicU64,
    epoch_aborts: AtomicU64,
}

/// A point-in-time snapshot of the engine's serving counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeStats {
    /// Jobs admitted past the front door.
    pub submitted: u64,
    /// Jobs completed within deadline.
    pub completed: u64,
    /// Jobs shed on deadline expiry while still queued.
    pub shed_queue: u64,
    /// Jobs shed on deadline expiry in flight (cancelled or late).
    pub shed_inflight: u64,
    /// Jobs failed permanently (corruption, retry exhaustion).
    pub failed: u64,
    /// Jobs failed because a rank died mid-flight.
    pub rank_failures: u64,
    /// Submissions rejected at the front door.
    pub rejected: u64,
    /// Transient-fault batch retries.
    pub retries: u64,
    /// Batches aborted by a rank death.
    pub epoch_aborts: u64,
}

impl ServeStats {
    /// Jobs that got a typed error instead of a result.
    pub fn unserved(&self) -> u64 {
        self.shed_queue + self.shed_inflight + self.failed + self.rank_failures
    }
}

/// What kind of work a published batch carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BatchKind {
    Work,
    Quit,
}

/// The dispatcher-to-ranks batch board: rank 0 writes under the lock and
/// bumps `seq`; other ranks wait for `seq` to advance and copy the job
/// list out. Quiescent between epochs (every writer is a rank thread).
#[derive(Debug)]
struct BatchBoard {
    seq: u64,
    kind: BatchKind,
    validation_off: bool,
    jobs: Vec<usize>,
}

/// Per-tenant admission queues plus the slot free list, under one lock
/// (lock order: this hub, then a slot's `state` — never the reverse).
#[derive(Debug)]
struct AdmissionHub {
    adm: Admission,
    queues: Vec<std::collections::VecDeque<usize>>,
    rr_cursor: usize,
    free: Vec<usize>,
    draining: bool,
}

/// State shared between the client-facing engine handle and the rank
/// threads.
pub(crate) struct EngineShared {
    n: usize,
    procs: usize,
    out_lens: Vec<usize>,
    out_offsets: Vec<usize>,
    max_batch: usize,
    origin: Instant,
    slots: Vec<JobSlot>,
    hub: Mutex<AdmissionHub>,
    /// Wakes the dispatcher on submit/drain.
    hub_cv: Condvar,
    board: Mutex<BatchBoard>,
    board_cv: Condvar,
    breaker: Mutex<CircuitBreaker>,
    /// EWMA of per-job execution time, nanoseconds (0 = no estimate yet).
    ewma_exec_ns: AtomicU64,
    /// Batch sequence that already charged an epoch abort (dedup latch).
    aborted_seq: AtomicU64,
    dead: AtomicBool,
    ctr: Counters,
}

impl EngineShared {
    fn now_ns(&self) -> u64 {
        Instant::now()
            .saturating_duration_since(self.origin)
            .as_nanos() as u64
    }
}

/// Immutable per-engine plans captured by the rank closure.
struct EnginePlans {
    fft_on: SoiFft,
    fft_off: SoiFft,
    exchange: ExchangePolicy,
    retry: RetryConfig,
    per_rank: usize,
}

/// What `run_job` tells the rank loop to do next.
enum JobFlow {
    Continue,
    EpochAbort,
}

/// FNV-1a mix for deterministic, cross-rank-identical retry jitter.
fn jitter_unit(seq: u64, slot: usize, attempt: u32) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [seq, slot as u64, u64::from(attempt)] {
        for b in word.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn backoff(retry: &RetryConfig, seq: u64, slot: usize, attempt: u32) -> Duration {
    let exp = retry
        .base_backoff
        .saturating_mul(1u32 << attempt.min(16))
        .min(retry.max_backoff);
    // Jitter in [0.5, 1.0] — deterministic per (batch, job, attempt), so
    // every rank sleeps the same duration and re-enters together.
    exp.mul_f64(0.5 + 0.5 * jitter_unit(seq, slot, attempt))
}

/// Finalizes a slot exactly once: publishes `result`, wakes the client,
/// recycles immediately if the ticket was already abandoned. Returns
/// whether this call won the finalize race.
fn finalize_slot(shared: &EngineShared, idx: usize, result: Result<(), JobError>) -> bool {
    let slot = &shared.slots[idx];
    if slot
        .finalized
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_err()
    {
        return false;
    }
    match &result {
        Ok(()) => shared.ctr.completed.fetch_add(1, Ordering::Relaxed),
        Err(JobError::DeadlineExpired {
            shed_at: ShedPoint::Queue,
        }) => shared.ctr.shed_queue.fetch_add(1, Ordering::Relaxed),
        Err(JobError::DeadlineExpired {
            shed_at: ShedPoint::InFlight,
        }) => shared.ctr.shed_inflight.fetch_add(1, Ordering::Relaxed),
        Err(JobError::RankFailure) => shared.ctr.rank_failures.fetch_add(1, Ordering::Relaxed),
        Err(_) => shared.ctr.failed.fetch_add(1, Ordering::Relaxed),
    };
    let abandoned = {
        let mut st = slot.state.lock();
        st.result = Some(result);
        st.stage = Stage::Done;
        slot.done_cv.notify_all();
        st.abandoned
    };
    if abandoned {
        recycle_slot(shared, idx);
    }
    true
}

/// Returns a finished (or abandoned-and-finalized) slot to the free pool.
fn recycle_slot(shared: &EngineShared, idx: usize) {
    {
        let mut st = shared.slots[idx].state.lock();
        st.stage = Stage::Free;
        st.result = None;
        st.abandoned = false;
    }
    shared.hub.lock().free.push(idx);
}

/// The supervised per-rank closure body.
fn rank_loop(shared: &EngineShared, plans: &EnginePlans, comm: &mut Comm) {
    let rank = comm.rank();
    let mut ws = plans.fft_on.make_workspace();
    let mut local_jobs: Vec<usize> = Vec::with_capacity(shared.max_batch);

    // Snapshot the batch sequence BEFORE the entry barrier: the board is
    // quiescent between epochs, and the barrier orders every snapshot
    // before the dispatcher's first publication — no rank can miss a
    // batch (a missed batch would wedge the per-job barriers).
    let mut last_seq = shared.board.lock().seq;
    if comm.try_barrier().is_err() {
        return;
    }
    if rank == 0 {
        recover_stale_batch(shared, comm);
    }

    loop {
        let (kind, validation_off) = if rank == 0 {
            dispatch(shared, comm, &mut local_jobs, &mut last_seq)
        } else {
            await_batch(shared, &mut local_jobs, &mut last_seq)
        };
        if kind == BatchKind::Quit {
            return;
        }
        let fft = if validation_off {
            &plans.fft_off
        } else {
            &plans.fft_on
        };
        comm.stats_mut().span_open("serve-batch");
        for &idx in &local_jobs {
            match run_job(shared, plans, fft, comm, &mut ws, idx, last_seq, rank) {
                JobFlow::Continue => {}
                JobFlow::EpochAbort => {
                    comm.stats_mut().span_close("serve-batch");
                    note_epoch_abort(shared, last_seq);
                    return;
                }
            }
        }
        comm.stats_mut().span_close("serve-batch");
    }
}

/// Charges one epoch abort per batch sequence (the first survivor to get
/// here wins) and feeds the circuit breaker.
fn note_epoch_abort(shared: &EngineShared, seq: u64) {
    if shared.aborted_seq.swap(seq, Ordering::AcqRel) != seq {
        shared.ctr.epoch_aborts.fetch_add(1, Ordering::Relaxed);
        shared.breaker.lock().on_failure(Instant::now());
    }
}

/// New-epoch recovery (rank 0, after the entry barrier): every thread of
/// the previous epoch has exited, so in-flight jobs of an aborted batch
/// can now be failed without racing a straggler against the slot's next
/// lease.
fn recover_stale_batch(shared: &EngineShared, comm: &mut Comm) {
    let stale: Vec<usize> = {
        let board = shared.board.lock();
        if board.kind != BatchKind::Work {
            return;
        }
        board.jobs.clone()
    };
    for idx in stale {
        if finalize_slot(shared, idx, Err(JobError::RankFailure)) {
            comm.stats_mut().note_job_shed();
        }
    }
}

/// Rank 0: build and publish the next batch (or `Quit` once draining and
/// empty). Sheds expired queued jobs while scanning.
fn dispatch(
    shared: &EngineShared,
    comm: &mut Comm,
    local_jobs: &mut Vec<usize>,
    last_seq: &mut u64,
) -> (BatchKind, bool) {
    loop {
        let now_ns = shared.now_ns();
        let mut hub = shared.hub.lock();
        // Shed queued jobs whose deadline already expired: they get their
        // typed answer *now*, without costing the ranks anything.
        for tenant in 0..hub.queues.len() {
            let mut kept = 0;
            while kept < hub.queues[tenant].len() {
                let idx = hub.queues[tenant][kept];
                let dl = shared.slots[idx].deadline_ns.load(Ordering::Acquire);
                if dl != NO_DEADLINE && now_ns >= dl {
                    hub.queues[tenant].remove(kept);
                    hub.adm.release(tenant);
                    finalize_slot(
                        shared,
                        idx,
                        Err(JobError::DeadlineExpired {
                            shed_at: ShedPoint::Queue,
                        }),
                    );
                    comm.stats_mut().note_job_shed();
                } else {
                    kept += 1;
                }
            }
        }
        // Fair-share collection: rotate the cursor, take at most one job
        // per tenant per rotation until the batch fills or queues empty.
        local_jobs.clear();
        let tenants = hub.queues.len();
        let mut empty_rotations = 0;
        while local_jobs.len() < shared.max_batch && empty_rotations < tenants {
            let t = hub.rr_cursor % tenants;
            hub.rr_cursor = (hub.rr_cursor + 1) % tenants;
            if let Some(idx) = hub.queues[t].pop_front() {
                hub.adm.release(t);
                let waited_ns =
                    now_ns.saturating_sub(shared.slots[idx].enqueued_ns.load(Ordering::Acquire));
                comm.stats_mut().add_queue_wait(waited_ns as f64 * 1e-9);
                shared.slots[idx].state.lock().stage = Stage::InFlight;
                local_jobs.push(idx);
                empty_rotations = 0;
            } else {
                empty_rotations += 1;
            }
        }
        if !local_jobs.is_empty() {
            drop(hub);
            let validation_off = shared.breaker.lock().batch_validation_off(Instant::now());
            publish(
                shared,
                BatchKind::Work,
                local_jobs,
                validation_off,
                last_seq,
            );
            return (BatchKind::Work, validation_off);
        }
        if hub.draining {
            drop(hub);
            local_jobs.clear();
            publish(shared, BatchKind::Quit, local_jobs, false, last_seq);
            return (BatchKind::Quit, false);
        }
        // Idle: sleep until a submit/drain signal, waking periodically to
        // shed newly expired queued jobs.
        shared.hub_cv.wait_for(&mut hub, Duration::from_millis(1));
    }
}

fn publish(
    shared: &EngineShared,
    kind: BatchKind,
    jobs: &[usize],
    validation_off: bool,
    last_seq: &mut u64,
) {
    let mut board = shared.board.lock();
    board.seq += 1;
    board.kind = kind;
    board.validation_off = validation_off;
    board.jobs.clear();
    board.jobs.extend_from_slice(jobs);
    *last_seq = board.seq;
    shared.board_cv.notify_all();
}

/// Non-dispatcher ranks: wait for the next published batch.
fn await_batch(
    shared: &EngineShared,
    local_jobs: &mut Vec<usize>,
    last_seq: &mut u64,
) -> (BatchKind, bool) {
    let mut board = shared.board.lock();
    while board.seq == *last_seq {
        shared.board_cv.wait(&mut board);
    }
    *last_seq = board.seq;
    local_jobs.clear();
    local_jobs.extend_from_slice(&board.jobs);
    (board.kind, board.validation_off)
}

/// Pure decision from the frozen post-barrier severity (identical on
/// every rank).
enum Decision {
    Finalize(Result<(), JobError>),
    Retry,
}

fn decide(slot: &JobSlot, parity: usize, attempt: u32, max_retries: u32) -> Decision {
    let sev = slot.severity[parity].load(Ordering::Acquire);
    match sev {
        SEV_OK => Decision::Finalize(Ok(())),
        SEV_CANCELLED => Decision::Finalize(Err(JobError::DeadlineExpired {
            shed_at: ShedPoint::InFlight,
        })),
        SEV_TRANSIENT if attempt < max_retries => Decision::Retry,
        _ => {
            let detail = slot.detail[parity].lock().clone();
            let (phase, error) = match detail {
                Some(FailDetail { phase, error, .. }) => (phase, error),
                // A rank merged a severity but its detail write lost the
                // lattice race to an equal class; report generically.
                None => (phases::ALL_TO_ALL, CommError::Timeout),
            };
            let err = if sev == SEV_TRANSIENT {
                JobError::RetriesExhausted {
                    attempts: attempt + 1,
                    last: error,
                }
            } else {
                // SEV_PERMANENT, or a typed fatal error whose barrier
                // still completed (no actual death): the job fails
                // permanently, the batch continues.
                JobError::Failed { phase, error }
            };
            Decision::Finalize(Err(err))
        }
    }
}

/// Executes one job collectively: attempt → severity merge → double
/// barrier → shared decision → finalize (rank 0) or deterministic
/// jittered retry.
#[allow(clippy::too_many_arguments)]
fn run_job(
    shared: &EngineShared,
    plans: &EnginePlans,
    fft: &SoiFft,
    comm: &mut Comm,
    ws: &mut SoiWorkspace,
    idx: usize,
    seq: u64,
    rank: usize,
) -> JobFlow {
    let slot = &shared.slots[idx];
    let mut attempt: u32 = 0;
    loop {
        let parity = (attempt % 2) as usize;
        // Cooperative deadline shed: any rank noticing expiry cancels the
        // gate; the first rank to reach a collective boundary fixes one
        // consistent shed-or-proceed decision for everyone.
        let dl = slot.deadline_ns.load(Ordering::Acquire);
        if dl != NO_DEADLINE && shared.now_ns() >= dl {
            slot.gate.cancel();
        }
        let started = Instant::now();
        let result = {
            let input = slot.input.read();
            let lo = rank * plans.per_rank;
            let mut part = slot.parts[rank].lock();
            part.resize(shared.out_lens[rank], c64::ZERO);
            fft.try_forward_into_cancellable(
                comm,
                &input[lo..lo + plans.per_rank],
                &plans.exchange,
                &slot.gate,
                ws,
                &mut part,
            )
        };
        if let Err(run_err) = result {
            let sev = classify(&run_err.error);
            slot.severity[parity].fetch_max(sev, Ordering::AcqRel);
            let mut detail = slot.detail[parity].lock();
            let replace = detail.as_ref().is_none_or(|d| sev > d.sev);
            if replace {
                *detail = Some(FailDetail {
                    sev,
                    phase: run_err.phase,
                    error: run_err.error,
                });
            }
        }
        // Barrier 1: fence the merge. Failure = a peer died.
        if comm.try_barrier().is_err() {
            return JobFlow::EpochAbort;
        }
        let decision = decide(slot, parity, attempt, plans.retry.max_retries);
        if rank == 0 {
            if let Decision::Retry = decision {
                // Pre-clear the other parity cell for the next attempt —
                // unused by anyone until barrier 2 releases the ranks.
                let next = (parity + 1) % 2;
                slot.severity[next].store(SEV_OK, Ordering::Release);
                *slot.detail[next].lock() = None;
                slot.gate.reset();
                comm.stats_mut().note_serve_retry();
                shared.ctr.retries.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Barrier 2: fence the decision (and rank 0's parity reset).
        // Only after this may the slot be finalized and thus recycled.
        if comm.try_barrier().is_err() {
            return JobFlow::EpochAbort;
        }
        match decision {
            Decision::Retry => {
                std::thread::sleep(backoff(&plans.retry, seq, idx, attempt));
                attempt += 1;
            }
            Decision::Finalize(result) => {
                if rank == 0 {
                    let now = Instant::now();
                    let result = match result {
                        // A job that completed *after* its deadline is
                        // discarded, never delivered: late success is a
                        // correctness bug in a deadline-driven service.
                        Ok(()) => {
                            let dl = slot.deadline_ns.load(Ordering::Acquire);
                            if dl != NO_DEADLINE && shared.now_ns() >= dl {
                                Err(JobError::DeadlineExpired {
                                    shed_at: ShedPoint::InFlight,
                                })
                            } else {
                                Ok(())
                            }
                        }
                        other => other,
                    };
                    match &result {
                        Ok(()) => {
                            let exec_ns = now.saturating_duration_since(started).as_nanos() as u64;
                            let old = shared.ewma_exec_ns.load(Ordering::Relaxed);
                            let new = if old == 0 {
                                exec_ns
                            } else {
                                (old / 10) * 7 + (exec_ns / 10) * 3
                            };
                            shared.ewma_exec_ns.store(new.max(1), Ordering::Relaxed);
                            shared.breaker.lock().on_success(now);
                        }
                        Err(JobError::DeadlineExpired { .. }) => {
                            comm.stats_mut().note_job_shed();
                        }
                        Err(JobError::Failed {
                            error: CommError::SilentCorruption { .. },
                            ..
                        }) => {
                            shared.breaker.lock().on_failure(now);
                        }
                        Err(_) => {}
                    }
                    finalize_slot(shared, idx, result);
                }
                return JobFlow::Continue;
            }
        }
    }
}

/// Fails every slot that still holds a lease (engine teardown: drain
/// completed with abandoned stragglers, or the restart budget ran out).
fn fail_leftovers(shared: &EngineShared) {
    for idx in 0..shared.slots.len() {
        let stage = shared.slots[idx].state.lock().stage;
        let err = match stage {
            Stage::Free | Stage::Done => continue,
            Stage::InFlight => JobError::RankFailure,
            Stage::Queued => JobError::EngineDown,
        };
        finalize_slot(shared, idx, Err(err));
    }
    let mut hub = shared.hub.lock();
    for q in &mut hub.queues {
        q.clear();
    }
}

/// Exit summary carried back from the engine thread.
struct EngineExit {
    restarts: u32,
    epochs: u64,
    clean: bool,
    rank_stats: Vec<Option<CommStats>>,
}

/// Final report from [`ServeEngine::shutdown`].
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServeReport {
    /// Serving counters at shutdown.
    pub stats: ServeStats,
    /// Supervisor restarts consumed over the engine's lifetime.
    pub restarts: u32,
    /// Epochs launched (`restarts + 1`).
    pub epochs: u64,
    /// True when the final epoch drained cleanly on every rank.
    pub clean: bool,
    /// Each rank's communication ledger from the final epoch (`None` for
    /// ranks that did not exit normally).
    pub rank_stats: Vec<Option<CommStats>>,
    /// True when the engine's plan was constructed from tuned wisdom
    /// (the auto-tuner had installed execution knobs for this shape
    /// before [`ServeEngine::start`] ran).
    pub wisdom_backed: bool,
}

/// Handle to a completed or in-flight submission. Obtain the result with
/// [`JobTicket::wait`] / [`JobTicket::wait_into`]; dropping the ticket
/// abandons the job (it still runs, or is shed, but its slot recycles
/// automatically).
///
/// While waiting, the ticket doubles as the job's deadline watchdog: if
/// the deadline passes mid-flight, the waiter cancels the job's
/// [`CancelGate`] so the ranks shed it at the next collective boundary.
#[must_use = "a ticket is the only way to observe the job's result"]
pub struct JobTicket {
    shared: Arc<EngineShared>,
    idx: usize,
    waited: bool,
}

impl std::fmt::Debug for JobTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobTicket")
            .field("slot", &self.idx)
            .finish()
    }
}

impl JobTicket {
    /// Blocks until the job resolves; returns the full transform output.
    pub fn wait(self) -> Result<Vec<c64>, JobError> {
        let mut out = Vec::new();
        self.wait_into(&mut out)?;
        Ok(out)
    }

    /// Blocks until the job resolves; writes the full transform output
    /// into `out` (resized to `N`; a warm `out` of capacity `N` makes
    /// the collect path allocation-free).
    pub fn wait_into(mut self, out: &mut Vec<c64>) -> Result<(), JobError> {
        self.waited = true;
        let shared = Arc::clone(&self.shared);
        let idx = self.idx;
        wait_and_recycle(&shared, idx, out)
    }
}

impl Drop for JobTicket {
    fn drop(&mut self) {
        if self.waited {
            return;
        }
        let done = {
            let mut st = self.shared.slots[self.idx].state.lock();
            match st.stage {
                Stage::Done => true,
                _ => {
                    st.abandoned = true;
                    false
                }
            }
        };
        if done {
            recycle_slot(&self.shared, self.idx);
        }
    }
}

fn wait_and_recycle(shared: &EngineShared, idx: usize, out: &mut Vec<c64>) -> Result<(), JobError> {
    let slot = &shared.slots[idx];
    let deadline_ns = slot.deadline_ns.load(Ordering::Acquire);
    let mut cancelled = false;
    let mut st = slot.state.lock();
    while st.stage != Stage::Done {
        let now_ns = shared.now_ns();
        if deadline_ns != NO_DEADLINE && now_ns >= deadline_ns && !cancelled {
            // Deadline watchdog: shed the job at its next collective
            // boundary instead of letting it run to a late completion.
            slot.gate.cancel();
            cancelled = true;
        }
        let nap = if deadline_ns == NO_DEADLINE || cancelled {
            Duration::from_millis(50)
        } else {
            Duration::from_nanos(deadline_ns - now_ns).min(Duration::from_millis(50))
        };
        slot.done_cv.wait_for(&mut st, nap);
    }
    let result = st.result.clone().unwrap_or(Err(JobError::EngineDown));
    if result.is_ok() {
        out.resize(shared.n, c64::ZERO);
        for r in 0..shared.procs {
            let part = slot.parts[r].lock();
            let off = shared.out_offsets[r];
            out[off..off + shared.out_lens[r]].copy_from_slice(&part);
        }
    }
    st.stage = Stage::Free;
    st.result = None;
    st.abandoned = false;
    drop(st);
    shared.hub.lock().free.push(idx);
    result
}

/// The overload-safe serving front end (see module docs).
pub struct ServeEngine {
    shared: Arc<EngineShared>,
    monitor: Arc<HealthMonitor>,
    handle: Option<JoinHandle<EngineExit>>,
    wisdom_backed: bool,
}

impl ServeEngine {
    /// Plans the transform and launches the supervised serving cluster.
    pub fn start(params: SoiParams, config: ServeConfig) -> Result<ServeEngine, SoiError> {
        assert!(config.max_batch >= 1, "batch size must be positive");
        let fft_on = SoiFft::new(params)?.with_validation(config.validation);
        // `SoiFft::new` consulted the wisdom registry for this shape;
        // record whether tuned knobs were available so operators can
        // tell a tuned engine from one running on static defaults.
        let wisdom_backed = soifft_core::wisdom::contains(&soifft_core::WisdomKey {
            n: params.n,
            procs: params.procs,
            precision: fft_on.precision(),
        });
        let fft_off = fft_on.clone().with_validation(ValidationPolicy::Off);
        let procs = params.procs;
        let out_lens: Vec<usize> = (0..procs).map(|r| fft_on.output_len(r)).collect();
        let mut out_offsets = Vec::with_capacity(procs);
        let mut acc = 0;
        for &len in &out_lens {
            out_offsets.push(acc);
            acc += len;
        }
        let now = Instant::now();
        // Slot pool: every queueable job + a batch in flight + a batch of
        // completed-but-uncollected results. Lazy collectors exhaust the
        // pool and see QueueFull — backpressure, not memory growth.
        let slot_count = config.tenants * config.queue_capacity + 2 * config.max_batch;
        let shared = Arc::new(EngineShared {
            n: params.n,
            procs,
            out_lens: out_lens.clone(),
            out_offsets,
            max_batch: config.max_batch,
            origin: now,
            slots: (0..slot_count)
                .map(|_| JobSlot::new(params.n, &out_lens))
                .collect(),
            hub: Mutex::new(AdmissionHub {
                adm: Admission::new(
                    config.tenants,
                    config.queue_capacity,
                    config.rate_limit,
                    now,
                ),
                queues: (0..config.tenants)
                    .map(|_| std::collections::VecDeque::with_capacity(config.queue_capacity))
                    .collect(),
                rr_cursor: 0,
                free: (0..slot_count).rev().collect(),
                draining: false,
            }),
            hub_cv: Condvar::new(),
            board: Mutex::new(BatchBoard {
                seq: 0,
                kind: BatchKind::Quit,
                validation_off: false,
                jobs: Vec::with_capacity(config.max_batch),
            }),
            board_cv: Condvar::new(),
            breaker: Mutex::new(CircuitBreaker::new(config.breaker)),
            ewma_exec_ns: AtomicU64::new(0),
            aborted_seq: AtomicU64::new(u64::MAX),
            dead: AtomicBool::new(false),
            ctr: Counters::default(),
        });
        // Initial board kind is Quit but seq 0 is never "new", so no rank
        // acts on it; make that explicit for the first recovery scan.
        shared.board.lock().kind = BatchKind::Quit;

        let mut cluster = config.cluster.clone();
        // A serving epoch idles at condvars between batches and may
        // legitimately outlive batch-run join deadlines; every wait in
        // the engine protocol is otherwise bounded (exchange deadlines,
        // cancellable barriers), so a huge deadline costs nothing.
        cluster.join_deadline = cluster.join_deadline.max(Duration::from_secs(86_400));
        let supervisor = Supervisor::new(cluster, config.restart);
        let monitor = supervisor.monitor();
        let plans = Arc::new(EnginePlans {
            fft_on,
            fft_off,
            exchange: config.exchange,
            retry: config.retry,
            per_rank: params.per_rank(),
        });
        let loop_shared = Arc::clone(&shared);
        let exit_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("soifft-serve".into())
            .spawn(move || {
                let run = supervisor.run(procs, |comm, _ctx| {
                    rank_loop(&loop_shared, &plans, comm);
                    comm.stats().clone()
                });
                exit_shared.dead.store(true, Ordering::Release);
                // Every rank thread has exited: leftover leases can be
                // failed without racing a straggler.
                fail_leftovers(&exit_shared);
                exit_shared.hub_cv.notify_all();
                EngineExit {
                    restarts: run.restarts,
                    epochs: run.epochs,
                    clean: run.all_ok(),
                    rank_stats: run
                        .outcomes
                        .into_iter()
                        .map(|o| match o {
                            RankOutcome::Ok(stats) => Some(stats),
                            _ => None,
                        })
                        .collect(),
                }
            })
            .expect("spawn serve engine thread");
        Ok(ServeEngine {
            shared,
            monitor,
            handle: Some(handle),
            wisdom_backed,
        })
    }

    /// True when this engine's plan came from tuned wisdom rather than
    /// the static defaults (see [`soifft_core::wisdom`]).
    pub fn wisdom_backed(&self) -> bool {
        self.wisdom_backed
    }

    /// The planned transform length `N` (required input length).
    pub fn transform_len(&self) -> usize {
        self.shared.n
    }

    /// Submits one transform for `tenant`, with an optional completion
    /// deadline relative to now. On admission the input is copied into a
    /// pooled slot and a [`JobTicket`] is returned; on rejection, nothing
    /// was queued and the typed [`Rejected`] says why and (where
    /// meaningful) how long to back off.
    pub fn submit(
        &self,
        tenant: usize,
        input: &[c64],
        deadline: Option<Duration>,
    ) -> Result<JobTicket, Rejected> {
        let shared = &self.shared;
        let reject = |r: Rejected| {
            shared.ctr.rejected.fetch_add(1, Ordering::Relaxed);
            Err(r)
        };
        if shared.dead.load(Ordering::Acquire) {
            return reject(Rejected::Unavailable { retry_after: None });
        }
        if input.len() != shared.n {
            return reject(Rejected::InvalidInput {
                expected: shared.n,
                got: input.len(),
            });
        }
        let now = Instant::now();
        match shared.breaker.lock().admit(now) {
            BreakerVerdict::Admit | BreakerVerdict::AdmitDegraded => {}
            BreakerVerdict::Reject(retry_after) => {
                return reject(Rejected::Unavailable {
                    retry_after: Some(retry_after),
                });
            }
        }
        let mut hub = shared.hub.lock();
        if hub.draining {
            return reject(Rejected::Draining);
        }
        // Deadline feasibility against the live backlog estimate, before
        // a token is consumed.
        if let Some(d) = deadline {
            let ewma = shared.ewma_exec_ns.load(Ordering::Relaxed);
            if ewma > 0 {
                let batches_ahead = 1 + hub.adm.total_depth() as u64 / shared.max_batch as u64;
                let estimated = Duration::from_nanos(ewma.saturating_mul(batches_ahead));
                if d < estimated {
                    return reject(Rejected::DeadlineInfeasible {
                        deadline: d,
                        estimated,
                    });
                }
            }
        }
        if let Err(r) = hub.adm.try_admit(tenant, now) {
            return reject(r);
        }
        let Some(idx) = hub.free.pop() else {
            // Pool exhausted by uncollected results: backpressure.
            let capacity = hub.adm.queue_capacity();
            hub.adm.release(tenant);
            return reject(Rejected::QueueFull { tenant, capacity });
        };
        {
            let slot = &shared.slots[idx];
            let mut st = slot.state.lock();
            st.stage = Stage::Queued;
            st.result = None;
            st.abandoned = false;
            slot.finalized.store(false, Ordering::Release);
            slot.severity[0].store(SEV_OK, Ordering::Release);
            slot.severity[1].store(SEV_OK, Ordering::Release);
            *slot.detail[0].lock() = None;
            *slot.detail[1].lock() = None;
            slot.gate.reset();
            slot.tenant.store(tenant, Ordering::Release);
            let now_ns = shared.now_ns();
            slot.enqueued_ns.store(now_ns, Ordering::Release);
            slot.deadline_ns.store(
                deadline.map_or(NO_DEADLINE, |d| now_ns.saturating_add(d.as_nanos() as u64)),
                Ordering::Release,
            );
            let mut inp = slot.input.write();
            inp.clear();
            inp.extend_from_slice(input);
        }
        hub.queues[tenant].push_back(idx);
        drop(hub);
        shared.ctr.submitted.fetch_add(1, Ordering::Relaxed);
        shared.hub_cv.notify_all();
        Ok(JobTicket {
            shared: Arc::clone(shared),
            idx,
            waited: false,
        })
    }

    /// Stops admitting work; queued and in-flight jobs still complete.
    pub fn drain(&self) {
        self.shared.hub.lock().draining = true;
        self.shared.hub_cv.notify_all();
    }

    /// Drains, waits for the cluster to quit, and reports.
    pub fn shutdown(mut self) -> ServeReport {
        self.drain();
        let exit = self
            .handle
            .take()
            .map(|h| h.join().expect("serve engine thread panicked"));
        let stats = self.stats();
        match exit {
            Some(e) => ServeReport {
                stats,
                restarts: e.restarts,
                epochs: e.epochs,
                clean: e.clean,
                rank_stats: e.rank_stats,
                wisdom_backed: self.wisdom_backed,
            },
            None => ServeReport {
                stats,
                restarts: 0,
                epochs: 0,
                clean: false,
                rank_stats: Vec::new(),
                wisdom_backed: self.wisdom_backed,
            },
        }
    }

    /// Live serving counters.
    pub fn stats(&self) -> ServeStats {
        let c = &self.shared.ctr;
        ServeStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed_queue: c.shed_queue.load(Ordering::Relaxed),
            shed_inflight: c.shed_inflight.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            rank_failures: c.rank_failures.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            epoch_aborts: c.epoch_aborts.load(Ordering::Relaxed),
        }
    }

    /// The supervisor's live health counters (epochs, deaths, restarts).
    pub fn health(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.monitor)
    }

    /// Current breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.shared.breaker.lock().state(Instant::now())
    }

    /// True once the cluster has exited (drained or budget-exhausted).
    pub fn is_down(&self) -> bool {
        self.shared.dead.load(Ordering::Acquire)
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.shared.hub.lock().draining = true;
            self.shared.hub_cv.notify_all();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{SEV_FATAL, SEV_PERMANENT};

    fn retry() -> RetryConfig {
        RetryConfig {
            max_retries: 2,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(10),
        }
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_bounded() {
        let r = retry();
        for attempt in 0..8 {
            let a = backoff(&r, 7, 3, attempt);
            let b = backoff(&r, 7, 3, attempt);
            // Same (batch, job, attempt) on every rank: identical sleeps,
            // so the ranks re-enter the retry together.
            assert_eq!(a, b);
            let exp = r
                .base_backoff
                .saturating_mul(1 << attempt.min(16))
                .min(r.max_backoff);
            assert!(a >= exp.mul_f64(0.5) && a <= exp);
        }
        // Different jobs jitter differently (with overwhelming probability
        // for any fixed pair; these constants are part of the test vector).
        assert_ne!(backoff(&r, 7, 3, 1), backoff(&r, 7, 4, 1));
    }

    fn slot_with_sev(sev: u8, error: CommError) -> JobSlot {
        let slot = JobSlot::new(8, &[4, 4]);
        slot.severity[0].store(sev, Ordering::Release);
        *slot.detail[0].lock() = Some(FailDetail {
            sev,
            phase: phases::GHOST,
            error,
        });
        slot
    }

    #[test]
    fn decide_covers_the_severity_lattice() {
        let slot = JobSlot::new(8, &[4, 4]);
        assert!(matches!(decide(&slot, 0, 0, 2), Decision::Finalize(Ok(()))));

        let slot = slot_with_sev(SEV_TRANSIENT, CommError::Timeout);
        assert!(matches!(decide(&slot, 0, 0, 2), Decision::Retry));
        assert!(matches!(decide(&slot, 0, 1, 2), Decision::Retry));
        // Retry budget exhausted: typed RetriesExhausted with the count.
        match decide(&slot, 0, 2, 2) {
            Decision::Finalize(Err(JobError::RetriesExhausted { attempts, last })) => {
                assert_eq!(attempts, 3);
                assert_eq!(last, CommError::Timeout);
            }
            _ => panic!("expected RetriesExhausted"),
        }

        let slot = slot_with_sev(
            SEV_PERMANENT,
            CommError::SilentCorruption {
                rank: 1,
                segment: None,
            },
        );
        match decide(&slot, 0, 0, 2) {
            Decision::Finalize(Err(JobError::Failed { phase, .. })) => {
                assert_eq!(phase, phases::GHOST)
            }
            _ => panic!("expected permanent failure"),
        }

        // Fatal severity whose barrier still completed: permanent failure,
        // not a retry.
        let slot = slot_with_sev(SEV_FATAL, CommError::Shutdown);
        assert!(matches!(
            decide(&slot, 0, 0, 2),
            Decision::Finalize(Err(JobError::Failed { .. }))
        ));

        // Cancellation wins over nothing-happened but loses to transient.
        let slot = JobSlot::new(8, &[4, 4]);
        slot.severity[0].store(SEV_CANCELLED, Ordering::Release);
        assert!(matches!(
            decide(&slot, 0, 0, 2),
            Decision::Finalize(Err(JobError::DeadlineExpired {
                shed_at: ShedPoint::InFlight
            }))
        ));
    }
}
