//! Admission control: per-tenant bounded queues and token-bucket rate
//! limits.
//!
//! [`Admission`] is deliberately a *pure* state machine over an explicit
//! clock — every mutation takes `now: Instant` — so the property tests can
//! drive it through arbitrary virtual arrival schedules without sleeping.
//! The serving engine composes it under its admission lock; nothing here
//! blocks or spawns.

use std::time::{Duration, Instant};

use crate::job::Rejected;

/// Per-tenant token-bucket rate limit.
///
/// A bucket holds at most `burst` tokens and refills continuously at
/// `rate_per_s`; each admitted job costs one token. A submit that finds
/// the bucket empty is rejected with
/// [`Rejected::RateLimited`] carrying the time until one token
/// accumulates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateLimit {
    /// Sustained admission rate, jobs per second.
    pub rate_per_s: f64,
    /// Burst capacity in jobs (the bucket depth).
    pub burst: f64,
}

/// A token bucket over an explicit clock.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    rate_per_s: f64,
    burst: f64,
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket for `limit`, with its refill clock starting at `now`.
    pub fn new(limit: RateLimit, now: Instant) -> Self {
        assert!(limit.rate_per_s > 0.0, "rate must be positive");
        assert!(limit.burst >= 1.0, "burst must admit at least one job");
        TokenBucket {
            rate_per_s: limit.rate_per_s,
            burst: limit.burst,
            tokens: limit.burst,
            last: now,
        }
    }

    /// Tokens currently available (after refilling up to `now`).
    pub fn available(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Takes one token, or reports how long until one accumulates.
    pub fn try_take(&mut self, now: Instant) -> Result<(), Duration> {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64(
                (1.0 - self.tokens) / self.rate_per_s,
            ))
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_per_s).min(self.burst);
        self.last = now;
    }
}

#[derive(Clone, Debug)]
struct Tenant {
    depth: usize,
    bucket: Option<TokenBucket>,
}

/// Bounded, rate-limited admission ledger across tenants.
///
/// Tracks only *counts* (queue depth per tenant) — the engine owns the
/// actual job queues. The invariants the property suite pins:
///
/// * a tenant's depth never exceeds `queue_capacity`: the
///   `depth == capacity` submit is rejected with [`Rejected::QueueFull`]
///   *before* any token is consumed;
/// * accepted submits per tenant never outrun
///   `burst + rate_per_s · elapsed` under any arrival schedule.
#[derive(Clone, Debug)]
pub struct Admission {
    queue_capacity: usize,
    tenants: Vec<Tenant>,
}

impl Admission {
    /// A ledger for `tenants` tenants with per-tenant bound
    /// `queue_capacity` and an optional shared rate-limit shape (each
    /// tenant gets its *own* bucket of that shape).
    pub fn new(
        tenants: usize,
        queue_capacity: usize,
        limit: Option<RateLimit>,
        now: Instant,
    ) -> Self {
        assert!(tenants >= 1, "need at least one tenant");
        assert!(queue_capacity >= 1, "queue capacity must be positive");
        Admission {
            queue_capacity,
            tenants: (0..tenants)
                .map(|_| Tenant {
                    depth: 0,
                    bucket: limit.map(|l| TokenBucket::new(l, now)),
                })
                .collect(),
        }
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// The per-tenant queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// `tenant`'s admitted-but-not-dispatched count.
    pub fn queue_depth(&self, tenant: usize) -> usize {
        self.tenants[tenant].depth
    }

    /// Total queued jobs across tenants.
    pub fn total_depth(&self) -> usize {
        self.tenants.iter().map(|t| t.depth).sum()
    }

    /// Admits one job for `tenant` at `now`, or explains the rejection.
    ///
    /// Checks run cheapest-reversible first: the queue bound (consumes
    /// nothing), then the rate limit (consumes a token only when the job
    /// will actually be queued).
    pub fn try_admit(&mut self, tenant: usize, now: Instant) -> Result<(), Rejected> {
        let capacity = self.queue_capacity;
        let t = self
            .tenants
            .get_mut(tenant)
            .ok_or(Rejected::UnknownTenant { tenant })?;
        if t.depth >= capacity {
            return Err(Rejected::QueueFull { tenant, capacity });
        }
        if let Some(bucket) = &mut t.bucket {
            bucket
                .try_take(now)
                .map_err(|retry_after| Rejected::RateLimited {
                    tenant,
                    retry_after,
                })?;
        }
        t.depth += 1;
        Ok(())
    }

    /// Releases one queued job for `tenant` (dispatched or shed).
    pub fn release(&mut self, tenant: usize) {
        let t = &mut self.tenants[tenant];
        debug_assert!(t.depth > 0, "release without admit");
        t.depth = t.depth.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    #[test]
    fn queue_bound_is_enforced_before_tokens() {
        let now = t0();
        let mut adm = Admission::new(
            1,
            2,
            Some(RateLimit {
                rate_per_s: 1.0,
                burst: 10.0,
            }),
            now,
        );
        assert!(adm.try_admit(0, now).is_ok());
        assert!(adm.try_admit(0, now).is_ok());
        // Queue full: rejected without consuming a token.
        assert!(matches!(
            adm.try_admit(0, now),
            Err(Rejected::QueueFull { tenant: 0, .. })
        ));
        adm.release(0);
        // The queue-full rejection left the bucket untouched: 8 tokens
        // remain, so this admit succeeds.
        assert!(adm.try_admit(0, now).is_ok());
        assert_eq!(adm.queue_depth(0), 2);
    }

    #[test]
    fn rate_limit_rejects_with_retry_after() {
        let now = t0();
        let limit = RateLimit {
            rate_per_s: 10.0,
            burst: 1.0,
        };
        let mut adm = Admission::new(1, 100, Some(limit), now);
        assert!(adm.try_admit(0, now).is_ok());
        let err = adm.try_admit(0, now).unwrap_err();
        match err {
            Rejected::RateLimited { retry_after, .. } => {
                // One token at 10/s: ~100 ms away.
                assert!(retry_after <= Duration::from_millis(101));
                assert!(retry_after >= Duration::from_millis(90));
            }
            other => panic!("expected RateLimited, got {other:?}"),
        }
        // After 150 ms of virtual time the bucket has refilled.
        let later = now + Duration::from_millis(150);
        adm.release(0);
        assert!(adm.try_admit(0, later).is_ok());
    }

    #[test]
    fn tenants_are_isolated() {
        let now = t0();
        let mut adm = Admission::new(2, 1, None, now);
        assert!(adm.try_admit(0, now).is_ok());
        assert!(matches!(
            adm.try_admit(0, now),
            Err(Rejected::QueueFull { tenant: 0, .. })
        ));
        // Tenant 1's queue is independent.
        assert!(adm.try_admit(1, now).is_ok());
        assert!(matches!(
            adm.try_admit(7, now),
            Err(Rejected::UnknownTenant { tenant: 7 })
        ));
    }
}
