//! Overload-safe serving front end for the distributed SOI FFT.
//!
//! The lower layers of this workspace answer *"how do we run one
//! tera-scale transform fast and survive faults?"* (`soifft-core`,
//! `soifft-cluster`). This crate answers the operational question that
//! follows: *"how does a long-lived FFT service behave when offered more
//! work than it can do?"* The paper's throughput mode (§5.3) keeps the
//! pipeline busy with back-to-back transforms; a real deployment of that
//! mode needs a front door.
//!
//! [`ServeEngine`] is that front door. It owns a persistent supervised
//! cluster and exposes `submit(tenant, input, deadline) -> JobTicket`.
//! Under overload it degrades *predictably* instead of collapsing:
//!
//! * **Bounded admission** — per-tenant queues with a hard capacity and
//!   optional token-bucket rate limits ([`Admission`]); every refusal is
//!   a typed [`Rejected`] telling the caller why and when to retry.
//! * **Deadlines end-to-end** — infeasible deadlines are refused at
//!   submit; expired queued jobs are shed without touching the ranks;
//!   in-flight jobs are cancelled cooperatively at collective boundaries
//!   ([`soifft_core::CancelGate`]); and a job that finishes *late* is
//!   discarded, never delivered as a success.
//! * **Fair sharing** — round-robin dispatch across tenants, so one
//!   flooding tenant cannot starve the others (its queue bound fills
//!   first).
//! * **Retry with a budget** — transient communication faults retry with
//!   deterministic jittered exponential backoff, identical on every rank.
//! * **Graceful degradation** — repeated rank deaths or silent-corruption
//!   failures trip a [`CircuitBreaker`]; the engine either fails fast
//!   ([`DegradedMode::RejectNew`]) or keeps serving with ABFT validation
//!   shed ([`DegradedMode::ValidationOff`]), probing half-open until
//!   healthy.
//! * **Typed endings, always** — every admitted job resolves to exactly
//!   one `Result`: output, or a [`JobError`] saying what happened
//!   (deadline, retries exhausted, corruption, rank death, shutdown).
//!
//! The warm serve loop is allocation-clean to the same bounded standard
//! as the underlying resilient transform: job slots, queues, and outputs
//! are pooled at engine start and recycled through a free list.
//!
//! ```
//! use soifft_core::{Rational, SoiParams};
//! use soifft_serve::{ServeConfig, ServeEngine};
//!
//! let params = SoiParams {
//!     n: 1 << 10,
//!     procs: 2,
//!     segments_per_proc: 2,
//!     mu: Rational::new(2, 1),
//!     conv_width: 16,
//! };
//! let engine = ServeEngine::start(params, ServeConfig::default()).unwrap();
//! let input = vec![soifft_num::c64::new(1.0, 0.0); engine.transform_len()];
//! let ticket = engine.submit(0, &input, None).unwrap();
//! let spectrum = ticket.wait().unwrap();
//! assert_eq!(spectrum.len(), input.len());
//! let report = engine.shutdown();
//! assert_eq!(report.stats.completed, 1);
//! ```

mod admission;
mod breaker;
mod engine;
mod job;

pub use admission::{Admission, RateLimit, TokenBucket};
pub use breaker::{BreakerConfig, BreakerState, BreakerVerdict, CircuitBreaker, DegradedMode};
pub use engine::{JobTicket, RetryConfig, ServeConfig, ServeEngine, ServeReport, ServeStats};
pub use job::{JobError, Rejected, ShedPoint};
