//! Distributed Cooley–Tukey 1D FFT — the conventional baseline (Fig 1).
//!
//! This is the stand-in for MKL's cluster FFT: the classic transpose
//! algorithm with **three** all-to-all exchanges, against which SOI's
//! single exchange is compared (Figs 3, 8, 9). For `N = n1·n2`, with the
//! data viewed as an `n1 × n2` row-major matrix distributed by row blocks:
//!
//! ```text
//! y[c + d·n1] = Σ_b W_{n2}^{bd} · W_N^{bc} · (Σ_a W_{n1}^{ac} x[a·n2 + b])
//! ```
//!
//! 1. all-to-all transpose → each rank owns `n2/P` columns as rows,
//! 2. local `n1`-point FFTs + twiddle `W_N^{bc}` (fused, dynamic-block
//!    tables),
//! 3. all-to-all transpose back → each rank owns `n1/P` result rows,
//! 4. local `n2`-point FFTs,
//! 5. all-to-all transpose → natural-order output distribution.
//!
//! Constraints: `P | n1` and `P | n2`. Input and output are block
//! distributed in natural order (rank `r` holds elements
//! `[r·N/P, (r+1)·N/P)`), the same convention as
//! `soifft_core::SoiFft` (the ct crate does not depend on core, so this
//! is a textual reference).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use soifft_cluster::{
    BitFlipSite, CheckpointStore, Comm, CommError, ExchangePolicy, RecoveryCtx, ValidationPolicy,
};
use soifft_fft::batch;
use soifft_fft::twiddle::DynamicBlock;
use soifft_fft::Plan;
use soifft_num::c64;
use soifft_num::factor::balanced_split;

/// Localized re-execution attempts per detected silent corruption before
/// escalating (mirrors the SOI pipeline's retry budget in
/// `soifft_core::verify` — the ct crate deliberately does not depend on
/// core).
const SDC_RETRY_BUDGET: u32 = 2;

/// A planned distributed Cooley–Tukey transform.
#[derive(Debug)]
pub struct DistributedCtFft {
    n: usize,
    procs: usize,
    n1: usize,
    n2: usize,
    plan1: std::sync::Arc<Plan>,
    plan2: std::sync::Arc<Plan>,
    tw: DynamicBlock,
    validation: ValidationPolicy,
}

/// Reusable buffer set for [`DistributedCtFft::forward_into`]: the two
/// intermediate matrices, the pack/exchange slots, and the component-plan
/// scratch. Build once with [`DistributedCtFft::make_workspace`]; warm
/// calls through it run the whole three-transpose pipeline without heap
/// allocation (pack slots and received payloads recycle through the
/// communicator's buffer pool).
#[derive(Clone, Debug, Default)]
pub struct CtWorkspace {
    /// Per-destination pack slots (acquired from the pool each call).
    outgoing: Vec<Vec<c64>>,
    /// Received payloads of the in-flight exchange (recycled after unpack).
    incoming: Vec<Vec<c64>>,
    /// Columns after the first transpose (`n/P` elements).
    cols: Vec<c64>,
    /// Rows after the second transpose (`n/P` elements).
    rows: Vec<c64>,
    /// `n1`-point component-plan scratch.
    s1: Vec<c64>,
    /// `n2`-point component-plan scratch.
    s2: Vec<c64>,
}

/// Planning errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtError {
    /// No factorization `n = n1·n2` with `P | n1` and `P | n2` exists.
    NoDivisibleSplit {
        /// Transform length.
        n: usize,
        /// Rank count.
        procs: usize,
    },
}

impl std::fmt::Display for CtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtError::NoDivisibleSplit { n, procs } => write!(
                f,
                "N={n} admits no n1·n2 split with both factors divisible by P={procs}"
            ),
        }
    }
}

impl std::error::Error for CtError {}

/// Checkpoint keys of the recoverable CT pipeline
/// ([`DistributedCtFft::try_forward_recoverable`]) — prefixed `ct-` so a
/// shared [`CheckpointStore`] can never confuse them with the SOI phases.
mod ct_phases {
    /// Result of the first all-to-all transpose.
    pub const TRANSPOSE_1: &str = "ct-transpose-1";
    /// Columns after the `n1`-point FFTs + twiddle.
    pub const FFT_1: &str = "ct-fft-1";
    /// Result of the second all-to-all transpose.
    pub const TRANSPOSE_2: &str = "ct-transpose-2";
    /// Rows after the `n2`-point FFTs.
    pub const FFT_2: &str = "ct-fft-2";
}

impl DistributedCtFft {
    /// Plans a transform of length `n` over `procs` ranks, choosing the
    /// most balanced `n1 × n2` split with `P | n1` and `P | n2`.
    pub fn new(n: usize, procs: usize) -> Result<Self, CtError> {
        // Factor out P² and balance the rest.
        let p2 = procs * procs;
        if !n.is_multiple_of(p2) {
            return Err(CtError::NoDivisibleSplit { n, procs });
        }
        let (a, b) = balanced_split(n / p2);
        Ok(Self::with_split(n, procs, a * procs, b * procs))
    }

    /// Plans with an explicit split (`n1·n2 == n`, `P | n1`, `P | n2`).
    pub fn with_split(n: usize, procs: usize, n1: usize, n2: usize) -> Self {
        assert_eq!(n1 * n2, n, "n1·n2 must equal n");
        assert_eq!(n1 % procs, 0, "P must divide n1");
        assert_eq!(n2 % procs, 0, "P must divide n2");
        DistributedCtFft {
            n,
            procs,
            n1,
            n2,
            // Component plans come from the process-wide cache, shared
            // with every other transform of the same component sizes.
            plan1: soifft_fft::shared_plan(n1),
            plan2: soifft_fft::shared_plan(n2),
            tw: DynamicBlock::new(n),
            validation: ValidationPolicy::Off,
        }
    }

    /// Selects the silent-data-corruption defense level for the resilient
    /// pipelines ([`DistributedCtFft::try_forward`] and
    /// [`DistributedCtFft::try_forward_recoverable`]): the first local FFT
    /// stage is guarded by the Parseval energy balance `E_out = n1·E_in`
    /// (exact because the fused twiddles have unit modulus), with
    /// `CheckOnly` surfacing a violation as
    /// [`CommError::SilentCorruption`] and `Recover` re-executing the
    /// stage from its pre-FFT columns up to the retry budget first.
    pub fn with_validation(mut self, validation: ValidationPolicy) -> Self {
        self.validation = validation;
        self
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false; API symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `(n1, n2)` decomposition.
    pub fn split(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// A workspace sized for this plan, for [`DistributedCtFft::forward_into`].
    pub fn make_workspace(&self) -> CtWorkspace {
        let per = self.n / self.procs;
        CtWorkspace {
            outgoing: vec![Vec::new(); self.procs],
            incoming: Vec::with_capacity(self.procs),
            cols: vec![c64::ZERO; per],
            rows: vec![c64::ZERO; per],
            s1: self.plan1.make_scratch(),
            s2: self.plan2.make_scratch(),
        }
    }

    /// Computes this rank's slice of `y = F_N x` (natural order in and
    /// out; three all-to-alls, matching Fig 1). Plans a fresh workspace
    /// per call; iterated transforms should hold a
    /// [`CtWorkspace`] and call [`DistributedCtFft::forward_into`].
    pub fn forward(&self, comm: &mut Comm, local_input: &[c64]) -> Vec<c64> {
        let mut ws = self.make_workspace();
        let mut y = vec![c64::ZERO; self.n / self.procs];
        self.forward_into(comm, local_input, &mut ws, &mut y);
        y
    }

    /// [`DistributedCtFft::forward`] against a caller-held workspace and
    /// output slice: after the first (warming) call, repeated transforms
    /// run the pack → exchange → FFT pipeline with zero heap allocation.
    pub fn forward_into(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        ws: &mut CtWorkspace,
        y: &mut [c64],
    ) {
        assert_eq!(comm.size(), self.procs, "cluster size != planned procs");
        assert_eq!(local_input.len(), self.n / self.procs, "wrong local length");
        assert_eq!(y.len(), self.n / self.procs, "wrong output length");
        let (n1, n2) = (self.n1, self.n2);
        let per = self.n / self.procs;
        comm.stats_mut().span_open("superstep");
        if ws.outgoing.len() != self.procs {
            ws.outgoing.resize_with(self.procs, Vec::new);
        }
        ws.cols.resize(per, c64::ZERO);
        ws.rows.resize(per, c64::ZERO);

        // Step 1: all-to-all transpose (n1×n2 → n2×n1). Local rows: a ∈
        // [r·n1/P, ...); after: rows b ∈ [r·n2/P, ...), length n1.
        transpose_pooled(
            comm,
            local_input,
            n1,
            n2,
            &mut ws.outgoing,
            &mut ws.incoming,
            &mut ws.cols,
        );

        // Step 2+3: local n1-point FFTs over rows, fused twiddle W_N^{bc}.
        self.fft1_twiddle_with(comm, &mut ws.cols, &mut ws.s1);

        // Step 4: all-to-all transpose back (n2×n1 → n1×n2): rank owns
        // rows c ∈ [r·n1/P, ...), length n2.
        transpose_pooled(
            comm,
            &ws.cols,
            n2,
            n1,
            &mut ws.outgoing,
            &mut ws.incoming,
            &mut ws.rows,
        );

        // Step 5: local n2-point FFTs over rows.
        let t = comm.stats_mut().phase_start();
        batch::forward_rows_with(&self.plan2, &mut ws.rows, &mut ws.s2);
        comm.stats_mut().phase_end("local-fft", t);

        // Step 6: final all-to-all transpose (n1×n2 → n2×n1): output rows
        // are d-major, i.e. natural order y[d·n1 + c].
        transpose_pooled(
            comm,
            &ws.rows,
            n1,
            n2,
            &mut ws.outgoing,
            &mut ws.incoming,
            y,
        );
        comm.stats_mut().span_close("superstep");
    }

    /// Throughput mode: `B` back-to-back transforms through one warm
    /// workspace (the baseline counterpart of
    /// `soifft_core::SoiFft::forward_many`).
    pub fn forward_many(&self, comm: &mut Comm, inputs: &[Vec<c64>]) -> Vec<Vec<c64>> {
        let mut ws = self.make_workspace();
        let mut outputs = vec![Vec::new(); inputs.len()];
        self.forward_many_into(comm, inputs, &mut ws, &mut outputs);
        outputs
    }

    /// [`DistributedCtFft::forward_many`] against a caller-planned
    /// workspace and output set (each slot resized to `N/P` as needed, so
    /// a reused output ring costs nothing after its first batch).
    pub fn forward_many_into(
        &self,
        comm: &mut Comm,
        inputs: &[Vec<c64>],
        ws: &mut CtWorkspace,
        outputs: &mut [Vec<c64>],
    ) {
        assert_eq!(inputs.len(), outputs.len(), "one output slot per input");
        let per = self.n / self.procs;
        for (x, y) in inputs.iter().zip(outputs.iter_mut()) {
            y.resize(per, c64::ZERO);
            self.forward_into(comm, x, ws, y);
        }
    }

    /// Fault-tolerant forward transform: same three-transpose algorithm as
    /// [`DistributedCtFft::forward`], but every all-to-all runs through the
    /// consensus-checked [`Comm::all_to_all_resilient`] under `policy`, so
    /// transient faults are retried and permanent failures surface as a
    /// typed [`CommError`] instead of a panic or a hang. Collective: every
    /// rank passes the same `policy`.
    pub fn try_forward(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
    ) -> Result<Vec<c64>, CommError> {
        assert_eq!(comm.size(), self.procs, "cluster size != planned procs");
        assert_eq!(local_input.len(), self.n / self.procs, "wrong local length");

        comm.stats_mut().span_open("superstep");
        let result = self.try_forward_body(comm, local_input, policy);
        comm.stats_mut().span_close("superstep");
        result
    }

    /// [`DistributedCtFft::try_forward`]'s pipeline body, split out so the
    /// `"superstep"` trace span closes on the error path too.
    fn try_forward_body(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
    ) -> Result<Vec<c64>, CommError> {
        let (n1, n2) = (self.n1, self.n2);

        let mut cols = distributed_transpose_resilient(comm, local_input, n1, n2, policy)?;
        self.fft1_checked(comm, &mut cols)?;

        let mut rows = distributed_transpose_resilient(comm, &cols, n2, n1, policy)?;
        drop(cols);

        let t = comm.stats_mut().phase_start();
        batch::forward_rows(&self.plan2, &mut rows);
        comm.stats_mut().phase_end("local-fft", t);

        distributed_transpose_resilient(comm, &rows, n1, n2, policy)
    }

    /// Checkpointing fault-tolerant forward transform for supervised runs:
    /// the [`DistributedCtFft::try_forward`] pipeline, but each of the four
    /// intermediate stages snapshots into the supervisor's
    /// [`CheckpointStore`] (under `ct-`-prefixed keys), and a respawned
    /// epoch skips every globally committed transpose and resumes local
    /// work from this rank's own deepest snapshot — so a crash between the
    /// baseline's three all-to-alls does not repeat the exchanges the
    /// collective already completed. Run it under
    /// [`Supervisor::run`](soifft_cluster::Supervisor::run) with the
    /// [`RecoveryCtx`] the supervisor hands each rank.
    ///
    /// A restore that finds its snapshot missing or corrupt returns
    /// [`CommError::CheckpointCorrupt`]. Collective: the committed-phase
    /// list is frozen per epoch, so every rank takes the same resume path.
    pub fn try_forward_recoverable(
        &self,
        comm: &mut Comm,
        local_input: &[c64],
        policy: &ExchangePolicy,
        ctx: &RecoveryCtx,
    ) -> Result<Vec<c64>, CommError> {
        assert_eq!(comm.size(), self.procs, "cluster size != planned procs");
        assert_eq!(local_input.len(), self.n / self.procs, "wrong local length");
        assert_eq!(
            ctx.store().parties(),
            self.procs,
            "checkpoint store sized for a different cluster"
        );
        let (n1, n2) = (self.n1, self.n2);
        let rank = comm.rank();
        let store: &CheckpointStore = ctx.store();
        let epoch = ctx.epoch();
        let restore = |phase: &'static str| {
            store
                .restore(rank, phase)
                .map_err(|_| CommError::CheckpointCorrupt { rank })
        };

        // The frozen committed list decides which transposes re-run (a
        // collective decision every rank resolves identically); local FFT
        // stages resume from this rank's own deepest snapshot, committed
        // or not. A rank restores stage k only when it holds no k+1
        // snapshot, and k is pruned only once k+1 commits — which needs
        // this rank's own k+1 save — so restores never race prunes.
        if ctx.committed(ct_phases::FFT_2) {
            let rows = restore(ct_phases::FFT_2)?;
            return distributed_transpose_resilient(comm, &rows, n1, n2, policy);
        }

        let rows = if ctx.committed(ct_phases::TRANSPOSE_2) {
            if let Ok(rows) = restore(ct_phases::FFT_2) {
                rows
            } else {
                let mut rows = restore(ct_phases::TRANSPOSE_2)?;
                comm.crash_point(ct_phases::FFT_2);
                let t = comm.stats_mut().phase_start();
                batch::forward_rows(&self.plan2, &mut rows);
                comm.stats_mut().phase_end("local-fft", t);
                store.save(rank, ct_phases::FFT_2, epoch, &rows);
                rows
            }
        } else {
            // The second transpose must re-run, which needs this rank's
            // post-FFT columns — own snapshot first, else recompute.
            let fresh_t1 = if ctx.committed(ct_phases::TRANSPOSE_1) {
                None
            } else {
                let cols = distributed_transpose_resilient(comm, local_input, n1, n2, policy)?;
                store.save(rank, ct_phases::TRANSPOSE_1, epoch, &cols);
                Some(cols)
            };
            let cols = if let Ok(cols) = restore(ct_phases::FFT_1) {
                cols
            } else {
                let mut cols = match fresh_t1 {
                    Some(cols) => cols,
                    None => restore(ct_phases::TRANSPOSE_1)?,
                };
                comm.crash_point(ct_phases::FFT_1);
                self.fft1_checked(comm, &mut cols)?;
                store.save(rank, ct_phases::FFT_1, epoch, &cols);
                cols
            };
            let fresh_t2 = distributed_transpose_resilient(comm, &cols, n2, n1, policy)?;
            store.save(rank, ct_phases::TRANSPOSE_2, epoch, &fresh_t2);
            if let Ok(rows) = restore(ct_phases::FFT_2) {
                rows // own snapshot from an earlier epoch — FFTs already done
            } else {
                let mut rows = fresh_t2;
                comm.crash_point(ct_phases::FFT_2);
                let t = comm.stats_mut().phase_start();
                batch::forward_rows(&self.plan2, &mut rows);
                comm.stats_mut().phase_end("local-fft", t);
                store.save(rank, ct_phases::FFT_2, epoch, &rows);
                rows
            }
        };

        distributed_transpose_resilient(comm, &rows, n1, n2, policy)
    }

    /// [`DistributedCtFft::fft1_twiddle`] under the ABFT guard used by the
    /// resilient pipelines. The invariant: an unnormalized `n1`-point DFT
    /// scales total energy by exactly `n1`, and the fused twiddles
    /// `W_N^{bc}` have unit modulus, so across the whole stage
    /// `E_out = n1·E_in` to roundoff. The energy is captured *before* the
    /// stage, any planned [`BitFlipSite::LocalFftBuffer`] flip is injected
    /// after it (memory corruption the link layer never observes), and
    /// the balance is re-verified before the next transpose ships the
    /// buffer. `Recover` re-executes the stage from its pre-FFT columns up
    /// to [`SDC_RETRY_BUDGET`] times; then (or immediately under
    /// `CheckOnly`) escalates as [`CommError::SilentCorruption`].
    fn fft1_checked(&self, comm: &mut Comm, cols: &mut [c64]) -> Result<(), CommError> {
        let validate = self.validation.is_on();
        let energy = |data: &[c64]| -> f64 { data.iter().map(|z| z.norm_sqr()).sum() };
        let e_in = energy(cols);
        let pre = (validate && self.validation.recovers()).then(|| cols.to_vec());
        self.fft1_twiddle(comm, cols);
        comm.inject_bit_flip(BitFlipSite::LocalFftBuffer, cols);
        if !validate {
            return Ok(());
        }
        // Roundoff grows with the butterfly depth; ~two orders above
        // worst-case drift, ~ten below a high-exponent flip.
        let tol = 1e-12 * (self.n1.max(2) as f64).log2();
        let expect = e_in * self.n1 as f64;
        let scale = expect.abs().max(f64::MIN_POSITIVE);
        let balanced = |e_out: f64| e_out.is_finite() && ((e_out - expect) / scale).abs() <= tol;
        let mut attempts = 0u32;
        while !balanced(energy(cols)) {
            comm.stats_mut().note_sdc_detected();
            if !self.validation.recovers() || attempts >= SDC_RETRY_BUDGET {
                return Err(CommError::SilentCorruption {
                    rank: comm.rank(),
                    segment: None,
                });
            }
            attempts += 1;
            let pre = pre.as_ref().expect("Recover keeps the pre-FFT columns");
            cols.copy_from_slice(pre);
            self.fft1_twiddle(comm, cols);
            // A stuck-at fault corrupts the re-execution too.
            comm.inject_bit_flip(BitFlipSite::LocalFftBuffer, cols);
        }
        if attempts > 0 {
            comm.stats_mut().note_sdc_repaired();
        }
        Ok(())
    }

    /// Steps 2+3 shared by every forward variant: local `n1`-point FFTs
    /// over the transposed rows with the fused twiddle `W_N^{bc}` (exponent
    /// stepped incrementally — no per-element modulo). Records the
    /// `"local-fft"` phase.
    fn fft1_twiddle(&self, comm: &mut Comm, cols: &mut [c64]) {
        let mut scratch = self.plan1.make_scratch();
        self.fft1_twiddle_with(comm, cols, &mut scratch);
    }

    /// [`DistributedCtFft::fft1_twiddle`] against caller-owned component
    /// scratch — the allocation-free form the workspace pipeline uses.
    fn fft1_twiddle_with(&self, comm: &mut Comm, cols: &mut [c64], scratch: &mut [c64]) {
        let b0 = comm.rank() * (self.n2 / self.procs);
        let t = comm.stats_mut().phase_start();
        for (i, row) in cols.chunks_exact_mut(self.n1).enumerate() {
            self.plan1.forward_with_scratch(row, scratch);
            let step = (b0 + i) % self.n;
            let mut tt = 0usize;
            for v in row.iter_mut() {
                *v *= self.tw.get(tt);
                tt += step;
                if tt >= self.n {
                    tt -= self.n;
                }
            }
        }
        comm.stats_mut().phase_end("local-fft", t);
    }
}

/// All-to-all transpose of a `rows × cols` row-major matrix distributed by
/// row blocks: each rank holds `rows/P` consecutive rows in; returns
/// `cols/P` consecutive rows of the transposed (`cols × rows`) matrix.
///
/// Requires `P | rows` and `P | cols`.
pub fn distributed_transpose(comm: &mut Comm, local: &[c64], rows: usize, cols: usize) -> Vec<c64> {
    let outgoing = pack_transpose(comm.size(), local, rows, cols);
    let incoming = comm.all_to_all(outgoing);
    unpack_transpose(comm.size(), &incoming, rows, cols)
}

/// Fault-tolerant [`distributed_transpose`]: the exchange runs through
/// [`Comm::all_to_all_resilient`] under `policy`, so transient faults are
/// retried round-by-round and permanent failures return a typed
/// [`CommError`].
pub fn distributed_transpose_resilient(
    comm: &mut Comm,
    local: &[c64],
    rows: usize,
    cols: usize,
    policy: &ExchangePolicy,
) -> Result<Vec<c64>, CommError> {
    let outgoing = pack_transpose(comm.size(), local, rows, cols);
    let incoming = comm.all_to_all_resilient(&outgoing, policy)?;
    Ok(unpack_transpose(comm.size(), &incoming, rows, cols))
}

/// [`distributed_transpose`] through recycled buffers: pack slots come
/// from the communicator's buffer pool, the exchange runs in place over
/// `outgoing`/`incoming`, and received payloads go back to the pool after
/// the unpack — so iterated transposes of one shape never allocate.
fn transpose_pooled(
    comm: &mut Comm,
    local: &[c64],
    rows: usize,
    cols: usize,
    outgoing: &mut [Vec<c64>],
    incoming: &mut Vec<Vec<c64>>,
    out: &mut [c64],
) {
    let p = comm.size();
    assert_eq!(rows % p, 0, "P must divide rows");
    assert_eq!(cols % p, 0, "P must divide cols");
    let my_rows = rows / p;
    let out_rows = cols / p;
    assert_eq!(local.len(), my_rows * cols, "local shape mismatch");
    for (q, slot) in outgoing.iter_mut().enumerate() {
        let c0 = q * out_rows;
        let mut buf = comm.acquire_buffer(out_rows * my_rows);
        buf.resize(out_rows * my_rows, c64::ZERO);
        for (rl, row) in local.chunks_exact(cols).enumerate() {
            for cl in 0..out_rows {
                buf[cl * my_rows + rl] = row[c0 + cl];
            }
        }
        *slot = buf;
    }
    comm.all_to_all_into(outgoing, incoming);
    unpack_transpose_into(p, incoming, rows, cols, out);
    for buf in incoming.drain(..) {
        comm.recycle_buffer(buf);
    }
}

/// Pack: to rank q goes my block of columns [q·out_rows, (q+1)·out_rows),
/// already transposed so the receiver can place it contiguously:
/// buffer[(col_local)·my_rows + row_local].
fn pack_transpose(p: usize, local: &[c64], rows: usize, cols: usize) -> Vec<Vec<c64>> {
    assert_eq!(rows % p, 0, "P must divide rows");
    assert_eq!(cols % p, 0, "P must divide cols");
    let my_rows = rows / p;
    let out_rows = cols / p;
    assert_eq!(local.len(), my_rows * cols, "local shape mismatch");
    (0..p)
        .map(|q| {
            let c0 = q * out_rows;
            let mut buf = vec![c64::ZERO; out_rows * my_rows];
            for (rl, row) in local.chunks_exact(cols).enumerate() {
                for cl in 0..out_rows {
                    buf[cl * my_rows + rl] = row[c0 + cl];
                }
            }
            buf
        })
        .collect()
}

/// Unpack: from rank q come my out_rows × (rows/P) tiles covering
/// original rows [q·my_rows, ...), i.e. transposed columns.
fn unpack_transpose(p: usize, incoming: &[Vec<c64>], rows: usize, cols: usize) -> Vec<c64> {
    let out_rows = cols / p;
    let mut out = vec![c64::ZERO; out_rows * rows];
    unpack_transpose_into(p, incoming, rows, cols, &mut out);
    out
}

/// [`unpack_transpose`] into a caller-owned slice (every element is
/// written, so stale contents are fine).
fn unpack_transpose_into(
    p: usize,
    incoming: &[Vec<c64>],
    rows: usize,
    cols: usize,
    out: &mut [c64],
) {
    let my_rows = rows / p;
    let out_rows = cols / p;
    debug_assert_eq!(out.len(), out_rows * rows);
    for (q, part) in incoming.iter().enumerate() {
        let r0 = q * my_rows;
        for cl in 0..out_rows {
            let src = &part[cl * my_rows..(cl + 1) * my_rows];
            out[cl * rows + r0..cl * rows + r0 + my_rows].copy_from_slice(src);
        }
    }
}

/// A distributed 2D FFT (`rows × cols`, row-distributed), included to
/// substantiate the paper's introduction: "in-order 1D FFT is distinctly
/// more challenging than the 2D or 3D cases". Each rank starts with
/// complete rows, so the row-dimension FFTs are entirely local; ONE
/// all-to-all transpose hands out complete columns for the second pass —
/// versus the three exchanges of the conventional distributed 1D transform
/// above.
///
/// The output is left in *transposed* layout (rank `r` holds columns
/// `[r·cols/P, (r+1)·cols/P)` as rows), the convention real pencil codes
/// use to avoid paying a second transpose.
#[derive(Debug)]
pub struct Distributed2dFft {
    rows: usize,
    cols: usize,
    procs: usize,
    row_plan: std::sync::Arc<Plan>,
    col_plan: std::sync::Arc<Plan>,
}

impl Distributed2dFft {
    /// Plans a `rows × cols` transform over `procs` ranks
    /// (`P | rows`, `P | cols`).
    pub fn new(rows: usize, cols: usize, procs: usize) -> Self {
        assert_eq!(rows % procs, 0, "P must divide rows");
        assert_eq!(cols % procs, 0, "P must divide cols");
        Distributed2dFft {
            rows,
            cols,
            procs,
            row_plan: soifft_fft::shared_plan(cols),
            col_plan: soifft_fft::shared_plan(rows),
        }
    }

    /// The shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Forward transform: input is this rank's `rows/P` contiguous rows;
    /// output is its `cols/P` transposed result rows (length `rows` each).
    pub fn forward(&self, comm: &mut Comm, local_rows: &[c64]) -> Vec<c64> {
        assert_eq!(comm.size(), self.procs, "cluster size != planned procs");
        assert_eq!(
            local_rows.len(),
            self.rows / self.procs * self.cols,
            "wrong local shape"
        );
        // Row FFTs: fully local (each rank owns complete rows).
        let mut data = local_rows.to_vec();
        let t = comm.stats_mut().phase_start();
        batch::forward_rows(&self.row_plan, &mut data);
        comm.stats_mut().phase_end("local-fft", t);

        // ONE all-to-all transpose, then column FFTs (now local rows).
        let mut cols_local = distributed_transpose(comm, &data, self.rows, self.cols);
        let t = comm.stats_mut().phase_start();
        batch::forward_rows(&self.col_plan, &mut cols_local);
        comm.stats_mut().phase_end("local-fft", t);
        cols_local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soifft_cluster::{Cluster, ClusterConfig, FaultPlan, RankOutcome};
    use soifft_num::error::rel_linf;

    fn signal(n: usize) -> Vec<c64> {
        (0..n)
            .map(|i| c64::new((0.13 * i as f64).sin(), (0.29 * i as f64).cos() - 0.1))
            .collect()
    }

    fn scatter(x: &[c64], p: usize) -> Vec<Vec<c64>> {
        let per = x.len() / p;
        (0..p).map(|r| x[r * per..(r + 1) * per].to_vec()).collect()
    }

    #[test]
    fn distributed_transpose_matches_local() {
        for &(rows, cols, p) in &[(8, 12, 4), (12, 8, 4), (6, 6, 3), (4, 4, 1), (16, 4, 2)] {
            let m = signal(rows * cols);
            let parts = scatter(&m, p);
            let out = Cluster::run(p, |comm| {
                distributed_transpose(comm, &parts[comm.rank()], rows, cols)
            });
            let gathered: Vec<c64> = out.into_iter().flatten().collect();
            let mut expect = vec![c64::ZERO; rows * cols];
            soifft_num::transpose::transpose(&m, &mut expect, rows, cols);
            assert_eq!(gathered, expect, "{rows}x{cols} P={p}");
        }
    }

    #[test]
    fn transform_matches_reference_fft() {
        for p in [1, 2, 4] {
            let n = 1 << 10;
            let x = signal(n);
            let parts = scatter(&x, p);
            let fft = DistributedCtFft::new(n, p).unwrap();
            let out = Cluster::run(p, |comm| fft.forward(comm, &parts[comm.rank()]));
            let got: Vec<c64> = out.into_iter().flatten().collect();
            let plan = Plan::new(n);
            let mut want = x.clone();
            plan.forward(&mut want);
            let err = rel_linf(&got, &want);
            assert!(err < 1e-10, "P={p}: err={err:.3e}");
        }
    }

    #[test]
    fn nonpow2_lengths_work() {
        let p = 3;
        let n = 9 * 36; // n1=18, n2=18 both divisible by 3
        let x = signal(n);
        let parts = scatter(&x, p);
        let fft = DistributedCtFft::new(n, p).unwrap();
        let out = Cluster::run(p, |comm| fft.forward(comm, &parts[comm.rank()]));
        let got: Vec<c64> = out.into_iter().flatten().collect();
        let plan = Plan::new(n);
        let mut want = x.clone();
        plan.forward(&mut want);
        assert!(rel_linf(&got, &want) < 1e-10);
    }

    #[test]
    fn exactly_three_all_to_alls() {
        let p = 4;
        let n = 1 << 10;
        let x = signal(n);
        let parts = scatter(&x, p);
        let fft = DistributedCtFft::new(n, p).unwrap();
        let stats = Cluster::run(p, |comm| {
            fft.forward(comm, &parts[comm.rank()]);
            comm.stats().clone()
        });
        for s in &stats {
            assert_eq!(s.count_of("all-to-all"), 3, "Fig 1: CT needs 3 exchanges");
            assert_eq!(s.count_of("ghost"), 0);
        }
    }

    #[test]
    fn single_rank_degenerates_to_local_fft() {
        let n = 1 << 8;
        let x = signal(n);
        let fft = DistributedCtFft::new(n, 1).unwrap();
        let out = Cluster::run(1, |comm| fft.forward(comm, &x));
        let mut want = x.clone();
        Plan::new(n).forward(&mut want);
        assert!(rel_linf(&out[0], &want) < 1e-11);
    }

    #[test]
    fn unbalanced_explicit_split_still_correct() {
        let p = 2;
        let n = 4 * 64; // n1 = 4, n2 = 64 — maximally skewed
        let x = signal(n);
        let parts = scatter(&x, p);
        let fft = DistributedCtFft::with_split(n, p, 4, 64);
        let out = Cluster::run(p, |comm| fft.forward(comm, &parts[comm.rank()]));
        let got: Vec<c64> = out.into_iter().flatten().collect();
        let mut want = x.clone();
        Plan::new(n).forward(&mut want);
        assert!(rel_linf(&got, &want) < 1e-11);
    }

    #[test]
    fn local_fft_phase_recorded_twice() {
        // The two local FFT stages both land in the ledger.
        let p = 2;
        let n = 1 << 8;
        let x = signal(n);
        let parts = scatter(&x, p);
        let fft = DistributedCtFft::new(n, p).unwrap();
        let stats = Cluster::run(p, |comm| {
            fft.forward(comm, &parts[comm.rank()]);
            comm.stats().clone()
        });
        for s in &stats {
            assert_eq!(s.count_of("local-fft"), 2);
        }
    }

    #[test]
    fn total_bytes_equal_three_transposes() {
        let p = 4;
        let n = 1 << 10;
        let x = signal(n);
        let parts = scatter(&x, p);
        let fft = DistributedCtFft::new(n, p).unwrap();
        let stats = Cluster::run(p, |comm| {
            fft.forward(comm, &parts[comm.rank()]);
            comm.stats().total_bytes_sent()
        });
        // Each transpose ships this rank's whole slice (including the
        // self-block, which the accounting counts as sent).
        let per_rank_bytes = (n / p * 16) as u64;
        for &b in &stats {
            assert_eq!(b, 3 * per_rank_bytes);
        }
    }

    #[test]
    fn distributed_2d_matches_local_plan2d_and_uses_one_alltoall() {
        let (rows, cols, p) = (16usize, 24usize, 4usize);
        let x = signal(rows * cols);
        let per = rows / p * cols;
        let parts: Vec<Vec<c64>> = (0..p).map(|r| x[r * per..(r + 1) * per].to_vec()).collect();
        let fft = Distributed2dFft::new(rows, cols, p);
        let runs = Cluster::run(p, |comm| {
            let y = fft.forward(comm, &parts[comm.rank()]);
            (y, comm.stats().count_of("all-to-all"))
        });
        // The paper's intro claim, measured: 1 all-to-all (vs the 1D
        // transform's 3 above).
        assert!(runs.iter().all(|(_, a2a)| *a2a == 1));

        // Assemble the (transposed) distributed result and compare with
        // the node-local 2D plan.
        let mut want = x.clone();
        soifft_fft::Plan2d::new(rows, cols).forward(&mut want);
        let mut want_t = vec![c64::ZERO; rows * cols];
        soifft_num::transpose::transpose(&want, &mut want_t, rows, cols);
        let got: Vec<c64> = runs.iter().flat_map(|(y, _)| y.iter().copied()).collect();
        assert!(rel_linf(&got, &want_t) < 1e-10);
    }

    #[test]
    fn try_forward_matches_forward_on_healthy_cluster() {
        let p = 4;
        let n = 1 << 10;
        let x = signal(n);
        let parts = scatter(&x, p);
        let fft = DistributedCtFft::new(n, p).unwrap();
        let plain = Cluster::run(p, |comm| fft.forward(comm, &parts[comm.rank()]));
        let resilient = Cluster::run(p, |comm| {
            fft.try_forward(comm, &parts[comm.rank()], &ExchangePolicy::default())
                .expect("healthy cluster")
        });
        assert_eq!(plain, resilient);
    }

    #[test]
    fn planning_errors() {
        assert!(DistributedCtFft::new(1 << 10, 3).is_err()); // 9 ∤ 1024
        let e = DistributedCtFft::new(100, 8).unwrap_err();
        assert!(e.to_string().contains("P=8"));
    }

    #[test]
    fn explicit_split_metadata() {
        let fft = DistributedCtFft::with_split(1 << 10, 4, 32, 32);
        assert_eq!(fft.len(), 1 << 10);
        assert_eq!(fft.split(), (32, 32));
        assert!(!fft.is_empty());
    }

    #[test]
    #[should_panic(expected = "P must divide n1")]
    fn bad_split_panics() {
        DistributedCtFft::with_split(12, 4, 3, 4);
    }

    fn run_validated(
        plan: Option<FaultPlan>,
        validation: ValidationPolicy,
    ) -> Vec<RankOutcome<Result<Vec<c64>, CommError>>> {
        let p = 4;
        let n = 1 << 10;
        let x = signal(n);
        let parts = scatter(&x, p);
        let fft = DistributedCtFft::new(n, p)
            .unwrap()
            .with_validation(validation);
        let config = match plan {
            Some(plan) => ClusterConfig::with_faults(plan),
            None => ClusterConfig::default(),
        };
        Cluster::run_with(config, p, move |comm| {
            fft.try_forward(comm, &parts[comm.rank()], &ExchangePolicy::default())
        })
    }

    fn outputs_of(runs: Vec<RankOutcome<Result<Vec<c64>, CommError>>>) -> Vec<c64> {
        runs.into_iter()
            .flat_map(|o| match o {
                RankOutcome::Ok(Ok(y)) => y,
                other => panic!("rank did not complete: {other:?}"),
            })
            .collect()
    }

    #[test]
    fn fft1_flip_slips_through_when_validation_is_off() {
        let clean = outputs_of(run_validated(None, ValidationPolicy::Off));
        let plan = FaultPlan::new(77).bit_flip(2, BitFlipSite::LocalFftBuffer);
        let flipped = outputs_of(run_validated(Some(plan), ValidationPolicy::Off));
        assert_ne!(
            clean, flipped,
            "an unchecked flip must corrupt the spectrum"
        );
    }

    #[test]
    fn fft1_flip_is_detected_under_check_only() {
        let plan = FaultPlan::new(77).bit_flip(2, BitFlipSite::LocalFftBuffer);
        let runs = run_validated(Some(plan), ValidationPolicy::CheckOnly);
        let mut detected = false;
        for (rank, o) in runs.into_iter().enumerate() {
            match o {
                RankOutcome::Ok(Err(CommError::SilentCorruption { rank: r, .. })) => {
                    assert_eq!(r, 2, "localized to the flipped rank");
                    detected = true;
                }
                // Peers fail collaterally when the victim aborts the
                // collective, or may finish if the abort lands late.
                RankOutcome::Ok(_) => {}
                other => panic!("rank {rank}: unexpected outcome {other:?}"),
            }
        }
        assert!(detected, "the flipped rank must report SilentCorruption");
    }

    #[test]
    fn fft1_flip_is_repaired_under_recover_bit_identically() {
        let clean = outputs_of(run_validated(None, ValidationPolicy::Recover));
        let plan = FaultPlan::new(77).bit_flip(2, BitFlipSite::LocalFftBuffer);
        let repaired = outputs_of(run_validated(Some(plan), ValidationPolicy::Recover));
        assert_eq!(clean, repaired, "repair must be bit-identical");
    }
}
