//! Versioned, checksummed, machine-keyed wisdom persistence.
//!
//! The on-disk format is a deliberately boring line-oriented text file —
//! the workspace vendors no JSON codec, and a format a human can read
//! and `diff` is an asset for a tuning artifact:
//!
//! ```text
//! soifft-wisdom 1
//! fingerprint avx2|8|x86_64|linux
//! checksum 6ab34fd1c9e02b77
//! rates fft=2.416e9 conv=5.1e9 net=3.9e9 lat=2.1e-6
//! plan n=1048576 procs=8 precision=f64 s=8 mu=8/7 b=72 strategy=buffering exchange=per-segment fused=0 measured=1.94e-2
//! ```
//!
//! * line 1: magic + schema version — an unknown version is rejected
//!   ([`WisdomError::UnsupportedSchema`]), never half-parsed;
//! * line 2: the machine fingerprint the wisdom was measured on; a
//!   mismatch ([`WisdomError::ForeignFingerprint`]) means the plans are
//!   someone else's measurements and must not be adopted;
//! * line 3: FNV-1a over every byte after this line — truncation and
//!   bit flips surface as [`WisdomError::ChecksumMismatch`];
//! * the body: the fitted [`RateModel`] and one `plan` line per tuned
//!   shape.
//!
//! Saves are atomic (write `<path>.tmp.<pid>`, then rename) so a crash
//! mid-save can never leave a torn file — the same idiom the cluster
//! crate's persistent checkpoint store uses.

use std::fmt;
use std::path::Path;

use soifft_core::wisdom::{TunedExec, WisdomKey};
use soifft_core::{ConvStrategy, ExchangePlan, Precision, Rational, SoiParams};

use crate::RateModel;

/// On-disk schema version; bump on any line-format change.
pub const WISDOM_SCHEMA_VERSION: u32 = 1;

const MAGIC: &str = "soifft-wisdom";

/// One persisted winner: a full shape + execution knobs + the
/// measurement that won it its slot.
#[derive(Clone, Debug, PartialEq)]
pub struct WisdomEntry {
    /// The tuned SOI shape (may differ from the caller's baseline when
    /// shape exploration found a faster valid shape).
    pub params: SoiParams,
    /// The tuned execution knobs.
    pub exec: TunedExec,
    /// Back-half precision the entry applies to.
    pub precision: Precision,
    /// Best measured wall seconds when this entry was recorded.
    pub measured_s: f64,
}

impl WisdomEntry {
    /// The in-process registry key for this entry.
    pub fn key(&self) -> WisdomKey {
        WisdomKey {
            n: self.params.n,
            procs: self.params.procs,
            precision: self.precision,
        }
    }
}

/// Why a wisdom file could not be used. Every variant degrades the
/// tuner to Estimate-mode rather than panicking or adopting bogus
/// plans.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum WisdomError {
    /// Filesystem failure (message carries the `io::Error` text).
    Io(String),
    /// First line is not `soifft-wisdom <version>`.
    BadMagic {
        /// What the first line actually was.
        found: String,
    },
    /// Schema version this build does not understand.
    UnsupportedSchema {
        /// Version found in the file.
        found: u32,
    },
    /// Body bytes do not hash to the recorded checksum (truncation or
    /// corruption).
    ChecksumMismatch {
        /// Checksum recorded in the file.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// The file was measured on a different machine.
    ForeignFingerprint {
        /// Fingerprint in the file.
        file: String,
        /// This machine's fingerprint.
        machine: String,
    },
    /// A body line failed to parse.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for WisdomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WisdomError::Io(msg) => write!(f, "wisdom io: {msg}"),
            WisdomError::BadMagic { found } => {
                write!(f, "not a wisdom file (first line {found:?})")
            }
            WisdomError::UnsupportedSchema { found } => write!(
                f,
                "wisdom schema v{found} not supported (this build reads v{WISDOM_SCHEMA_VERSION})"
            ),
            WisdomError::ChecksumMismatch { expected, found } => write!(
                f,
                "wisdom checksum mismatch: recorded {expected:016x}, computed {found:016x}"
            ),
            WisdomError::ForeignFingerprint { file, machine } => write!(
                f,
                "wisdom measured on {file:?} but this machine is {machine:?}"
            ),
            WisdomError::Parse { line, what } => write!(f, "wisdom line {line}: {what}"),
        }
    }
}

impl std::error::Error for WisdomError {}

/// The deserialized contents of one wisdom file.
#[derive(Clone, Debug, PartialEq)]
pub struct WisdomFile {
    /// Machine fingerprint the wisdom was measured on.
    pub fingerprint: String,
    /// Fitted rate coefficients at save time.
    pub rates: RateModel,
    /// Tuned winners.
    pub entries: Vec<WisdomEntry>,
}

/// This machine's fingerprint: SIMD kernel backend, hardware thread
/// count, architecture, OS. Wisdom is only adopted when all four match.
pub fn machine_fingerprint() -> String {
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    format!(
        "{}|{}|{}|{}",
        soifft_num::simd::kernel_backend(),
        threads,
        std::env::consts::ARCH,
        std::env::consts::OS
    )
}

/// FNV-1a over `bytes` — the same cheap, dependency-free hash the
/// cluster crate uses for checkpoint checksums.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Stable text label for an exchange plan (`monolithic`,
/// `chunked:<elems>`, `per-segment`, `overlapped`, `proxied:<elems>`).
pub fn exchange_label(e: ExchangePlan) -> String {
    match e {
        ExchangePlan::Monolithic => "monolithic".to_string(),
        ExchangePlan::Chunked(c) => format!("chunked:{c}"),
        ExchangePlan::PerSegment => "per-segment".to_string(),
        ExchangePlan::Overlapped => "overlapped".to_string(),
        ExchangePlan::Proxied(c) => format!("proxied:{c}"),
    }
}

fn parse_exchange(s: &str) -> Option<ExchangePlan> {
    match s {
        "monolithic" => Some(ExchangePlan::Monolithic),
        "per-segment" => Some(ExchangePlan::PerSegment),
        "overlapped" => Some(ExchangePlan::Overlapped),
        _ => {
            if let Some(c) = s.strip_prefix("chunked:") {
                return c.parse().ok().map(ExchangePlan::Chunked);
            }
            if let Some(c) = s.strip_prefix("proxied:") {
                return c.parse().ok().map(ExchangePlan::Proxied);
            }
            None
        }
    }
}

/// Stable text label for a precision (`f64`, `f32`, `split`).
pub fn precision_label(p: Precision) -> &'static str {
    match p {
        Precision::F64 => "f64",
        Precision::F32 => "f32",
        Precision::Split => "split",
    }
}

fn parse_precision(s: &str) -> Option<Precision> {
    match s {
        "f64" => Some(Precision::F64),
        "f32" => Some(Precision::F32),
        "split" => Some(Precision::Split),
        _ => None,
    }
}

fn parse_strategy(s: &str) -> Option<ConvStrategy> {
    ConvStrategy::ALL.into_iter().find(|c| c.label() == s)
}

/// `key=value` field extractor for one body line.
fn field<'a>(line: &'a str, key: &str, lineno: usize) -> Result<&'a str, WisdomError> {
    let prefix = format!("{key}=");
    line.split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(prefix.as_str()))
        .ok_or_else(|| WisdomError::Parse {
            line: lineno,
            what: format!("missing field {key}"),
        })
}

fn parse_f64(s: &str, lineno: usize) -> Result<f64, WisdomError> {
    let v: f64 = s.parse().map_err(|_| WisdomError::Parse {
        line: lineno,
        what: format!("bad float {s:?}"),
    })?;
    if !v.is_finite() {
        return Err(WisdomError::Parse {
            line: lineno,
            what: format!("non-finite float {s:?}"),
        });
    }
    Ok(v)
}

fn parse_usize(s: &str, lineno: usize) -> Result<usize, WisdomError> {
    s.parse().map_err(|_| WisdomError::Parse {
        line: lineno,
        what: format!("bad integer {s:?}"),
    })
}

impl WisdomFile {
    /// Serializes to the on-disk text form, checksum included.
    pub fn to_text(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "rates fft={:e} conv={:e} net={:e} lat={:e}\n",
            self.rates.fft_flops_per_s,
            self.rates.conv_flops_per_s,
            self.rates.net_bytes_per_s,
            self.rates.net_latency_s,
        ));
        for e in &self.entries {
            body.push_str(&format!(
                "plan n={} procs={} precision={} s={} mu={}/{} b={} strategy={} exchange={} fused={} measured={:e}\n",
                e.params.n,
                e.params.procs,
                precision_label(e.precision),
                e.params.segments_per_proc,
                e.params.mu.num(),
                e.params.mu.den(),
                e.params.conv_width,
                e.exec.strategy.label(),
                exchange_label(e.exec.exchange),
                u8::from(e.exec.fused),
                e.measured_s,
            ));
        }
        format!(
            "{MAGIC} {WISDOM_SCHEMA_VERSION}\nfingerprint {}\nchecksum {:016x}\n{body}",
            self.fingerprint,
            fnv1a(body.as_bytes()),
        )
    }

    /// Parses the on-disk text form, verifying magic, schema version and
    /// checksum (but not the fingerprint — see [`WisdomFile::load_for`]).
    pub fn parse(text: &str) -> Result<Self, WisdomError> {
        let mut rest = text;
        let mut take_line = || -> Option<&str> {
            if rest.is_empty() {
                return None;
            }
            let (line, tail) = match rest.find('\n') {
                Some(i) => (&rest[..i], &rest[i + 1..]),
                None => (rest, ""),
            };
            rest = tail;
            Some(line)
        };

        let first = take_line().unwrap_or("");
        let version = first
            .strip_prefix(MAGIC)
            .map(str::trim)
            .and_then(|v| v.parse::<u32>().ok())
            .ok_or_else(|| WisdomError::BadMagic {
                found: first.chars().take(60).collect(),
            })?;
        if version != WISDOM_SCHEMA_VERSION {
            return Err(WisdomError::UnsupportedSchema { found: version });
        }

        let fingerprint = take_line()
            .and_then(|l| l.strip_prefix("fingerprint "))
            .ok_or(WisdomError::Parse {
                line: 2,
                what: "expected `fingerprint <id>`".to_string(),
            })?
            .to_string();

        let expected = take_line()
            .and_then(|l| l.strip_prefix("checksum "))
            .and_then(|v| u64::from_str_radix(v.trim(), 16).ok())
            .ok_or(WisdomError::Parse {
                line: 3,
                what: "expected `checksum <16 hex digits>`".to_string(),
            })?;
        let found = fnv1a(rest.as_bytes());
        if found != expected {
            return Err(WisdomError::ChecksumMismatch { expected, found });
        }

        let mut rates = None;
        let mut entries = Vec::new();
        for (i, line) in rest.lines().enumerate() {
            let lineno = i + 4;
            if line.is_empty() {
                continue;
            }
            if line.starts_with("rates ") {
                rates = Some(RateModel {
                    fft_flops_per_s: parse_f64(field(line, "fft", lineno)?, lineno)?,
                    conv_flops_per_s: parse_f64(field(line, "conv", lineno)?, lineno)?,
                    net_bytes_per_s: parse_f64(field(line, "net", lineno)?, lineno)?,
                    net_latency_s: parse_f64(field(line, "lat", lineno)?, lineno)?,
                });
            } else if line.starts_with("plan ") {
                let mu_field = field(line, "mu", lineno)?;
                let (num, den) = mu_field.split_once('/').ok_or_else(|| WisdomError::Parse {
                    line: lineno,
                    what: format!("bad rational {mu_field:?}"),
                })?;
                let (num, den) = (parse_usize(num, lineno)?, parse_usize(den, lineno)?);
                if num == 0 || den == 0 {
                    return Err(WisdomError::Parse {
                        line: lineno,
                        what: format!("bad rational {mu_field:?}"),
                    });
                }
                let strategy_field = field(line, "strategy", lineno)?;
                let exchange_field = field(line, "exchange", lineno)?;
                let precision_field = field(line, "precision", lineno)?;
                entries.push(WisdomEntry {
                    params: SoiParams {
                        n: parse_usize(field(line, "n", lineno)?, lineno)?,
                        procs: parse_usize(field(line, "procs", lineno)?, lineno)?,
                        segments_per_proc: parse_usize(field(line, "s", lineno)?, lineno)?,
                        mu: Rational::new(num, den),
                        conv_width: parse_usize(field(line, "b", lineno)?, lineno)?,
                    },
                    exec: TunedExec {
                        strategy: parse_strategy(strategy_field).ok_or_else(|| {
                            WisdomError::Parse {
                                line: lineno,
                                what: format!("unknown strategy {strategy_field:?}"),
                            }
                        })?,
                        exchange: parse_exchange(exchange_field).ok_or_else(|| {
                            WisdomError::Parse {
                                line: lineno,
                                what: format!("unknown exchange {exchange_field:?}"),
                            }
                        })?,
                        fused: match field(line, "fused", lineno)? {
                            "0" => false,
                            "1" => true,
                            other => {
                                return Err(WisdomError::Parse {
                                    line: lineno,
                                    what: format!("bad fused flag {other:?}"),
                                })
                            }
                        },
                    },
                    precision: parse_precision(precision_field).ok_or_else(|| {
                        WisdomError::Parse {
                            line: lineno,
                            what: format!("unknown precision {precision_field:?}"),
                        }
                    })?,
                    measured_s: parse_f64(field(line, "measured", lineno)?, lineno)?,
                });
            } else {
                return Err(WisdomError::Parse {
                    line: lineno,
                    what: format!(
                        "unknown record {:?}",
                        line.chars().take(20).collect::<String>()
                    ),
                });
            }
        }
        let rates = rates.ok_or(WisdomError::Parse {
            line: 4,
            what: "missing rates line".to_string(),
        })?;
        Ok(WisdomFile {
            fingerprint,
            rates,
            entries,
        })
    }

    /// Loads and verifies `path` (magic, schema, checksum) without a
    /// fingerprint check — callers that only want to inspect a file.
    pub fn load(path: &Path) -> Result<Self, WisdomError> {
        let text = std::fs::read_to_string(path).map_err(|e| WisdomError::Io(e.to_string()))?;
        Self::parse(&text)
    }

    /// Loads `path` and additionally requires the file's fingerprint to
    /// equal `fingerprint` — the only entry point the tuner uses, so
    /// foreign measurements are never adopted.
    pub fn load_for(path: &Path, fingerprint: &str) -> Result<Self, WisdomError> {
        let file = Self::load(path)?;
        if file.fingerprint != fingerprint {
            return Err(WisdomError::ForeignFingerprint {
                file: file.fingerprint,
                machine: fingerprint.to_string(),
            });
        }
        Ok(file)
    }

    /// Atomically writes to `path`: serialize, write `<path>.tmp.<pid>`,
    /// rename over the destination. Readers never observe a torn file.
    pub fn save(&self, path: &Path) -> Result<(), WisdomError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| WisdomError::Io(e.to_string()))?;
            }
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_text()).map_err(|e| WisdomError::Io(e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            WisdomError::Io(e.to_string())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WisdomFile {
        WisdomFile {
            fingerprint: "avx2|8|x86_64|linux".to_string(),
            rates: RateModel {
                fft_flops_per_s: 2.416e9,
                conv_flops_per_s: 5.1e9,
                net_bytes_per_s: 3.9e9,
                net_latency_s: 2.1e-6,
            },
            entries: vec![
                WisdomEntry {
                    params: SoiParams {
                        n: 1 << 20,
                        procs: 8,
                        segments_per_proc: 8,
                        mu: Rational::new(8, 7),
                        conv_width: 72,
                    },
                    exec: TunedExec {
                        strategy: ConvStrategy::InterchangedBuffered,
                        exchange: ExchangePlan::PerSegment,
                        fused: false,
                    },
                    precision: Precision::F64,
                    measured_s: 1.94e-2,
                },
                WisdomEntry {
                    params: SoiParams {
                        n: 1 << 22,
                        procs: 4,
                        segments_per_proc: 2,
                        mu: Rational::new(2, 1),
                        conv_width: 16,
                    },
                    exec: TunedExec {
                        strategy: ConvStrategy::RowMajor,
                        exchange: ExchangePlan::Chunked(8192),
                        fused: true,
                    },
                    precision: Precision::Split,
                    measured_s: 7.3e-3,
                },
            ],
        }
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let file = sample();
        let parsed = WisdomFile::parse(&file.to_text()).unwrap();
        assert_eq!(parsed, file);
    }

    #[test]
    fn truncation_fails_checksum() {
        let text = sample().to_text();
        let truncated = &text[..text.len() - 10];
        assert!(matches!(
            WisdomFile::parse(truncated),
            Err(WisdomError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn unknown_schema_is_rejected_whole() {
        let text = sample()
            .to_text()
            .replace("soifft-wisdom 1", "soifft-wisdom 99");
        assert_eq!(
            WisdomFile::parse(&text),
            Err(WisdomError::UnsupportedSchema { found: 99 })
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            WisdomFile::parse("hello world\n"),
            Err(WisdomError::BadMagic { .. })
        ));
    }

    #[test]
    fn foreign_fingerprint_is_rejected_by_load_for() {
        let dir = std::env::temp_dir().join(format!("soifft-wisdom-test-{}", std::process::id()));
        let path = dir.join("foreign.wisdom");
        sample().save(&path).unwrap();
        let err = WisdomFile::load_for(&path, "totally|different|machine|id").unwrap_err();
        assert!(matches!(err, WisdomError::ForeignFingerprint { .. }));
        // But the un-fingerprinted loader can still inspect it.
        assert_eq!(WisdomFile::load(&path).unwrap(), sample());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
