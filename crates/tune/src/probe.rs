//! Measured probes: short, barrier-aligned, best-of-R timed runs of a
//! candidate plan over the warm `forward_into` path.
//!
//! The timing discipline is the throughput bench's: build once, warm
//! once (so FFT plans and workspaces are hot and the plan cache is
//! populated), then `R` barrier-aligned repetitions keeping the minimum
//! wall — the minimum is the least-noise estimator for a
//! compute-bound kernel. One extra instrumented repetition runs after
//! the timed ones with a cleared trace ledger, so the per-phase seconds
//! handed to the refit come from exactly one superstep.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use soifft_cluster::{Cluster, CommStats};
use soifft_num::c64;

use crate::{Candidate, PhaseSeconds, TuneError};

/// Measured result of probing one candidate.
#[derive(Clone, Copy, Debug)]
pub struct ProbeMeasurement {
    /// Best (minimum over repetitions, maximum over ranks) wall seconds
    /// for one full transform.
    pub wall_s: f64,
    /// Per-phase seconds from one instrumented superstep, reduced
    /// max-over-ranks.
    pub phases: PhaseSeconds,
}

/// Anything that can measure a candidate. Production uses
/// [`MeasuredProber`]; tests use deterministic synthetic probers.
pub trait Prober {
    /// Measures `cand` with `reps` timed repetitions.
    fn probe(&mut self, cand: &Candidate, reps: usize) -> Result<ProbeMeasurement, TuneError>;
}

/// Process-wide count of real (cluster-running) probe executions.
/// The zero-probe-on-warm-wisdom acceptance test reads this.
static PROBE_EXECUTIONS: AtomicU64 = AtomicU64::new(0);

/// Real probe executions since process start.
pub fn probe_executions() -> u64 {
    PROBE_EXECUTIONS.load(Ordering::Relaxed)
}

/// Deterministic per-rank probe input: xorshift64* mapped to `[-1, 1)`.
/// Local to this crate so the tuner does not depend on the bench crate
/// (the bench crate depends on *us*).
fn probe_signal(n: usize, seed: u64) -> Vec<c64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n).map(|_| c64::new(next(), next())).collect()
}

/// The real prober: spins up an in-process [`Cluster`] of the
/// candidate's rank count and times warm `forward_into` supersteps.
#[derive(Debug, Default)]
pub struct MeasuredProber;

impl MeasuredProber {
    /// A prober with default settings.
    pub fn new() -> Self {
        MeasuredProber
    }
}

impl Prober for MeasuredProber {
    fn probe(&mut self, cand: &Candidate, reps: usize) -> Result<ProbeMeasurement, TuneError> {
        PROBE_EXECUTIONS.fetch_add(1, Ordering::Relaxed);
        let fft = cand.build().map_err(TuneError::InvalidShape)?;
        let per_rank = cand.params.per_rank();
        let procs = cand.params.procs;
        let reps = reps.max(1);
        let fft_ref = &fft;

        let per_rank_results: Vec<(f64, CommStats)> = Cluster::run(procs, move |comm| {
            let x = probe_signal(
                per_rank,
                0x50_1F_F7 ^ (comm.rank() as u64).wrapping_mul(0x9E37),
            );
            let mut ws = fft_ref.make_workspace();
            let mut y = vec![c64::ZERO; fft_ref.output_len(comm.rank())];
            // Warm: plans built, workspaces sized, plan cache populated.
            fft_ref.forward_into(comm, &x, &mut ws, &mut y);

            let mut wall = f64::INFINITY;
            for _ in 0..reps {
                comm.barrier();
                let start = Instant::now();
                fft_ref.forward_into(comm, &x, &mut ws, &mut y);
                comm.barrier();
                wall = wall.min(start.elapsed().as_secs_f64());
            }

            // One instrumented superstep on a clean ledger for the
            // per-phase reconciliation.
            comm.stats_mut().clear_records();
            comm.barrier();
            fft_ref.forward_into(comm, &x, &mut ws, &mut y);
            comm.barrier();
            std::hint::black_box(&y);
            (wall, comm.stats().clone())
        });

        let wall_s = per_rank_results
            .iter()
            .map(|&(w, _)| w)
            .fold(0.0_f64, f64::max);
        let stats: Vec<CommStats> = per_rank_results.into_iter().map(|(_, s)| s).collect();
        Ok(ProbeMeasurement {
            wall_s,
            phases: PhaseSeconds::from_stats(&stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soifft_core::wisdom::TunedExec;
    use soifft_core::{ConvStrategy, ExchangePlan, Precision, SoiParams};

    #[test]
    fn measured_probe_returns_positive_phases_and_counts() {
        let params = SoiParams::suggest(1 << 12, 2).expect("suggest");
        let cand = Candidate {
            params,
            exec: TunedExec {
                strategy: ConvStrategy::RowMajor,
                exchange: ExchangePlan::Monolithic,
                fused: false,
            },
            precision: Precision::F64,
        };
        let before = probe_executions();
        let m = MeasuredProber::new().probe(&cand, 1).expect("probe");
        assert_eq!(probe_executions(), before + 1);
        assert!(m.wall_s > 0.0 && m.wall_s.is_finite());
        assert!(
            m.phases.convolution_s > 0.0,
            "no convolution phase recorded"
        );
        assert!(m.phases.all_to_all_s > 0.0, "no all-to-all phase recorded");
        assert!(m.phases.local_fft_s > 0.0, "no local-fft phase recorded");
        assert!(
            m.phases.segment_fft_s > 0.0,
            "no segment-fft phase recorded"
        );
        // The instrumented superstep's phases can't exceed a full wall
        // by much, but must be commensurate (sanity, not a perf gate).
        assert!(m.phases.total_s() > 0.0);
    }
}
