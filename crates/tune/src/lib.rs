//! Self-tuning planner for the SOI FFT (FFTW-style wisdom).
//!
//! Given a transform shape `(N, P, precision)` and this machine's
//! fingerprint, the [`Tuner`]:
//!
//! 1. **enumerates** the candidate space — execution knobs
//!    ([`soifft_core::ConvStrategy`], [`soifft_core::ExchangePlan`],
//!    front-end fusion) and, optionally, alternative SOI shapes
//!    `(S, µ, B)` that keep at least the baseline's accuracy exponent;
//! 2. **ranks** candidates with the performance model as a prior
//!    ([`PlanReport::predicted_phases`] plus the
//!    [`soifft_model::schedule`] overlap timeline for pipelined
//!    exchanges);
//! 3. **probes** the top-k candidates with short best-of-R measured runs
//!    over the warm `forward_into` path ([`probe::MeasuredProber`]),
//!    barrier-aligned exactly like the throughput bench;
//! 4. **reconciles** predicted vs measured per phase from the trace
//!    ledger and refits the [`RateModel`] coefficients, so the *next*
//!    tuning run's prior starts closer to this machine
//!    ([`Tuner::refit`]);
//! 5. **persists** winners in a versioned, checksummed wisdom file
//!    ([`wisdom`]) keyed by `(N, P, precision, machine fingerprint)`,
//!    and installs them in the in-process registry
//!    ([`soifft_core::wisdom`]) that `SoiFft::with_window` and the
//!    serving engine consult at construction.
//!
//! The three [`Tier`]s mirror FFTW's planner rigor flags: `Estimate`
//! never runs the transform, `Measure` probes, and `WisdomOnly` fails
//! closed so latency-sensitive callers (the serve path) can refuse to
//! plan from scratch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod probe;
pub mod wisdom;

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use soifft_cluster::CommStats;
use soifft_core::wisdom as registry;
use soifft_core::{
    ConvStrategy, ExchangePlan, PlanReport, Precision, Rational, SoiError, SoiFft, SoiParams,
};

pub use probe::{probe_executions, MeasuredProber, ProbeMeasurement, Prober};
pub use wisdom::{
    machine_fingerprint, WisdomEntry, WisdomError, WisdomFile, WISDOM_SCHEMA_VERSION,
};

/// Planner rigor, mirroring FFTW's `ESTIMATE` / `MEASURE` /
/// `WISDOM_ONLY` flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Rank candidates with the cost model only; never run the transform.
    Estimate,
    /// Probe the top-k model-ranked candidates with measured runs and
    /// pick the fastest (always probing the default plan too, so the
    /// tuned pick can never be adopted on a worse measurement).
    Measure,
    /// Only accept a plan already present in wisdom; fail closed
    /// ([`TuneError::NoWisdom`]) otherwise. For latency-sensitive
    /// callers that must not probe at startup.
    WisdomOnly,
}

/// Why a tuning request could not be satisfied.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TuneError {
    /// A candidate shape failed [`SoiParams::validate`].
    InvalidShape(SoiError),
    /// No valid SOI parameterization exists for `(n, procs)` — even
    /// [`SoiParams::suggest`] found nothing.
    NoCandidates {
        /// Requested transform size.
        n: usize,
        /// Requested rank count.
        procs: usize,
    },
    /// [`Tier::WisdomOnly`] and no wisdom entry covers the request.
    NoWisdom {
        /// Requested transform size.
        n: usize,
        /// Requested rank count.
        procs: usize,
    },
    /// The measured prober failed (cluster spawn, etc.).
    Probe(String),
    /// Wisdom persistence failed.
    Wisdom(WisdomError),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::InvalidShape(e) => write!(f, "invalid candidate shape: {e}"),
            TuneError::NoCandidates { n, procs } => {
                write!(f, "no valid SOI parameterization for n={n}, procs={procs}")
            }
            TuneError::NoWisdom { n, procs } => write!(
                f,
                "wisdom-only planning requested but no wisdom covers n={n}, procs={procs}"
            ),
            TuneError::Probe(msg) => write!(f, "probe failed: {msg}"),
            TuneError::Wisdom(e) => write!(f, "wisdom persistence failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

impl From<WisdomError> for TuneError {
    fn from(e: WisdomError) -> Self {
        TuneError::Wisdom(e)
    }
}

/// Effective machine rates — the cost-model coefficients the tuner
/// refits from measured probes. Convertible to the core crate's
/// [`soifft_core::SimSpec`] for [`PlanReport::predicted_phases`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RateModel {
    /// Effective node-local FFT rate, flops/s.
    pub fft_flops_per_s: f64,
    /// Effective convolution rate, flops/s.
    pub conv_flops_per_s: f64,
    /// Per-rank injection bandwidth, bytes/s.
    pub net_bytes_per_s: f64,
    /// Per-exchange latency floor, seconds.
    pub net_latency_s: f64,
}

impl RateModel {
    /// A deliberately generic prior: plausible for commodity hardware but
    /// expected to be off by a sizable factor on any particular machine —
    /// the refit-shrinks-error acceptance test measures exactly that gap
    /// closing.
    pub fn default_prior() -> Self {
        RateModel {
            fft_flops_per_s: 2.0e9,
            conv_flops_per_s: 4.0e9,
            net_bytes_per_s: 4.0e9,
            net_latency_s: 5.0e-6,
        }
    }

    /// The core crate's simulation spec with these rates.
    pub fn to_sim(self) -> soifft_core::SimSpec {
        soifft_core::SimSpec {
            fft_flops_per_s: self.fft_flops_per_s,
            conv_flops_per_s: self.conv_flops_per_s,
            net_bytes_per_s: self.net_bytes_per_s,
            net_latency_s: self.net_latency_s,
        }
    }
}

/// Measured wall seconds per pipeline phase, reduced max-over-ranks from
/// the trace ledger (the slowest rank sets the superstep's critical
/// path).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseSeconds {
    /// Ghost exchange.
    pub ghost_s: f64,
    /// Convolution `u = Wx` (under the fused front end this record also
    /// contains the block DFTs — see [`Observation::fused`]).
    pub convolution_s: f64,
    /// Block DFTs (`I ⊗ F_L`); zero under the fused front end, which
    /// records no separate `segment-fft` phase.
    pub segment_fft_s: f64,
    /// The single all-to-all.
    pub all_to_all_s: f64,
    /// Recovery FFTs.
    pub local_fft_s: f64,
}

impl PhaseSeconds {
    /// Max-over-ranks per-phase seconds from each rank's
    /// [`CommStats`] ledger snapshot.
    pub fn from_stats(stats: &[CommStats]) -> Self {
        let max_of = |name: &str| {
            stats
                .iter()
                .map(|s| s.seconds_in(name))
                .fold(0.0_f64, f64::max)
        };
        PhaseSeconds {
            ghost_s: max_of("ghost"),
            convolution_s: max_of("convolution"),
            segment_fft_s: max_of("segment-fft"),
            all_to_all_s: max_of("all-to-all"),
            local_fft_s: max_of("local-fft"),
        }
    }

    /// Sum over phases.
    pub fn total_s(&self) -> f64 {
        self.ghost_s
            + self.convolution_s
            + self.segment_fft_s
            + self.all_to_all_s
            + self.local_fft_s
    }
}

/// One reconciled probe: the plan's static byte/flop counts plus the
/// measured per-phase seconds, ready for [`Tuner::refit`].
#[derive(Clone, Debug)]
pub struct Observation {
    /// Static counts for the probed plan.
    pub report: PlanReport,
    /// Whether the probed plan used the fused front end. Fusion records
    /// the convolution and the block DFTs as one `convolution` ledger
    /// entry with no `segment-fft` record, so the refit must attribute
    /// `conv_flops + seg_fft_flops` to that single measurement.
    pub fused: bool,
    /// Measured per-phase seconds.
    pub phases: PhaseSeconds,
}

/// One point of the candidate space: a transform shape plus execution
/// knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// SOI shape (`N`, `P`, `S`, `µ`, `B`).
    pub params: SoiParams,
    /// Execution knobs.
    pub exec: registry::TunedExec,
    /// Back-half precision.
    pub precision: Precision,
}

impl Candidate {
    /// Builds the distributed FFT for this candidate. Precision is
    /// applied *before* the explicit knobs so a registry hit inside
    /// `with_precision` cannot override the candidate under test.
    pub fn build(&self) -> Result<SoiFft, SoiError> {
        Ok(SoiFft::new(self.params)?
            .with_precision(self.precision)
            .with_tuned_exec(self.exec))
    }

    /// The registry key this candidate would be installed under.
    pub fn key(&self) -> registry::WisdomKey {
        registry::WisdomKey {
            n: self.params.n,
            procs: self.params.procs,
            precision: self.precision,
        }
    }

    /// Stable one-line description (used for dedup and logs).
    pub fn describe(&self) -> String {
        format!(
            "s={} mu={}/{} b={} strategy={} exchange={} fused={}",
            self.params.segments_per_proc,
            self.params.mu.num(),
            self.params.mu.den(),
            self.params.conv_width,
            self.exec.strategy.label(),
            wisdom::exchange_label(self.exec.exchange),
            u8::from(self.exec.fused),
        )
    }
}

/// A tuning request: the shape to plan for plus search bounds.
#[derive(Clone, Copy, Debug)]
pub struct TuneRequest {
    /// Total transform size `N`.
    pub n: usize,
    /// Rank count `P`.
    pub procs: usize,
    /// Back-half precision.
    pub precision: Precision,
    /// Baseline shape; `None` means [`SoiParams::suggest`].
    pub base: Option<SoiParams>,
    /// Also vary the SOI shape `(S, µ, B)` — never below the baseline's
    /// accuracy exponent. When false only execution knobs are explored.
    pub explore_shapes: bool,
    /// How many model-ranked candidates to probe under [`Tier::Measure`]
    /// (the default plan is always probed in addition).
    pub top_k: usize,
    /// Timed repetitions per probe; the best (minimum) wall is kept.
    pub reps: usize,
}

impl TuneRequest {
    /// A request with the default search bounds.
    pub fn new(n: usize, procs: usize) -> Self {
        TuneRequest {
            n,
            procs,
            precision: Precision::F64,
            base: None,
            explore_shapes: true,
            top_k: 4,
            reps: 2,
        }
    }
}

/// Where the chosen plan came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanSource {
    /// Loaded from persisted wisdom; zero probes run.
    Wisdom,
    /// Picked by measured probes this run.
    Measured,
    /// Picked by the cost model alone.
    Estimated,
}

/// The result of one [`Tuner::plan`] call.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The winning candidate (its `params` may differ from the baseline
    /// when shape exploration found a faster valid shape — callers adopt
    /// it explicitly by building from `chosen.params`).
    pub chosen: Candidate,
    /// Provenance of the decision.
    pub source: PlanSource,
    /// Probes executed by this call (0 for wisdom hits and estimates).
    pub probes_run: usize,
    /// Best measured wall seconds of the winner, when probed.
    pub measured_s: Option<f64>,
    /// Best measured wall seconds of the default plan, when probed.
    pub default_measured_s: Option<f64>,
    /// Model-predicted seconds for the winner under the current rates.
    pub predicted_s: f64,
    /// Mean per-phase relative prediction error over this run's probes
    /// *before* the refit.
    pub prior_error: Option<f64>,
    /// Same, re-evaluated *after* the refit. The acceptance test asserts
    /// `post_error < prior_error`.
    pub post_error: Option<f64>,
}

/// Shape grid explored when [`TuneRequest::explore_shapes`] is set:
/// `(µ num, µ den, B)` points spanning the paper's accuracy/flops
/// trade (§4): wide guard bands (8/7, 72) down to cheap high-µ points
/// (2, 16) whose exponent still beats the default's.
const SHAPE_GRID: &[(usize, usize, usize)] = &[
    (8, 7, 72),
    (8, 7, 36),
    (5, 4, 48),
    (4, 3, 36),
    (3, 2, 24),
    (2, 1, 16),
];

/// Segments-per-rank grid (§6.1 explores 1–32).
const SEGMENT_GRID: &[usize] = &[1, 2, 4, 8, 16, 32];

/// Chunk/proxy granularity probed for the pipelined exchanges.
const CHUNK_ELEMS: usize = 8192;

/// Working-set size above which the row-major convolution's strided
/// sweep is penalized in the prior (nominal shared-LLC bytes).
const LLC_BYTES: usize = 32 << 20;

/// Prior discount for the fused front end: one fewer sweep over `u`
/// (§5.3 loop fusion).
const FUSED_SWEEP_FACTOR: f64 = 0.9;

/// The self-tuning planner: model prior, measured probes, persisted
/// wisdom.
#[derive(Debug)]
pub struct Tuner {
    rates: RateModel,
    entries: Vec<WisdomEntry>,
    fingerprint: String,
    path: Option<PathBuf>,
    degraded: Option<WisdomError>,
}

impl Tuner {
    /// A tuner with no persistence: default-prior rates, empty wisdom.
    pub fn in_memory() -> Self {
        Tuner {
            rates: RateModel::default_prior(),
            entries: Vec::new(),
            fingerprint: machine_fingerprint(),
            path: None,
            degraded: None,
        }
    }

    /// A tuner backed by the wisdom file at `path`. A missing file is a
    /// fresh start; a malformed, stale-schema, checksum-failing or
    /// foreign-fingerprint file **degrades** to an empty tuner (the
    /// error is kept in [`Tuner::degraded`]) rather than failing or
    /// adopting bogus plans. Loaded entries are installed in the
    /// in-process registry immediately.
    pub fn with_wisdom_file(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref().to_path_buf();
        let mut tuner = Tuner::in_memory();
        if !path.exists() {
            tuner.path = Some(path);
            return tuner;
        }
        match WisdomFile::load_for(&path, &tuner.fingerprint) {
            Ok(file) => {
                tuner.rates = file.rates;
                tuner.entries = file.entries;
                for e in &tuner.entries {
                    registry::install(e.key(), e.exec);
                }
            }
            Err(e) => tuner.degraded = Some(e),
        }
        tuner.path = Some(path);
        tuner
    }

    /// The load error, if construction degraded to an empty tuner.
    pub fn degraded(&self) -> Option<&WisdomError> {
        self.degraded.as_ref()
    }

    /// Current rate coefficients.
    pub fn rates(&self) -> &RateModel {
        &self.rates
    }

    /// Overrides the rate coefficients (tests; calibrated priors).
    pub fn set_rates(&mut self, rates: RateModel) {
        self.rates = rates;
    }

    /// Wisdom entries currently held (loaded + learned this session).
    pub fn entries(&self) -> &[WisdomEntry] {
        &self.entries
    }

    /// This tuner's machine fingerprint.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The baseline (default) candidate for a request: the shape the
    /// untuned path would run, with the untuned execution knobs.
    pub fn default_candidate(&self, req: &TuneRequest) -> Result<Candidate, TuneError> {
        let params = match req.base {
            Some(p) => p,
            None => SoiParams::suggest(req.n, req.procs).ok_or(TuneError::NoCandidates {
                n: req.n,
                procs: req.procs,
            })?,
        };
        params.validate().map_err(TuneError::InvalidShape)?;
        // Mirror `SoiFft`'s construction defaults exactly, so "default"
        // here means what an untuned caller actually runs.
        Ok(Candidate {
            params,
            exec: registry::TunedExec {
                strategy: ConvStrategy::InterchangedBuffered,
                exchange: ExchangePlan::Monolithic,
                fused: false,
            },
            precision: req.precision,
        })
    }

    /// Enumerates the candidate space for `req`, deterministically
    /// ordered. Shape exploration keeps only shapes whose accuracy
    /// exponent is at least the baseline's: the tuner never trades
    /// accuracy for speed.
    pub fn enumerate(&self, req: &TuneRequest) -> Result<Vec<Candidate>, TuneError> {
        let base = self.default_candidate(req)?.params;
        let base_exponent = PlanReport::new(base)
            .map_err(|(e, _)| TuneError::InvalidShape(e))?
            .accuracy_exponent;

        let mut shapes: Vec<SoiParams> = vec![base];
        if req.explore_shapes {
            let mut grid: Vec<(usize, usize, usize)> = SHAPE_GRID.to_vec();
            let base_point = (base.mu.num(), base.mu.den(), base.conv_width);
            if !grid.contains(&base_point) {
                grid.push(base_point);
            }
            for &s in SEGMENT_GRID {
                for &(num, den, b) in &grid {
                    let p = SoiParams {
                        n: req.n,
                        procs: req.procs,
                        segments_per_proc: s,
                        mu: Rational::new(num, den),
                        conv_width: b,
                    };
                    if p == base || p.validate().is_err() {
                        continue;
                    }
                    let Ok(report) = PlanReport::new(p) else {
                        continue;
                    };
                    // Strictly never below the baseline's accuracy.
                    if report.accuracy_exponent + 1e-9 < base_exponent {
                        continue;
                    }
                    if !shapes.contains(&p) {
                        shapes.push(p);
                    }
                }
            }
        }

        let exchanges = [
            ExchangePlan::Monolithic,
            ExchangePlan::Chunked(CHUNK_ELEMS),
            ExchangePlan::PerSegment,
            ExchangePlan::Overlapped,
            ExchangePlan::Proxied(CHUNK_ELEMS),
        ];
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |cand: Candidate, out: &mut Vec<Candidate>| {
            let tag = format!(
                "{} {} {}",
                cand.params.segments_per_proc,
                cand.params.conv_width,
                cand.describe()
            );
            if seen.insert(tag) {
                out.push(cand);
            }
        };
        for &params in &shapes {
            for strategy in ConvStrategy::ALL {
                for exchange in exchanges {
                    push(
                        Candidate {
                            params,
                            exec: registry::TunedExec {
                                strategy,
                                exchange,
                                fused: false,
                            },
                            precision: req.precision,
                        },
                        &mut out,
                    );
                }
            }
            // Fusion forces the row-major sweep; one candidate per
            // exchange plan.
            for exchange in exchanges {
                push(
                    Candidate {
                        params,
                        exec: registry::TunedExec {
                            strategy: ConvStrategy::RowMajor,
                            exchange,
                            fused: true,
                        },
                        precision: req.precision,
                    },
                    &mut out,
                );
            }
        }
        if out.is_empty() {
            return Err(TuneError::NoCandidates {
                n: req.n,
                procs: req.procs,
            });
        }
        Ok(out)
    }

    /// Model-predicted seconds for one candidate under the current
    /// rates: the per-phase breakdown from [`PlanReport`], adjusted for
    /// the candidate's execution knobs (strategy cache behaviour, fused
    /// sweep saving, and the §6.1 overlap timeline for pipelined
    /// exchanges via [`soifft_model::schedule`]).
    pub fn prior_seconds(&self, cand: &Candidate) -> Result<f64, TuneError> {
        let report = PlanReport::new(cand.params).map_err(|(e, _)| TuneError::InvalidShape(e))?;
        let b = report.predicted_phases(&self.rates.to_sim());

        let working_set = report.tap_bytes + report.conv_out_bytes;
        let strategy_factor = if cand.exec.fused {
            1.0
        } else {
            match cand.exec.strategy {
                ConvStrategy::RowMajor => {
                    if working_set > LLC_BYTES {
                        1.5
                    } else {
                        1.1
                    }
                }
                ConvStrategy::Interchanged => 1.05,
                ConvStrategy::InterchangedBuffered => 1.0,
            }
        };
        let mut conv_s = b.convolution_s * strategy_factor;
        let mut seg_s = b.segment_fft_s;
        if cand.exec.fused {
            conv_s = (conv_s + seg_s) * FUSED_SWEEP_FACTOR;
            seg_s = 0.0;
        }
        let preamble = b.ghost_s + conv_s + seg_s;

        let s = cand.params.segments_per_proc as u32;
        let overlapped = matches!(
            cand.exec.exchange,
            ExchangePlan::PerSegment | ExchangePlan::Overlapped
        );
        if overlapped && s > 1 {
            let t = soifft_model::schedule::try_overlapped_timeline(
                preamble,
                b.all_to_all_s / f64::from(s),
                b.local_fft_s / f64::from(s),
                s,
            )
            .expect("s > 1 segments");
            Ok(t.total)
        } else {
            Ok(preamble + b.all_to_all_s + b.local_fft_s)
        }
    }

    /// Mean absolute per-phase prediction error relative to the measured
    /// total: `Σ|pred_i − meas_i| / Σ meas_i`. Under a fused plan the
    /// predicted convolution and segment-FFT phases are compared jointly
    /// against the single measured `convolution` record.
    pub fn prediction_error(&self, report: &PlanReport, fused: bool, m: &PhaseSeconds) -> f64 {
        let p = report.predicted_phases(&self.rates.to_sim());
        let pairs: Vec<(f64, f64)> = if fused {
            vec![
                (p.ghost_s, m.ghost_s),
                (p.convolution_s + p.segment_fft_s, m.convolution_s),
                (p.all_to_all_s, m.all_to_all_s),
                (p.local_fft_s, m.local_fft_s),
            ]
        } else {
            vec![
                (p.ghost_s, m.ghost_s),
                (p.convolution_s, m.convolution_s),
                (p.segment_fft_s, m.segment_fft_s),
                (p.all_to_all_s, m.all_to_all_s),
                (p.local_fft_s, m.local_fft_s),
            ]
        };
        let denom: f64 = pairs.iter().map(|&(_, meas)| meas).sum();
        if denom <= 0.0 {
            return 0.0;
        }
        pairs
            .iter()
            .map(|&(pred, meas)| (pred - meas).abs())
            .sum::<f64>()
            / denom
    }

    /// Refits the rate coefficients from measured observations: each
    /// rate becomes total attributed work over total measured seconds.
    /// Fused observations attribute `conv + seg_fft` flops to the single
    /// combined `convolution` measurement. The latency floor is the mean
    /// measured ghost time in excess of its bandwidth term, clamped at
    /// zero. Phases with no measured time leave their coefficient
    /// untouched.
    pub fn refit(&mut self, observations: &[Observation]) {
        let (mut conv_flops, mut conv_secs) = (0.0_f64, 0.0_f64);
        let (mut fft_flops, mut fft_secs) = (0.0_f64, 0.0_f64);
        let (mut net_bytes, mut net_secs) = (0.0_f64, 0.0_f64);
        for o in observations {
            if o.fused {
                conv_flops += o.report.conv_flops + o.report.seg_fft_flops;
                conv_secs += o.phases.convolution_s;
            } else {
                conv_flops += o.report.conv_flops;
                conv_secs += o.phases.convolution_s;
                fft_flops += o.report.seg_fft_flops;
                fft_secs += o.phases.segment_fft_s;
            }
            fft_flops += o.report.recovery_fft_flops;
            fft_secs += o.phases.local_fft_s;
            net_bytes += o.report.alltoall_bytes as f64;
            net_secs += o.phases.all_to_all_s;
        }
        if conv_secs > 0.0 && conv_flops > 0.0 {
            self.rates.conv_flops_per_s = conv_flops / conv_secs;
        }
        if fft_secs > 0.0 && fft_flops > 0.0 {
            self.rates.fft_flops_per_s = fft_flops / fft_secs;
        }
        if net_secs > 0.0 && net_bytes > 0.0 {
            self.rates.net_bytes_per_s = net_bytes / net_secs;
        }
        let latencies: Vec<f64> = observations
            .iter()
            .filter(|o| o.phases.ghost_s > 0.0 && o.report.ghost_bytes > 0)
            .map(|o| {
                (o.phases.ghost_s - o.report.ghost_bytes as f64 / self.rates.net_bytes_per_s)
                    .max(0.0)
            })
            .collect();
        if !latencies.is_empty() {
            self.rates.net_latency_s = latencies.iter().sum::<f64>() / latencies.len() as f64;
        }
    }

    fn entry_for(&self, n: usize, procs: usize, precision: Precision) -> Option<WisdomEntry> {
        self.entries
            .iter()
            .find(|e| e.params.n == n && e.params.procs == procs && e.precision == precision)
            .cloned()
    }

    fn upsert(&mut self, entry: WisdomEntry) {
        match self.entries.iter_mut().find(|e| {
            e.params.n == entry.params.n
                && e.params.procs == entry.params.procs
                && e.precision == entry.precision
        }) {
            Some(slot) => *slot = entry,
            None => self.entries.push(entry),
        }
    }

    /// Plans for `req` at the given rigor. All tiers install the chosen
    /// execution knobs in the in-process registry so subsequent
    /// [`SoiFft::with_window`] / serve-engine constructions of the same
    /// shape pick them up.
    pub fn plan(
        &mut self,
        req: &TuneRequest,
        tier: Tier,
        prober: &mut dyn Prober,
    ) -> Result<TuneOutcome, TuneError> {
        // Warm wisdom answers every tier without probing.
        if let Some(entry) = self.entry_for(req.n, req.procs, req.precision) {
            let chosen = Candidate {
                params: entry.params,
                exec: entry.exec,
                precision: entry.precision,
            };
            registry::install(entry.key(), entry.exec);
            let predicted_s = self.prior_seconds(&chosen)?;
            return Ok(TuneOutcome {
                chosen,
                source: PlanSource::Wisdom,
                probes_run: 0,
                measured_s: Some(entry.measured_s),
                default_measured_s: None,
                predicted_s,
                prior_error: None,
                post_error: None,
            });
        }
        if tier == Tier::WisdomOnly {
            return Err(TuneError::NoWisdom {
                n: req.n,
                procs: req.procs,
            });
        }

        let candidates = self.enumerate(req)?;
        let mut ranked: Vec<(f64, Candidate)> = Vec::with_capacity(candidates.len());
        for cand in candidates {
            ranked.push((self.prior_seconds(&cand)?, cand));
        }
        // Stable sort: equal priors keep enumeration order, so ranking
        // is deterministic.
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));

        if tier == Tier::Estimate {
            let (predicted_s, chosen) = ranked[0];
            registry::install(chosen.key(), chosen.exec);
            return Ok(TuneOutcome {
                chosen,
                source: PlanSource::Estimated,
                probes_run: 0,
                measured_s: None,
                default_measured_s: None,
                predicted_s,
                prior_error: None,
                post_error: None,
            });
        }

        // Measure: always probe the default plan first so the tuned pick
        // can never be adopted on a worse measurement than the default's.
        let default_cand = self.default_candidate(req)?;
        let mut probe_set: Vec<Candidate> = vec![default_cand];
        for &(_, cand) in ranked.iter().take(req.top_k.max(1)) {
            if cand != default_cand {
                probe_set.push(cand);
            }
        }

        let mut observations = Vec::with_capacity(probe_set.len());
        let mut measured: Vec<(f64, Candidate)> = Vec::with_capacity(probe_set.len());
        for cand in &probe_set {
            let m = prober.probe(cand, req.reps)?;
            let report =
                PlanReport::new(cand.params).map_err(|(e, _)| TuneError::InvalidShape(e))?;
            observations.push(Observation {
                report,
                fused: cand.exec.fused,
                phases: m.phases,
            });
            measured.push((m.wall_s, *cand));
        }

        let mean_error = |tuner: &Tuner| {
            observations
                .iter()
                .map(|o| tuner.prediction_error(&o.report, o.fused, &o.phases))
                .sum::<f64>()
                / observations.len() as f64
        };
        let prior_error = mean_error(self);
        self.refit(&observations);
        let post_error = mean_error(self);

        let (best_wall, chosen) = measured
            .iter()
            .copied()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("probe set is never empty");
        let default_wall = measured[0].0;

        let entry = WisdomEntry {
            params: chosen.params,
            exec: chosen.exec,
            precision: chosen.precision,
            measured_s: best_wall,
        };
        registry::install(entry.key(), entry.exec);
        self.upsert(entry);
        self.save()?;

        let predicted_s = self.prior_seconds(&chosen)?;
        Ok(TuneOutcome {
            chosen,
            source: PlanSource::Measured,
            probes_run: probe_set.len(),
            measured_s: Some(best_wall),
            default_measured_s: Some(default_wall),
            predicted_s,
            prior_error: Some(prior_error),
            post_error: Some(post_error),
        })
    }

    /// Persists rates + entries to the wisdom file (atomic tmp + rename).
    /// A no-op for in-memory tuners.
    pub fn save(&self) -> Result<(), WisdomError> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let file = WisdomFile {
            fingerprint: self.fingerprint.clone(),
            rates: self.rates,
            entries: self.entries.clone(),
        };
        file.save(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic fake prober: "measures" a candidate as its model
    /// prior under fixed synthetic rates, plus a seed-keyed jitter that
    /// is a pure function of (seed, candidate). Two same-seed tuner runs
    /// therefore observe identical measurements.
    pub(crate) struct SyntheticProber {
        seed: u64,
        rates: RateModel,
        pub probes: usize,
    }

    impl SyntheticProber {
        pub(crate) fn new(seed: u64) -> Self {
            SyntheticProber {
                seed,
                rates: RateModel {
                    fft_flops_per_s: 1.1e9,
                    conv_flops_per_s: 2.3e9,
                    net_bytes_per_s: 1.7e9,
                    net_latency_s: 2.0e-6,
                },
                probes: 0,
            }
        }

        fn jitter(&self, cand: &Candidate) -> f64 {
            let mut h = 0xcbf2_9ce4_8422_2325_u64 ^ self.seed;
            for b in cand.describe().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            // ±2 % multiplicative jitter.
            1.0 + ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.04
        }
    }

    impl Prober for SyntheticProber {
        fn probe(&mut self, cand: &Candidate, _reps: usize) -> Result<ProbeMeasurement, TuneError> {
            self.probes += 1;
            let report =
                PlanReport::new(cand.params).map_err(|(e, _)| TuneError::InvalidShape(e))?;
            let b = report.predicted_phases(&self.rates.to_sim());
            let j = self.jitter(cand);
            let fused = cand.exec.fused;
            let phases = PhaseSeconds {
                ghost_s: b.ghost_s * j,
                convolution_s: if fused {
                    (b.convolution_s + b.segment_fft_s) * j
                } else {
                    b.convolution_s * j
                },
                segment_fft_s: if fused { 0.0 } else { b.segment_fft_s * j },
                all_to_all_s: b.all_to_all_s * j,
                local_fft_s: b.local_fft_s * j,
            };
            Ok(ProbeMeasurement {
                wall_s: phases.total_s(),
                phases,
            })
        }
    }

    fn request() -> TuneRequest {
        TuneRequest::new(1 << 14, 4)
    }

    #[test]
    fn enumeration_is_deterministic_and_respects_accuracy_floor() {
        let tuner = Tuner::in_memory();
        let req = request();
        let a = tuner.enumerate(&req).unwrap();
        let b = tuner.enumerate(&req).unwrap();
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        assert!(
            a.len() > 20,
            "expected a real candidate space, got {}",
            a.len()
        );

        let base = tuner.default_candidate(&req).unwrap().params;
        let floor = PlanReport::new(base).unwrap().accuracy_exponent;
        for cand in &a {
            let exp = PlanReport::new(cand.params).unwrap().accuracy_exponent;
            assert!(
                exp + 1e-6 >= floor,
                "candidate {} trades accuracy: {exp} < {floor}",
                cand.describe()
            );
        }
    }

    #[test]
    fn estimate_tier_never_probes() {
        let mut tuner = Tuner::in_memory();
        let mut prober = SyntheticProber::new(7);
        let out = tuner.plan(&request(), Tier::Estimate, &mut prober).unwrap();
        assert_eq!(out.source, PlanSource::Estimated);
        assert_eq!(out.probes_run, 0);
        assert_eq!(prober.probes, 0);
        assert!(out.predicted_s > 0.0);
    }

    #[test]
    fn wisdom_only_fails_closed_without_wisdom() {
        let mut tuner = Tuner::in_memory();
        let mut prober = SyntheticProber::new(7);
        let err = tuner
            .plan(&request(), Tier::WisdomOnly, &mut prober)
            .unwrap_err();
        assert!(matches!(err, TuneError::NoWisdom { .. }));
        assert_eq!(prober.probes, 0);
    }

    #[test]
    fn measure_tier_probes_default_and_never_loses_to_it() {
        let mut tuner = Tuner::in_memory();
        let req = request();
        let mut prober = SyntheticProber::new(42);
        let out = tuner.plan(&req, Tier::Measure, &mut prober).unwrap();
        assert_eq!(out.source, PlanSource::Measured);
        assert!(out.probes_run >= 2);
        assert_eq!(prober.probes, out.probes_run);
        let best = out.measured_s.unwrap();
        let default = out.default_measured_s.unwrap();
        assert!(
            best <= default,
            "tuned pick measured {best} slower than default {default}"
        );
        // The winner is persisted in-session: a second plan call is a
        // wisdom hit with zero probes.
        let out2 = tuner.plan(&req, Tier::Measure, &mut prober).unwrap();
        assert_eq!(out2.source, PlanSource::Wisdom);
        assert_eq!(out2.probes_run, 0);
        assert_eq!(prober.probes, out.probes_run);
        assert_eq!(out2.chosen, out.chosen);
    }

    #[test]
    fn same_seed_runs_pick_the_same_plan() {
        let req = request();
        let run = || {
            let mut tuner = Tuner::in_memory();
            let mut prober = SyntheticProber::new(1234);
            tuner.plan(&req, Tier::Measure, &mut prober).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.chosen, b.chosen);
        assert_eq!(a.measured_s, b.measured_s);
        assert_eq!(a.probes_run, b.probes_run);
    }

    #[test]
    fn refit_shrinks_prediction_error() {
        let mut tuner = Tuner::in_memory();
        let req = request();
        let mut prober = SyntheticProber::new(99);
        let out = tuner.plan(&req, Tier::Measure, &mut prober).unwrap();
        let prior = out.prior_error.unwrap();
        let post = out.post_error.unwrap();
        assert!(
            post < prior,
            "refit did not shrink per-phase prediction error: {prior} -> {post}"
        );
    }

    #[test]
    fn refit_handles_fused_observations() {
        // One fused observation: conv + seg-fft flops land in the single
        // combined convolution measurement; the fitted conv rate must
        // reflect the combined work, and the fft rate only the recovery.
        let params = SoiParams::suggest(1 << 14, 4).unwrap();
        let report = PlanReport::new(params).unwrap();
        let phases = PhaseSeconds {
            ghost_s: 0.0,
            convolution_s: 0.010,
            segment_fft_s: 0.0,
            all_to_all_s: 0.004,
            local_fft_s: 0.005,
        };
        let mut tuner = Tuner::in_memory();
        tuner.refit(&[Observation {
            report: report.clone(),
            fused: true,
            phases,
        }]);
        let expect_conv = (report.conv_flops + report.seg_fft_flops) / 0.010;
        let expect_fft = report.recovery_fft_flops / 0.005;
        assert!((tuner.rates().conv_flops_per_s - expect_conv).abs() / expect_conv < 1e-12);
        assert!((tuner.rates().fft_flops_per_s - expect_fft).abs() / expect_fft < 1e-12);
    }
}
