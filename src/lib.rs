//! # soifft — low-communication distributed 1D FFT
//!
//! Umbrella crate for the `soifft` workspace, a from-scratch Rust
//! reproduction of *"Tera-Scale 1D FFT with Low-Communication Algorithm and
//! Intel Xeon Phi Coprocessors"* (Park et al., SC '13). It re-exports the
//! public API of every subsystem:
//!
//! * [`num`] — complex arithmetic, layouts, special functions,
//! * [`par`] — intra-node parallel-for substrate,
//! * [`fft`] — node-local FFT library (mixed-radix, Bluestein, 6-step),
//! * [`cluster`] — simulated message-passing cluster runtime,
//! * [`soi`] — the Segment-of-Interest low-communication FFT itself,
//! * [`ct`] — the conventional distributed Cooley–Tukey baseline,
//! * [`model`] — the paper's performance model (sections 4 and 7),
//! * [`serve`] — overload-safe multi-tenant serving front end (admission
//!   control, deadlines, backpressure, graceful degradation),
//! * [`tune`] — self-tuning planner: measured-probe auto-tuner with
//!   persisted, machine-keyed wisdom (FFTW-style Estimate / Measure /
//!   WisdomOnly tiers).
//!
//! ## Quickstart
//!
//! ```
//! use soifft::num::c64;
//! use soifft::fft::Plan;
//!
//! // A node-local FFT:
//! let plan = Plan::new(1024);
//! let mut data: Vec<c64> = (0..1024)
//!     .map(|i| c64::new((i as f64 * 0.1).sin(), 0.0))
//!     .collect();
//! plan.forward(&mut data);
//! ```
//!
//! See `examples/quickstart.rs` for the distributed SOI transform.

pub use soifft_cluster as cluster;
pub use soifft_core as soi;
pub use soifft_ct as ct;
pub use soifft_fft as fft;
pub use soifft_model as model;
pub use soifft_num as num;
pub use soifft_par as par;
pub use soifft_serve as serve;
pub use soifft_tune as tune;
