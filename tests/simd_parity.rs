//! Scalar ↔ SIMD bit-parity for the hot kernels in `soifft_num::simd`.
//!
//! The dispatchers promise that the AVX2 path is **bit-identical** to the
//! scalar fallback on the same inputs (the scalar references mirror the
//! vector accumulator-lane structure, so even the reduction order
//! matches). These properties pin that promise across random lengths —
//! including the ragged tails the vector kernels handle specially — and
//! random finite values.
//!
//! On hosts without AVX2+FMA (or with `SOIFFT_FORCE_SCALAR=1`) the
//! dispatchers take the scalar path and every property holds trivially;
//! the CI matrix runs both configurations.

use proptest::prelude::*;
use soifft::num::kernels;
use soifft::num::simd;
use soifft::num::{c32, c64};

/// Deterministic finite values in [-1, 1); same xorshift as the bench
/// signal generator so failures reproduce from `(len, seed)` alone.
fn stream(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    }
}

fn vec_c64(len: usize, seed: u64) -> Vec<c64> {
    let mut next = stream(seed);
    (0..len).map(|_| c64::new(next(), next())).collect()
}

fn vec_c32(len: usize, seed: u64) -> Vec<c32> {
    let mut next = stream(seed);
    (0..len)
        .map(|_| c32::new(next() as f32, next() as f32))
        .collect()
}

fn bits64(v: &[c64]) -> Vec<(u64, u64)> {
    v.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

fn bits32(v: &[c32]) -> Vec<(u32, u32)> {
    v.iter().map(|z| (z.re.to_bits(), z.im.to_bits())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `dot` (c64): dispatcher == two-lane scalar reference, bitwise.
    #[test]
    fn dot_c64_parity(len in 0usize..70, seed in proptest::prelude::any::<u64>()) {
        let t = vec_c64(len, seed);
        let x = vec_c64(len, seed ^ 0xABCD);
        let got = simd::dot_c64(&t, &x);
        let want = kernels::dot_scalar(&t, &x);
        prop_assert_eq!(got.re.to_bits(), want.re.to_bits());
        prop_assert_eq!(got.im.to_bits(), want.im.to_bits());
    }

    /// `dot` (c32): dispatcher == four-lane scalar reference, bitwise.
    #[test]
    fn dot_c32_parity(len in 0usize..70, seed in proptest::prelude::any::<u64>()) {
        let t = vec_c32(len, seed);
        let x = vec_c32(len, seed ^ 0xABCD);
        let got = simd::dot_c32(&t, &x);
        let want = simd::dot_c32_scalar(&t, &x);
        prop_assert_eq!(got.re.to_bits(), want.re.to_bits());
        prop_assert_eq!(got.im.to_bits(), want.im.to_bits());
    }

    /// Split dot (f32 operands, f64 accumulate): widening makes every
    /// product exact, so SIMD and scalar agree bitwise too.
    #[test]
    fn dot_split_parity(len in 0usize..70, seed in proptest::prelude::any::<u64>()) {
        let t = vec_c32(len, seed);
        let x = vec_c32(len, seed ^ 0xABCD);
        let got = simd::dot_split(&t, &x);
        let want = simd::dot_split_scalar(&t, &x);
        prop_assert_eq!(got.re.to_bits(), want.re.to_bits());
        prop_assert_eq!(got.im.to_bits(), want.im.to_bits());
    }

    /// Pointwise multiply, both widths (element-wise: no reduction order
    /// to worry about, but FMA contraction must round identically).
    #[test]
    fn mul_pointwise_parity(len in 0usize..70, seed in proptest::prelude::any::<u64>()) {
        let scale64 = vec_c64(len, seed ^ 0x5A5A);
        let mut a64 = vec_c64(len, seed);
        let mut b64 = a64.clone();
        simd::mul_pointwise_c64(&mut a64, &scale64);
        kernels::mul_pointwise_scalar(&mut b64, &scale64);
        prop_assert_eq!(bits64(&a64), bits64(&b64));

        let scale32 = vec_c32(len, seed ^ 0x5A5A);
        let mut a32 = vec_c32(len, seed);
        let mut b32 = a32.clone();
        simd::mul_pointwise_c32(&mut a32, &scale32);
        kernels::mul_pointwise_scalar(&mut b32, &scale32);
        prop_assert_eq!(bits32(&a32), bits32(&b32));
    }

    /// Planar (SoA) pointwise multiply over split re/im arrays.
    #[test]
    fn mul_pointwise_planar_parity(len in 0usize..70, seed in proptest::prelude::any::<u64>()) {
        let mut next = stream(seed);
        let mut are: Vec<f64> = (0..len).map(|_| next()).collect();
        let mut aim: Vec<f64> = (0..len).map(|_| next()).collect();
        let bre: Vec<f64> = (0..len).map(|_| next()).collect();
        let bim: Vec<f64> = (0..len).map(|_| next()).collect();
        let mut sre = are.clone();
        let mut sim_ = aim.clone();
        simd::mul_pointwise_planar_f64(&mut are, &mut aim, &bre, &bim);
        simd::mul_pointwise_planar_scalar(&mut sre, &mut sim_, &bre, &bim);
        let b = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(b(&are), b(&sre));
        prop_assert_eq!(b(&aim), b(&sim_));
    }

    /// Accumulating pointwise multiply (`acc += t·x`), all three widths.
    #[test]
    fn axpy_parity(len in 0usize..70, seed in proptest::prelude::any::<u64>()) {
        let t64 = vec_c64(len, seed ^ 1);
        let x64 = vec_c64(len, seed ^ 2);
        let mut a = vec_c64(len, seed);
        let mut b = a.clone();
        simd::axpy_pointwise_c64(&mut a, &t64, &x64);
        kernels::axpy_pointwise_scalar(&mut b, &t64, &x64);
        prop_assert_eq!(bits64(&a), bits64(&b));

        let t32 = vec_c32(len, seed ^ 1);
        let x32 = vec_c32(len, seed ^ 2);
        let mut a32 = vec_c32(len, seed);
        let mut b32 = a32.clone();
        simd::axpy_pointwise_c32(&mut a32, &t32, &x32);
        kernels::axpy_pointwise_scalar(&mut b32, &t32, &x32);
        prop_assert_eq!(bits32(&a32), bits32(&b32));

        let mut acc_a = vec_c64(len, seed);
        let mut acc_b = acc_a.clone();
        simd::axpy_split(&mut acc_a, &t32, &x32);
        simd::axpy_split_scalar(&mut acc_b, &t32, &x32);
        prop_assert_eq!(bits64(&acc_a), bits64(&acc_b));
    }

    /// Precision-conversion kernels: exact widening and pure bit
    /// movement, so SIMD must equal scalar on every length (odd tails
    /// exercise the pad-dropping path).
    #[test]
    fn conversion_parity(len in 0usize..70, seed in proptest::prelude::any::<u64>()) {
        let s = vec_c32(len, seed);
        let mut a = vec![c64::ZERO; len];
        let mut b = a.clone();
        simd::promote_c32_c64(&s, &mut a);
        simd::promote_c32_c64_scalar(&s, &mut b);
        prop_assert_eq!(bits64(&a), bits64(&b));

        let wire = vec_c64(len.div_ceil(2), seed ^ 0x77);
        let mut a32 = vec![c32::ZERO; len];
        let mut b32 = a32.clone();
        simd::unpack_c32_pairs(&wire, &mut a32);
        simd::unpack_c32_pairs_scalar(&wire, &mut b32);
        prop_assert_eq!(bits32(&a32), bits32(&b32));
    }

    /// Cache-blocked transpose tile: pure data movement, so parity means
    /// the vector gather/scatter visits exactly the scalar's elements —
    /// ragged edge tiles included. Tiles are ≤ TILE×TILE (8×8) by the
    /// kernel's contract.
    #[test]
    fn transpose_tile_parity(
        rows in 1usize..9,
        cols in 1usize..9,
        seed in proptest::prelude::any::<u64>(),
    ) {
        // Strides ≥ the tile so tiles embed in a larger matrix.
        let src_stride = cols + (seed % 3) as usize;
        let dst_stride = rows + (seed % 5) as usize;

        let src64 = vec_c64(rows * src_stride, seed);
        let mut a = vec![c64::ZERO; cols * dst_stride];
        let mut b = a.clone();
        simd::transpose_tile_c64(&src64, src_stride, &mut a, dst_stride, rows, cols);
        soifft::num::transpose::transpose_tile_scalar(
            &src64, src_stride, &mut b, dst_stride, rows, cols,
        );
        prop_assert_eq!(bits64(&a), bits64(&b));

        let src32 = vec_c32(rows * src_stride, seed);
        let mut a32 = vec![c32::ZERO; cols * dst_stride];
        let mut b32 = a32.clone();
        simd::transpose_tile_c32(&src32, src_stride, &mut a32, dst_stride, rows, cols);
        soifft::num::transpose::transpose_tile_scalar(
            &src32, src_stride, &mut b32, dst_stride, rows, cols,
        );
        prop_assert_eq!(bits32(&a32), bits32(&b32));
    }
}

/// The generic hot-kernel entry points (`kernels::dot`, `::mul_pointwise`,
/// `::axpy_pointwise`) route through the same dispatchers — spot-check the
/// chain end to end so a future refactor can't silently fork the paths.
#[test]
fn generic_entry_points_route_through_dispatchers() {
    let t = vec_c64(37, 7);
    let x = vec_c64(37, 11);
    let d = kernels::dot(&t, &x);
    let s = simd::dot_c64(&t, &x);
    assert_eq!(
        (d.re.to_bits(), d.im.to_bits()),
        (s.re.to_bits(), s.im.to_bits())
    );

    let mut a = vec_c64(37, 13);
    let mut b = a.clone();
    kernels::mul_pointwise(&mut a, &t);
    simd::mul_pointwise_c64(&mut b, &t);
    assert_eq!(bits64(&a), bits64(&b));
}
