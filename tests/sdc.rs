//! Silent-data-corruption (SDC) suite: the ABFT invariant checks of
//! `soifft_core::verify` against seeded bit flips at every compute-side
//! fault site the link layer provably cannot observe.
//!
//! The contract, per [`BitFlipSite`] and [`ValidationPolicy`]:
//!
//! * **Off** — the flipped run *completes* and its spectrum is wrong
//!   (that is the gap the defense exists for);
//! * **CheckOnly** — the flip is detected and reported as
//!   [`CommError::SilentCorruption`], localized to the owning rank (and
//!   segment, where one exists);
//! * **Recover** — the flip is detected, repaired by localized
//!   re-execution, and the recovered spectrum is **bit-identical** to the
//!   fault-free run's; a fault-free run under `Recover` reports zero
//!   detections and zero false positives.

use std::time::Duration;

use soifft::cluster::{
    run_cluster_with_faults, BitFlipSite, ClusterConfig, CommError, CommStats, CrashSite,
    ExchangePolicy, FaultPlan, RankOutcome, RecoveryOutcome, RestartPolicy, ValidationPolicy,
};
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::{gather_output, scatter_input};
use soifft::soi::{Rational, SoiFft, SoiParams, SoiRunError};

const PROCS: usize = 4;
const SEGMENTS_PER_PROC: usize = 2;
const VICTIM: usize = 1;

/// The three sites exercised through the plain resilient pipeline; the
/// fourth ([`BitFlipSite::CheckpointImage`]) needs the supervised
/// checkpointing pipeline and has its own scenarios below.
const PIPELINE_SITES: [BitFlipSite; 3] = [
    BitFlipSite::ConvBuffer,
    BitFlipSite::LocalFftBuffer,
    BitFlipSite::GatheredSegment,
];

fn soi_params() -> SoiParams {
    SoiParams {
        n: 1 << 12,
        procs: PROCS,
        segments_per_proc: SEGMENTS_PER_PROC,
        mu: Rational::new(2, 1),
        conv_width: 40,
    }
}

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new((0.07 * t).sin() - 0.2, 0.5 * (0.013 * t).cos())
        })
        .collect()
}

fn reference_fft(x: &[c64]) -> Vec<c64> {
    let mut y = x.to_vec();
    Plan::new(x.len()).forward(&mut y);
    y
}

fn policy() -> ExchangePolicy {
    ExchangePolicy {
        deadline: Duration::from_secs(2),
        max_rounds: 3,
    }
}

/// For scenarios *expected* to fail: peers of the erroring rank must time
/// out of the collective quickly, not after minutes.
fn short_policy() -> ExchangePolicy {
    ExchangePolicy {
        deadline: Duration::from_millis(300),
        max_rounds: 2,
    }
}

type SdcOutcome = RankOutcome<(Result<Vec<c64>, SoiRunError>, CommStats)>;

/// Runs the resilient SOI pipeline under `plan` and `validation`,
/// returning each rank's result *and* its communication ledger (the SDC
/// counters live there).
fn run_soi(
    plan: FaultPlan,
    validation: ValidationPolicy,
    policy: ExchangePolicy,
) -> Vec<SdcOutcome> {
    let p = soi_params();
    let x = signal(p.n);
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p)
        .expect("valid params")
        .with_validation(validation);
    run_cluster_with_faults(p.procs, plan, move |comm| {
        let res = fft.try_forward(comm, &inputs[comm.rank()], &policy);
        (res, comm.stats().clone())
    })
}

/// Every rank succeeded: gathered spectrum plus per-rank ledgers.
fn unwrap_all(outcomes: Vec<SdcOutcome>) -> (Vec<c64>, Vec<CommStats>) {
    let mut parts = Vec::new();
    let mut ledgers = Vec::new();
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Ok((Ok(y), stats)) => {
                parts.push(y);
                ledgers.push(stats);
            }
            other => panic!("rank {rank}: expected success, got {other:?}"),
        }
    }
    (gather_output(parts), ledgers)
}

// ---------------------------------------------------------------------
// Off: the flip slips through and silently corrupts the spectrum.
// ---------------------------------------------------------------------

#[test]
fn unchecked_flips_complete_with_a_wrong_spectrum() {
    let want = reference_fft(&signal(soi_params().n));
    for site in PIPELINE_SITES {
        let plan = FaultPlan::new(301).bit_flip(VICTIM, site);
        let (got, ledgers) = unwrap_all(run_soi(plan, ValidationPolicy::Off, policy()));
        let err = rel_l2(&got, &want);
        assert!(
            err > 1e-6,
            "{site:?}: an unchecked flip must corrupt the spectrum (err {err:.3e})"
        );
        for (rank, ledger) in ledgers.iter().enumerate() {
            assert_eq!(
                ledger.sdc_detected(),
                0,
                "{site:?}: rank {rank} checked under Off"
            );
        }
    }
}

// ---------------------------------------------------------------------
// CheckOnly: detected, reported, localized.
// ---------------------------------------------------------------------

#[test]
fn check_only_detects_and_localizes_every_pipeline_site() {
    for site in PIPELINE_SITES {
        let plan = FaultPlan::new(302).bit_flip(VICTIM, site);
        let outcomes = run_soi(plan, ValidationPolicy::CheckOnly, short_policy());
        let mut detected = false;
        for (rank, o) in outcomes.into_iter().enumerate() {
            match o {
                RankOutcome::Ok((Err(e), stats)) if rank == VICTIM => {
                    let CommError::SilentCorruption { rank: r, segment } = e.error else {
                        panic!("{site:?}: victim reported {e}");
                    };
                    assert_eq!(r, VICTIM, "{site:?}: localized to the owning rank");
                    match site {
                        BitFlipSite::GatheredSegment => {
                            let s = segment.expect("gathered flips localize to a segment");
                            let base = VICTIM * SEGMENTS_PER_PROC;
                            assert!(
                                (base..base + SEGMENTS_PER_PROC).contains(&s),
                                "{site:?}: segment {s} not owned by rank {VICTIM}"
                            );
                        }
                        _ => assert_eq!(segment, None, "{site:?}: phase-level localization"),
                    }
                    assert!(stats.sdc_detected() >= 1, "{site:?}: detection counted");
                    assert_eq!(stats.sdc_repaired(), 0, "{site:?}: CheckOnly never repairs");
                    detected = true;
                }
                // Peers may finish (post-exchange sites) or fail
                // collaterally when the victim abandons the collective.
                RankOutcome::Ok(_) | RankOutcome::Err(_) => {}
                other => panic!("{site:?}: rank {rank}: unexpected outcome {other:?}"),
            }
        }
        assert!(
            detected,
            "{site:?}: the victim must report SilentCorruption"
        );
    }
}

// ---------------------------------------------------------------------
// Recover: detected, repaired, bit-identical to the fault-free run.
// ---------------------------------------------------------------------

#[test]
fn recover_repairs_every_pipeline_site_bit_identically() {
    let (clean, _) = unwrap_all(run_soi(
        FaultPlan::new(303),
        ValidationPolicy::Recover,
        policy(),
    ));
    for site in PIPELINE_SITES {
        let plan = FaultPlan::new(303).bit_flip(VICTIM, site);
        let (got, ledgers) = unwrap_all(run_soi(plan, ValidationPolicy::Recover, policy()));
        assert_eq!(got, clean, "{site:?}: repair must be bit-identical");
        assert!(
            ledgers[VICTIM].sdc_detected() >= 1,
            "{site:?}: detection counted on the victim"
        );
        assert!(
            ledgers[VICTIM].sdc_repaired() >= 1,
            "{site:?}: repair counted on the victim"
        );
        for (rank, ledger) in ledgers.iter().enumerate() {
            assert_eq!(
                ledger.sdc_false_positives(),
                0,
                "{site:?}: rank {rank} false positive"
            );
        }
    }
}

#[test]
fn recover_escalates_when_the_fault_is_permanent() {
    // A stuck-at fault re-corrupts every localized re-execution; once the
    // retry budget is spent the victim must escalate instead of spinning.
    for site in PIPELINE_SITES {
        let plan = FaultPlan::new(304).bit_flip_times(VICTIM, site, u32::MAX);
        let outcomes = run_soi(plan, ValidationPolicy::Recover, short_policy());
        let mut escalated = false;
        for (rank, o) in outcomes.into_iter().enumerate() {
            if rank != VICTIM {
                continue;
            }
            match o {
                RankOutcome::Ok((Err(e), stats)) => {
                    assert!(
                        matches!(e.error, CommError::SilentCorruption { rank: r, .. } if r == VICTIM),
                        "{site:?}: got {e}"
                    );
                    // Budget exhausted: initial detection plus one per retry.
                    assert!(
                        stats.sdc_detected() >= 3,
                        "{site:?}: {}",
                        stats.sdc_detected()
                    );
                    escalated = true;
                }
                other => panic!("{site:?}: victim outcome {other:?}"),
            }
        }
        assert!(escalated, "{site:?}: the victim must escalate");
    }
}

#[test]
fn recover_extra_seeds_sweep_stays_bit_identical() {
    // Nightly sets SDC_EXTRA_SEEDS to widen the sweep; the per-PR run
    // covers one seed so the path is always exercised.
    let seeds: Vec<u64> = match std::env::var("SDC_EXTRA_SEEDS") {
        Ok(s) => s
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse().expect("SDC_EXTRA_SEEDS: u64 list"))
            .collect(),
        Err(_) => vec![7],
    };
    let (clean, _) = unwrap_all(run_soi(
        FaultPlan::new(305),
        ValidationPolicy::Recover,
        policy(),
    ));
    for seed in seeds {
        for site in PIPELINE_SITES {
            let plan = FaultPlan::new(seed).bit_flip(seed as usize % PROCS, site);
            let (got, _) = unwrap_all(run_soi(plan, ValidationPolicy::Recover, policy()));
            assert_eq!(got, clean, "seed {seed}, {site:?}");
        }
    }
}

// ---------------------------------------------------------------------
// Fault-free validated runs: no detections, no behavior change.
// ---------------------------------------------------------------------

#[test]
fn fault_free_recover_run_is_clean_and_identical_to_off() {
    let (off, _) = unwrap_all(run_soi(
        FaultPlan::new(306),
        ValidationPolicy::Off,
        policy(),
    ));
    let (rec, ledgers) = unwrap_all(run_soi(
        FaultPlan::new(306),
        ValidationPolicy::Recover,
        policy(),
    ));
    assert_eq!(off, rec, "validation must not perturb the data path");
    for (rank, ledger) in ledgers.iter().enumerate() {
        assert_eq!(ledger.sdc_detected(), 0, "rank {rank} detected");
        assert_eq!(ledger.sdc_repaired(), 0, "rank {rank} repaired");
        assert_eq!(
            ledger.sdc_false_positives(),
            0,
            "rank {rank} false positive"
        );
    }
}

#[test]
fn fault_free_recover_overhead_stays_within_budget() {
    // The ≤5 % wall-clock budget is a release-mode contract (the nightly
    // job runs this suite in release); debug skips the timing assertion
    // but still exercises both paths. Sized so per-rank compute, not
    // thread spawn/sync, dominates the wall clock — the regime the
    // budget is about (validation work is O(frontier) against an
    // O(frontier·W) convolution, so fixed per-run costs wash out only
    // once the frontier is large enough).
    let p = SoiParams {
        n: 1 << 17,
        ..soi_params()
    };
    let x = signal(p.n);
    let inputs = scatter_input(&x, p.procs);
    let run_once = |validation: ValidationPolicy| {
        let fft = SoiFft::new(p)
            .expect("valid params")
            .with_validation(validation);
        let inputs = inputs.clone();
        let t = std::time::Instant::now();
        let out = run_cluster_with_faults(p.procs, FaultPlan::new(307), move |comm| {
            fft.try_forward(comm, &inputs[comm.rank()], &policy())
        });
        assert!(out.iter().all(|o| matches!(o, RankOutcome::Ok(Ok(_)))));
        t.elapsed()
    };
    // Run-to-run scheduler/cache jitter on a loaded host is larger than
    // the overhead under test, so batched one-after-the-other timing
    // measures the machine, not the validation. Instead pair each Off
    // run with an adjacent Recover run and take the median of the pair
    // ratios — robust to asymmetric jitter spikes in either direction.
    run_once(ValidationPolicy::Off);
    run_once(ValidationPolicy::Recover);
    let reps = if cfg!(debug_assertions) { 3 } else { 9 };
    let measure = || {
        let mut ratios: Vec<f64> = (0..reps)
            .map(|_| {
                let base = run_once(ValidationPolicy::Off);
                let validated = run_once(ValidationPolicy::Recover);
                validated.as_secs_f64() / base.as_secs_f64()
            })
            .collect();
        ratios.sort_by(f64::total_cmp);
        ratios[reps / 2]
    };
    // The budget is a capability claim — validation fits inside 5% — so a
    // trial spoiled by an unlucky preemption is re-measured rather than
    // failed; three median-of-pairs trials all landing high means the
    // overhead is real.
    let mut ratio = measure();
    for _ in 0..2 {
        if ratio <= 1.05 {
            break;
        }
        ratio = measure();
    }
    if cfg!(debug_assertions) {
        eprintln!("debug build: ABFT overhead ratio {ratio:.3} (not asserted)");
    } else {
        assert!(ratio <= 1.05, "ABFT overhead ratio {ratio:.3} exceeds 5%");
    }
}

// ---------------------------------------------------------------------
// CheckpointImage: the flip lands on a snapshot before the store hashes
// it, so only write-time read-back (or the Off gap) can tell.
// ---------------------------------------------------------------------

/// Supervised run helper for the checkpoint-site scenarios.
fn run_soi_recovered(
    plan: FaultPlan,
    validation: ValidationPolicy,
    restart: RestartPolicy,
    policy: &ExchangePolicy,
) -> Result<(Vec<c64>, RecoveryOutcome), SoiRunError> {
    let p = soi_params();
    let x = signal(p.n);
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p)
        .expect("valid params")
        .with_validation(validation);
    let run = fft.forward_recovered(ClusterConfig::with_faults(plan), restart, policy, &inputs)?;
    Ok((gather_output(run.outputs), run.recovery))
}

#[test]
fn unchecked_checkpoint_flip_survives_a_restart_and_corrupts_the_result() {
    // The flip corrupts the ghost snapshot image *before* the store hashes
    // it, so the snapshot is self-consistent and restores cleanly; the
    // planned crash then forces epoch 1 to resume from it. Under `Off`
    // the run completes — with a silently wrong spectrum.
    //
    // The resume path is timing-dependent: the ghost phase only commits
    // (and is only restored on epoch 1) if every rank finished its ghost
    // save before the victim's crash tore the epoch down, and a slow
    // neighbor can lose that race. Retry the scenario until the corrupt
    // snapshot actually gets replayed; what the test pins is that WHEN it
    // is replayed, the poisoned spectrum sails through unvalidated.
    let want = reference_fft(&signal(soi_params().n));
    let mut last_err = 0.0;
    for _ in 0..10 {
        let plan = FaultPlan::new(308)
            .bit_flip(VICTIM, BitFlipSite::CheckpointImage)
            .crash(VICTIM, CrashSite::Phase("convolution"));
        let (got, recovery) = run_soi_recovered(
            plan,
            ValidationPolicy::Off,
            RestartPolicy::default(),
            &policy(),
        )
        .expect("the Off run must complete");
        assert_eq!(
            recovery,
            RecoveryOutcome::Recovered {
                restarts: 1,
                recomputed_segments: 0
            }
        );
        last_err = rel_l2(&got, &want);
        if last_err > 1e-6 {
            return;
        }
    }
    panic!("corrupt snapshot never poisoned the result ({last_err:.3e})");
}

#[test]
fn check_only_catches_the_checkpoint_flip_at_write_time() {
    // Victim rank 0 so the supervised run surfaces ITS typed error (the
    // first per rank order) rather than a peer's collateral timeout.
    let plan = FaultPlan::new(309).bit_flip(0, BitFlipSite::CheckpointImage);
    let err = run_soi_recovered(
        plan,
        ValidationPolicy::CheckOnly,
        RestartPolicy::default(),
        &short_policy(),
    )
    .expect_err("write-time read-back must reject the flipped image");
    assert_eq!(err.phase, "checkpoint");
    assert!(
        matches!(
            err.error,
            CommError::SilentCorruption {
                rank: 0,
                segment: None
            }
        ),
        "got {err}"
    );
}

#[test]
fn recover_rewrites_the_flipped_snapshot_and_survives_the_crash() {
    let (clean, _) = run_soi_recovered(
        FaultPlan::new(310),
        ValidationPolicy::Recover,
        RestartPolicy::default(),
        &policy(),
    )
    .expect("fault-free supervised run");
    let plan = FaultPlan::new(310)
        .bit_flip(VICTIM, BitFlipSite::CheckpointImage)
        .crash(VICTIM, CrashSite::Phase("convolution"));
    let (got, recovery) = run_soi_recovered(
        plan,
        ValidationPolicy::Recover,
        RestartPolicy::default(),
        &policy(),
    )
    .expect("repair at save time, then respawn");
    assert_eq!(
        recovery,
        RecoveryOutcome::Recovered {
            restarts: 1,
            recomputed_segments: 0
        }
    );
    assert_eq!(
        got, clean,
        "the re-saved snapshot must restore bit-identically"
    );
}

// ---------------------------------------------------------------------
// Degraded-mode recomputation accounting (budget-exhausted paths).
// ---------------------------------------------------------------------

#[test]
fn degraded_recomputation_accounting_matches_the_crash_schedule() {
    // The crash schedule decides the exact degraded workload: the victim
    // dies before the exchange in every incarnation, so once the restart
    // budget is spent, ALL P·S output segments are lost with the
    // uncommitted all-to-all and must be recomputed — no more, no fewer.
    // Validation rides along to prove ABFT does not perturb the
    // accounting.
    let all_segments = PROCS * SEGMENTS_PER_PROC;
    for (crashes, restart, expected_restarts) in [
        (1, RestartPolicy::disabled(), 0),
        (
            10,
            RestartPolicy {
                max_restarts: 1,
                ..RestartPolicy::default()
            },
            1,
        ),
        (
            10,
            RestartPolicy {
                max_restarts: 2,
                ..RestartPolicy::default()
            },
            2,
        ),
    ] {
        let plan = FaultPlan::new(311).crash_times(2, CrashSite::Phase("segment-fft"), crashes);
        let (_, recovery) = run_soi_recovered(plan, ValidationPolicy::Recover, restart, &policy())
            .expect("degraded mode must complete the run");
        assert_eq!(
            recovery,
            RecoveryOutcome::Recovered {
                restarts: expected_restarts,
                recomputed_segments: all_segments
            },
            "schedule: {crashes} crashes, budget {expected_restarts}"
        );
    }
}

// ---------------------------------------------------------------------
// Error plumbing.
// ---------------------------------------------------------------------

#[test]
fn soi_run_error_sources_chain_to_the_comm_error() {
    let plan = FaultPlan::new(312).bit_flip(VICTIM, BitFlipSite::ConvBuffer);
    let outcomes = run_soi(plan, ValidationPolicy::CheckOnly, short_policy());
    let run_err = outcomes
        .into_iter()
        .enumerate()
        .find_map(|(rank, o)| match o {
            RankOutcome::Ok((Err(e), _)) if rank == VICTIM => Some(e),
            _ => None,
        })
        .expect("the victim reports a structured error");
    let display = run_err.to_string();
    assert!(display.contains("convolution"), "{display}");
    let source = std::error::Error::source(&run_err).expect("SoiRunError chains its source");
    let comm: &CommError = source.downcast_ref().expect("source is the CommError");
    assert!(
        matches!(comm, CommError::SilentCorruption { rank, .. } if *rank == VICTIM),
        "{comm}"
    );
    assert!(
        comm.to_string().contains("silent data corruption"),
        "{comm}"
    );
    assert!(
        std::error::Error::source(comm).is_none(),
        "CommError is the end of the chain"
    );
}
