//! Checkpoint/restart contract: snapshots restore byte-identically,
//! corruption is detected (never silently restored), the commit/prune
//! lifecycle holds under arbitrary save orders, and supervised recovery is
//! deterministic — the same fault plan yields bit-identical recovered
//! spectra and the identical [`RecoveryOutcome`] on every run.

use proptest::prelude::*;

use soifft::cluster::{
    CheckpointError, CheckpointStore, ClusterConfig, CrashSite, ExchangePolicy, FaultPlan,
    RecoveryOutcome, RestartPolicy,
};
use soifft::num::c64;
use soifft::soi::pipeline::scatter_input;
use soifft::soi::{Rational, SoiFft, SoiParams};

fn payload(seed: u64, len: usize) -> Vec<c64> {
    // SplitMix64-style stream: cheap, deterministic, seedable.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64 - 0.5
    };
    (0..len).map(|_| c64::new(next(), next())).collect()
}

fn bits(y: &[c64]) -> Vec<u64> {
    y.iter()
        .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
        .collect()
}

// ---------------------------------------------------------------------
// Store-level properties.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn snapshots_round_trip_byte_identically(
        seed in any::<u64>(),
        parties in 1usize..5,
        len in 1usize..200,
    ) {
        let store = CheckpointStore::new(parties);
        let data: Vec<Vec<c64>> =
            (0..parties).map(|r| payload(seed ^ r as u64, len)).collect();
        for (rank, d) in data.iter().enumerate() {
            store.save(rank, "phase", 0, d);
        }
        for (rank, d) in data.iter().enumerate() {
            let restored = store.restore(rank, "phase").expect("saved snapshot restores");
            prop_assert_eq!(bits(&restored), bits(d));
        }
    }

    #[test]
    fn corruption_is_detected_and_resave_repairs(
        seed in any::<u64>(),
        len in 1usize..100,
    ) {
        let store = CheckpointStore::new(2);
        let d = payload(seed, len);
        store.save(0, "phase", 0, &d);
        prop_assert!(store.corrupt(0, "phase"), "chaos hook must find the snapshot");
        prop_assert_eq!(
            store.restore(0, "phase").unwrap_err(),
            CheckpointError::Corrupt { rank: 0, phase: "phase" }
        );
        // A fresh save over the corrupt slot makes it restorable again.
        store.save(0, "phase", 1, &d);
        prop_assert_eq!(bits(&store.restore(0, "phase").unwrap()), bits(&d));
    }

    #[test]
    fn commit_and_prune_lifecycle_is_order_independent(
        seed in any::<u64>(),
        order_seed in any::<u64>(),
    ) {
        // Phases commit exactly when every party has saved them, no matter
        // the interleaving; committing a phase prunes all earlier
        // committed phases' snapshots but never the newest generation.
        let parties = 3;
        let store = CheckpointStore::new(parties);
        let mut saves: Vec<(usize, &'static str)> = Vec::new();
        for phase in ["a", "b"] {
            for rank in 0..parties {
                saves.push((rank, phase));
            }
        }
        // Deterministic shuffle of the save order (phase order per rank is
        // preserved only as much as the shuffle allows — the store must
        // not care).
        let mut state = order_seed;
        for i in (1..saves.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            saves.swap(i, (state as usize) % (i + 1));
        }
        for (i, &(rank, phase)) in saves.iter().enumerate() {
            store.save(rank, phase, 0, &payload(seed ^ i as u64, 8));
        }
        prop_assert!(store.is_committed("a"));
        prop_assert!(store.is_committed("b"));
        // Whichever phase committed last pruned the other.
        let last = store.committed_phases().last().copied().unwrap();
        let pruned = if last == "a" { "b" } else { "a" };
        for rank in 0..parties {
            prop_assert!(store.has(rank, last));
            prop_assert!(!store.has(rank, pruned));
        }
    }
}

#[test]
fn missing_and_corrupt_are_distinct_errors() {
    let store = CheckpointStore::new(2);
    assert_eq!(
        store.restore(1, "nope").unwrap_err(),
        CheckpointError::Missing {
            rank: 1,
            phase: "nope"
        }
    );
    store.save(1, "phase", 0, &payload(7, 16));
    assert!(store.corrupt(1, "phase"));
    assert_eq!(
        store.restore(1, "phase").unwrap_err(),
        CheckpointError::Corrupt {
            rank: 1,
            phase: "phase"
        }
    );
}

#[test]
fn epoch_tags_follow_the_latest_save() {
    let store = CheckpointStore::new(1);
    store.save(0, "phase", 0, &payload(1, 4));
    assert_eq!(store.epoch_of(0, "phase"), Some(0));
    store.save(0, "phase", 3, &payload(2, 4));
    assert_eq!(store.epoch_of(0, "phase"), Some(3));
}

// ---------------------------------------------------------------------
// End-to-end: recovery determinism.
// ---------------------------------------------------------------------

fn soi_params() -> SoiParams {
    SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    }
}

/// One supervised run under `plan`: per-rank spectrum bits + the recovery
/// outcome.
fn recovered_run(plan: FaultPlan, restart: RestartPolicy) -> (Vec<Vec<u64>>, RecoveryOutcome) {
    let p = soi_params();
    let x: Vec<c64> = (0..p.n)
        .map(|i| c64::new((0.11 * i as f64).cos(), (0.07 * i as f64).sin()))
        .collect();
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p).expect("valid params");
    let run = fft
        .forward_recovered(
            ClusterConfig::with_faults(plan),
            restart,
            &ExchangePolicy::default(),
            &inputs,
        )
        .expect("supervised run must complete");
    (run.outputs.iter().map(|y| bits(y)).collect(), run.recovery)
}

#[test]
fn respawn_recovery_is_bit_deterministic() {
    // Same crash plan, same seed → bit-identical recovered spectra and the
    // identical Recovered outcome, run after run.
    let plan = || FaultPlan::new(31).crash(2, CrashSite::AllToAll);
    let (bits_a, rec_a) = recovered_run(plan(), RestartPolicy::default());
    let (bits_b, rec_b) = recovered_run(plan(), RestartPolicy::default());
    assert_eq!(
        rec_a,
        RecoveryOutcome::Recovered {
            restarts: 1,
            recomputed_segments: 0
        }
    );
    assert_eq!(rec_a, rec_b);
    assert_eq!(bits_a, bits_b);
}

#[test]
fn degraded_recovery_is_bit_deterministic() {
    let plan = || FaultPlan::new(32).crash(1, CrashSite::Phase("segment-fft"));
    let (bits_a, rec_a) = recovered_run(plan(), RestartPolicy::disabled());
    let (bits_b, rec_b) = recovered_run(plan(), RestartPolicy::disabled());
    assert_eq!(
        rec_a,
        RecoveryOutcome::Recovered {
            restarts: 0,
            recomputed_segments: 8
        }
    );
    assert_eq!(rec_a, rec_b);
    assert_eq!(bits_a, bits_b);
}

#[test]
fn recovered_spectrum_matches_the_fault_free_run_bit_for_bit() {
    // Resuming from checkpoints replays the identical arithmetic, so the
    // recovered spectrum is not merely within tolerance — it is the same
    // f64 bit pattern the fault-free pipeline produces.
    let (clean, rec) = recovered_run(FaultPlan::new(33), RestartPolicy::default());
    assert_eq!(rec, RecoveryOutcome::None);
    let (respawned, rec) = recovered_run(
        FaultPlan::new(33).crash(2, CrashSite::AllToAll),
        RestartPolicy::default(),
    );
    assert_eq!(
        rec,
        RecoveryOutcome::Recovered {
            restarts: 1,
            recomputed_segments: 0
        }
    );
    assert_eq!(clean, respawned);
}
