//! Property: fault injection is deterministic. A [`FaultPlan`] is a pure
//! function of its seed — two chaos runs with the identical seed and plan
//! must inject the identical event sequence and produce byte-identical
//! outcomes.
//!
//! The plans drawn here are the timing-insensitive classes (drop, corrupt,
//! duplicate — all absorbed by the link layer's retransmit/dedup, so the
//! delivered payloads are scheduling-independent). Receiver-side discard
//! *counters* can legitimately differ between runs (a duplicate that is
//! still in flight when the receiver finishes is never counted), so the
//! property compares delivered data, per-rank injector event streams, and
//! the sender-side retransmit counter — the quantities the determinism
//! guarantee actually covers.

use proptest::prelude::*;

use soifft::cluster::{run_cluster_with_faults, FaultEvents, FaultPlan};
use soifft::num::c64;
use soifft::soi::pipeline::scatter_input;
use soifft::soi::{Rational, SoiFft, SoiParams};

fn soi_params() -> SoiParams {
    SoiParams {
        n: 1 << 10,
        procs: 2,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    }
}

/// One chaos run: per-rank (spectrum bits, injector events, retransmits).
fn chaos_run(
    seed: u64,
    drop_p: f64,
    corrupt_p: f64,
    dup_p: f64,
) -> Vec<(Vec<u64>, FaultEvents, u64)> {
    let p = soi_params();
    let x: Vec<c64> = (0..p.n)
        .map(|i| c64::new((0.11 * i as f64).cos(), (0.07 * i as f64).sin()))
        .collect();
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p).expect("valid params");
    let plan = FaultPlan::new(seed)
        .drop(drop_p)
        .corrupt(corrupt_p)
        .duplicate(dup_p);
    let outcomes = run_cluster_with_faults(p.procs, plan, |comm| {
        let policy = soifft::cluster::ExchangePolicy::default();
        let y = fft
            .try_forward(comm, &inputs[comm.rank()], &policy)
            .expect("transient faults must be absorbed");
        // Compare exact bit patterns, not approximate equality.
        let bits: Vec<u64> = y
            .iter()
            .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
            .collect();
        (
            bits,
            comm.fault_events().expect("plan installed"),
            comm.stats().retransmits(),
        )
    });
    outcomes.into_iter().map(|o| o.unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn identical_seed_and_plan_give_byte_identical_outcomes(
        seed in any::<u64>(),
        drop_pct in 0u32..35,
        corrupt_pct in 0u32..25,
        dup_pct in 0u32..25,
    ) {
        let (d, c, u) =
            (drop_pct as f64 / 100.0, corrupt_pct as f64 / 100.0, dup_pct as f64 / 100.0);
        let first = chaos_run(seed, d, c, u);
        let second = chaos_run(seed, d, c, u);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_usually_inject_differently(seed in any::<u64>()) {
        // Sanity inverse: the seed must actually steer injection (guards
        // against a seed that is silently ignored). Event *counters* of two
        // unrelated seeds can coincide by chance, so try a few perturbed
        // seeds and require at least one divergence.
        let a = chaos_run(seed, 0.3, 0.2, 0.2);
        let events_a: Vec<&FaultEvents> = a.iter().map(|(_, e, _)| e).collect();
        let mut diverged = false;
        for k in 1u64..=3 {
            let b = chaos_run(seed ^ 0xDEAD_BEEFu64.wrapping_mul(k), 0.3, 0.2, 0.2);
            // Payloads agree no matter the seed (faults are absorbed)...
            let bits_a: Vec<&Vec<u64>> = a.iter().map(|(y, _, _)| y).collect();
            let bits_b: Vec<Vec<u64>> = b.iter().map(|(y, _, _)| y.clone()).collect();
            prop_assert_eq!(
                bits_a.into_iter().cloned().collect::<Vec<_>>(),
                bits_b
            );
            // ...but the injected event streams should not all coincide.
            if b.iter().map(|(_, e, _)| e).ne(events_a.iter().copied()) {
                diverged = true;
                break;
            }
        }
        prop_assert!(diverged, "three perturbed seeds all injected identically");
    }
}
