//! Larger-scale smoke tests: the full distributed stack at the biggest
//! sizes the CI budget allows, plus an `#[ignore]`d paper-shaped run for
//! manual thorough testing (`cargo test --release -- --ignored`).

use soifft::cluster::Cluster;
use soifft::ct::DistributedCtFft;
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::{gather_output, scatter_input};
use soifft::soi::{Rational, SoiFft, SoiParams, WindowKind};

fn signal(n: usize) -> Vec<c64> {
    let mut state = 0x5DEECE66Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n).map(|_| c64::new(next(), next())).collect()
}

/// 2^18 points on 8 ranks: both algorithms, one verification each.
#[test]
fn quarter_million_points_eight_ranks() {
    let n = 1 << 18;
    let procs = 8;
    let x = signal(n);
    let mut want = x.clone();
    Plan::new(n).forward(&mut want);
    let inputs = scatter_input(&x, procs);

    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 4,
        mu: Rational::new(2, 1),
        conv_width: 24,
    };
    let soi = SoiFft::new(params).unwrap();
    let got = gather_output(Cluster::run(procs, |comm| {
        soi.forward(comm, &inputs[comm.rank()])
    }));
    let err = rel_l2(&got, &want);
    assert!(err < 1e-8, "SOI err={err:.3e}");

    let ct = DistributedCtFft::new(n, procs).unwrap();
    let got = gather_output(Cluster::run(procs, |comm| {
        ct.forward(comm, &inputs[comm.rank()])
    }));
    let err = rel_l2(&got, &want);
    assert!(err < 1e-11, "CT err={err:.3e}");
}

/// Sixteen simulated ranks with everything turned on: prolate window,
/// fused conv+FFT... (fusion forces row-major; prolate for accuracy).
#[test]
fn sixteen_ranks_prolate_fused() {
    let n = 1 << 16;
    let procs = 16;
    let x = signal(n);
    let mut want = x.clone();
    Plan::new(n).forward(&mut want);
    let inputs = scatter_input(&x, procs);

    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    let soi = SoiFft::with_window(params, WindowKind::ProlateSinc)
        .unwrap()
        .with_fused_segment_fft();
    let got = gather_output(Cluster::run(procs, |comm| {
        soi.forward(comm, &inputs[comm.rank()])
    }));
    let err = rel_l2(&got, &want);
    assert!(err < 1e-10, "err={err:.3e}");
}

/// Paper-shaped run: µ = 8/7, B = 72, prolate window, 2^20 total points on
/// 8 ranks. A few seconds in release mode; run with `-- --ignored`.
#[test]
#[ignore = "thorough run: ~10 s release; cargo test --release -- --ignored"]
fn paper_shape_mu_eight_sevenths_large() {
    let procs = 8;
    let m = 7 * (1 << 14); // per-segment length, divisible by 7
    let l = 8;
    let n = m * l;
    let x = signal(n);
    let mut want = x.clone();
    Plan::new(n).forward(&mut want);
    let inputs = scatter_input(&x, procs);
    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 1,
        mu: Rational::new(8, 7),
        conv_width: 72,
    };
    params.validate().unwrap();
    let soi = SoiFft::with_window(params, WindowKind::ProlateSinc).unwrap();
    let got = gather_output(Cluster::run(procs, |comm| {
        soi.forward(comm, &inputs[comm.rank()])
    }));
    let err = rel_l2(&got, &want);
    assert!(err < 1e-8, "err={err:.3e}");
}
