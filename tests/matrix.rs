//! Combinatorial integration matrix: every window family × convolution
//! strategy × exchange plan on the same problem, all verified against one
//! reference — the "no configuration left untested" sweep.

use soifft::cluster::Cluster;
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::{gather_output, scatter_input, ExchangePlan};
use soifft::soi::{ConvStrategy, Rational, SoiFft, SoiParams, WindowKind};

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new((0.002 * t).sin() + 0.1, 0.3 * (0.017 * t).cos())
        })
        .collect()
}

#[test]
fn full_configuration_matrix() {
    let params = SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    };
    params.validate().unwrap();
    let x = signal(params.n);
    let inputs = scatter_input(&x, params.procs);
    let mut want = x.clone();
    Plan::new(params.n).forward(&mut want);

    let windows = [
        WindowKind::GaussianSinc,
        WindowKind::KaiserSinc,
        WindowKind::ProlateSinc,
    ];
    let strategies = ConvStrategy::ALL;
    let exchanges = [
        ExchangePlan::Monolithic,
        ExchangePlan::Chunked(97),
        ExchangePlan::PerSegment,
        ExchangePlan::Overlapped,
        ExchangePlan::Proxied(128),
    ];

    let mut checked = 0;
    for kind in windows {
        // One plan per window (the expensive part), reconfigured per cell.
        let base = SoiFft::with_window(params, kind).expect("valid");
        for strategy in strategies {
            for exchange in exchanges {
                let fft = base.clone().with_strategy(strategy).with_exchange(exchange);
                let got = gather_output(Cluster::run(params.procs, |comm| {
                    fft.forward(comm, &inputs[comm.rank()])
                }));
                let err = rel_l2(&got, &want);
                assert!(
                    err < 1e-5,
                    "{kind:?} × {strategy:?} × {exchange:?}: err={err:.3e}"
                );
                checked += 1;
            }
        }
    }
    assert_eq!(checked, 3 * 3 * 5);
}

/// The fused conv+FFT path across windows and exchanges (it pins the
/// strategy itself).
#[test]
fn fused_conv_matrix() {
    let params = SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    let x = signal(params.n);
    let inputs = scatter_input(&x, params.procs);
    let mut want = x.clone();
    Plan::new(params.n).forward(&mut want);

    for kind in [WindowKind::GaussianSinc, WindowKind::ProlateSinc] {
        for exchange in [ExchangePlan::Monolithic, ExchangePlan::Overlapped] {
            let fft = SoiFft::with_window(params, kind)
                .unwrap()
                .with_fused_segment_fft()
                .with_exchange(exchange);
            let got = gather_output(Cluster::run(params.procs, |comm| {
                fft.forward(comm, &inputs[comm.rank()])
            }));
            let err = rel_l2(&got, &want);
            assert!(err < 1e-5, "{kind:?} × {exchange:?}: err={err:.3e}");
        }
    }
}
