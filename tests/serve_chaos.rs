//! Chaos and overload behaviour of the serving front end.
//!
//! The contract under test is DESIGN.md §1g: every admitted job resolves
//! to exactly one typed answer — a verified spectrum, or a [`JobError`]
//! naming what went wrong — under rank crashes, floods, deadlines, and
//! shutdown. Never a hang, never a silent drop, never a *late* success.

use std::time::Duration;

use soifft::cluster::{ClusterConfig, CrashSite, ExchangePolicy, FaultPlan, RestartPolicy};
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::serve::{
    BreakerConfig, BreakerState, DegradedMode, JobError, Rejected, ServeConfig, ServeEngine,
    ShedPoint,
};
use soifft::soi::{Rational, SoiParams};

const PROCS: usize = 4;

fn params() -> SoiParams {
    SoiParams {
        n: 1 << 10,
        procs: PROCS,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    }
}

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new((0.05 * t).sin() + 0.3, 0.4 * (0.011 * t).cos())
        })
        .collect()
}

fn reference_fft(x: &[c64]) -> Vec<c64> {
    let mut y = x.to_vec();
    Plan::new(x.len()).forward(&mut y);
    y
}

fn config() -> ServeConfig {
    ServeConfig {
        tenants: 2,
        queue_capacity: 8,
        max_batch: 2,
        exchange: ExchangePolicy {
            deadline: Duration::from_secs(2),
            ..ExchangePolicy::default()
        },
        ..ServeConfig::default()
    }
}

/// A rank crash mid-batch: in-flight jobs fail with the typed
/// [`JobError::RankFailure`], queued jobs survive the supervisor respawn
/// and complete *correctly*, and the whole episode is visible in the
/// engine's stats.
#[test]
fn rank_crash_fails_inflight_jobs_and_queued_jobs_complete() {
    let p = params();
    let x = signal(p.n);
    let want = reference_fft(&x);
    let plan = FaultPlan::new(61).crash(1, CrashSite::AllToAll);
    let engine = ServeEngine::start(
        p,
        ServeConfig {
            cluster: ClusterConfig::with_faults(plan),
            ..config()
        },
    )
    .expect("valid params");

    let tickets: Vec<_> = (0..6)
        .map(|i| engine.submit(i % 2, &x, None).expect("admitted"))
        .collect();

    let mut completed = 0u32;
    let mut rank_failures = 0u32;
    for t in tickets {
        match t.wait() {
            Ok(spectrum) => {
                assert!(
                    rel_l2(&spectrum, &want) < 1e-9,
                    "post-recovery spectrum must verify"
                );
                completed += 1;
            }
            Err(JobError::RankFailure) => rank_failures += 1,
            Err(other) => panic!("only RankFailure is acceptable here, got {other}"),
        }
    }
    // The first dispatched batch (1..=max_batch jobs) dies with the rank;
    // everything still queued completes after the respawn.
    assert!(rank_failures >= 1, "the crashed batch must fail typed");
    assert!(rank_failures <= 2, "at most one batch was in flight");
    assert!(completed >= 4, "queued jobs must survive the crash");

    let report = engine.shutdown();
    assert_eq!(report.restarts, 1, "one respawn must suffice");
    assert!(report.clean, "final epoch must drain cleanly");
    assert_eq!(report.stats.rank_failures, u64::from(rank_failures));
    assert_eq!(report.stats.completed, u64::from(completed));
    assert_eq!(report.stats.epoch_aborts, 1);
}

/// Repeated crashes trip the breaker into fail-fast: new submissions get
/// [`Rejected::Unavailable`] with a retry hint instead of queueing into a
/// known-bad cluster.
#[test]
fn repeated_crashes_trip_the_breaker_to_reject_new() {
    let p = params();
    let x = signal(p.n);
    let plan = FaultPlan::new(62).crash_times(1, CrashSite::AllToAll, 3);
    let engine = ServeEngine::start(
        p,
        ServeConfig {
            max_batch: 1,
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown: Duration::from_secs(30),
                ..BreakerConfig::default()
            },
            restart: RestartPolicy {
                max_restarts: 4,
                ..RestartPolicy::default()
            },
            cluster: ClusterConfig::with_faults(plan),
            ..config()
        },
    )
    .expect("valid params");

    // Four jobs: three ride the crashing epochs, the fourth completes in
    // the first clean one.
    let tickets: Vec<_> = (0..4)
        .map(|_| engine.submit(0, &x, None).expect("admitted"))
        .collect();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let completed = outcomes.iter().filter(|o| o.is_ok()).count();
    let rank_failures = outcomes
        .iter()
        .filter(|o| matches!(o, Err(JobError::RankFailure)))
        .count();
    assert_eq!(completed, 1);
    assert_eq!(rank_failures, 3);

    // Three consecutive epoch aborts reached the threshold: open breaker,
    // fail-fast admission with a backoff hint.
    assert_eq!(engine.breaker_state(), BreakerState::Open);
    match engine.submit(0, &x, None) {
        Err(Rejected::Unavailable {
            retry_after: Some(hint),
        }) => assert!(hint <= Duration::from_secs(30)),
        other => panic!("expected Unavailable with retry hint, got {other:?}"),
    }

    let report = engine.shutdown();
    assert_eq!(report.stats.epoch_aborts, 3);
    assert_eq!(report.restarts, 3);
}

/// In [`DegradedMode::ValidationOff`] the tripped breaker keeps serving —
/// correctly, just without the ABFT validation pass — instead of
/// rejecting.
#[test]
fn validation_off_mode_keeps_serving_when_tripped() {
    let p = params();
    let x = signal(p.n);
    let want = reference_fft(&x);
    let plan = FaultPlan::new(63).crash_times(1, CrashSite::AllToAll, 2);
    let engine = ServeEngine::start(
        p,
        ServeConfig {
            max_batch: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(30),
                degraded: DegradedMode::ValidationOff,
                ..BreakerConfig::default()
            },
            cluster: ClusterConfig::with_faults(plan),
            ..config()
        },
    )
    .expect("valid params");

    let tickets: Vec<_> = (0..3)
        .map(|_| engine.submit(0, &x, None).expect("admitted"))
        .collect();
    let outcomes: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    assert_eq!(
        outcomes
            .iter()
            .filter(|o| matches!(o, Err(JobError::RankFailure)))
            .count(),
        2
    );
    assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 1);

    // Breaker is open, but degraded mode still admits and still serves
    // numerically correct spectra.
    assert_eq!(engine.breaker_state(), BreakerState::Open);
    let spectrum = engine
        .submit(0, &x, None)
        .expect("degraded mode admits")
        .wait()
        .expect("degraded service still serves");
    assert!(rel_l2(&spectrum, &want) < 1e-9);
    engine.shutdown();
}

/// An already-expired deadline never reaches the ranks: the dispatcher
/// sheds it from the queue with the typed shed point.
#[test]
fn expired_deadline_is_shed_in_queue() {
    let p = params();
    let x = signal(p.n);
    let engine = ServeEngine::start(p, config()).expect("valid params");
    let ticket = engine
        .submit(0, &x, Some(Duration::ZERO))
        .expect("admitted (feasibility needs a first estimate)");
    assert_eq!(
        ticket.wait(),
        Err(JobError::DeadlineExpired {
            shed_at: ShedPoint::Queue
        })
    );
    let report = engine.shutdown();
    assert_eq!(report.stats.shed_queue, 1);
    assert_eq!(report.stats.completed, 0);
}

/// Flood accounting: every admitted job resolves, every refused one is
/// typed, and the ledger balances exactly.
#[test]
fn flood_conserves_every_job() {
    let p = params();
    let x = signal(p.n);
    let engine = ServeEngine::start(
        p,
        ServeConfig {
            tenants: 3,
            queue_capacity: 4,
            max_batch: 2,
            ..config()
        },
    )
    .expect("valid params");

    let mut tickets = Vec::new();
    let mut refused = 0u64;
    for i in 0..60 {
        match engine.submit(i % 3, &x, Some(Duration::from_secs(20))) {
            Ok(t) => tickets.push(t),
            Err(
                Rejected::QueueFull { .. }
                | Rejected::RateLimited { .. }
                | Rejected::DeadlineInfeasible { .. },
            ) => refused += 1,
            Err(other) => panic!("unexpected refusal under flood: {other:?}"),
        }
    }
    let admitted = tickets.len() as u64;
    let mut resolved = 0u64;
    for t in tickets {
        // Generous deadline: everything admitted should complete.
        t.wait().expect("admitted jobs complete within deadline");
        resolved += 1;
    }
    let report = engine.shutdown();
    assert_eq!(admitted + refused, 60);
    assert_eq!(resolved, admitted);
    assert_eq!(report.stats.submitted, admitted);
    assert_eq!(report.stats.completed + report.stats.unserved(), admitted);
    assert_eq!(report.stats.rejected, refused);
}

/// Draining refuses new work but completes what was admitted; the ticket
/// of a drained-out job still resolves.
#[test]
fn drain_refuses_new_work_and_completes_admitted_work() {
    let p = params();
    let x = signal(p.n);
    let want = reference_fft(&x);
    let engine = ServeEngine::start(p, config()).expect("valid params");
    let ticket = engine.submit(0, &x, None).expect("admitted");
    engine.drain();
    assert!(matches!(
        engine.submit(0, &x, None),
        Err(Rejected::Draining)
    ));
    let spectrum = ticket.wait().expect("admitted before drain completes");
    assert!(rel_l2(&spectrum, &want) < 1e-9);
    let report = engine.shutdown();
    assert!(report.clean);
    assert_eq!(report.stats.completed, 1);
}

/// Submitting the wrong input length is refused before anything queues.
#[test]
fn invalid_input_is_refused_at_the_front_door() {
    let p = params();
    let engine = ServeEngine::start(p, config()).expect("valid params");
    let short = vec![c64::ZERO; p.n / 2];
    match engine.submit(0, &short, None) {
        Err(Rejected::InvalidInput { expected, got }) => {
            assert_eq!(expected, p.n);
            assert_eq!(got, p.n / 2);
        }
        other => panic!("expected InvalidInput, got {other:?}"),
    }
    match engine.submit(9, &signal(p.n), None) {
        Err(Rejected::UnknownTenant { tenant: 9 }) => {}
        other => panic!("expected UnknownTenant, got {other:?}"),
    }
    engine.shutdown();
}
