//! Property-based tests on the SOI-specific machinery: parameter algebra,
//! window structure, convolution strategy equivalence, and the distributed
//! pipeline, across randomly drawn configurations.

use proptest::prelude::*;
use soifft::cluster::Cluster;
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::{rel_l2, rel_linf};
use soifft::par::Pool;
use soifft::soi::conv::{convolve, convolve_reference};
use soifft::soi::pipeline::{gather_output, scatter_input};
use soifft::soi::{ConvStrategy, Rational, SoiFft, SoiParams, Window, WindowKind};

fn seeded(n: usize, seed: u64) -> Vec<c64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n).map(|_| c64::new(next(), next())).collect()
}

/// Strategy generating random *valid* SOI parameter sets.
fn valid_params() -> impl Strategy<Value = SoiParams> {
    (
        prop::sample::select(vec![(2usize, 1usize), (3, 2), (5, 4), (8, 7)]),
        prop::sample::select(vec![1usize, 2, 4]),    // procs
        prop::sample::select(vec![1usize, 2, 4]),    // segments/proc
        prop::sample::select(vec![10usize, 16, 24]), // B
        prop::sample::select(vec![64usize, 128, 256]), // M base (×d_µ)
    )
        .prop_map(|((n_mu, d_mu), procs, s, b, m_base)| {
            let l = procs * s;
            let m = d_mu * m_base;
            SoiParams {
                n: m * l,
                procs,
                segments_per_proc: s,
                mu: Rational::new(n_mu, d_mu),
                conv_width: b,
            }
        })
        .prop_filter("constraints", |p| p.validate().is_ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Derived-quantity algebra is internally consistent for every valid
    /// configuration.
    #[test]
    fn params_algebra_consistent(p in valid_params()) {
        prop_assert_eq!(p.m() * p.total_segments(), p.n);
        prop_assert_eq!(p.m_prime() * p.total_segments(), p.n_prime());
        prop_assert_eq!(p.blocks_per_rank() * p.procs, p.m_prime());
        prop_assert_eq!(
            p.chunks_per_rank() * p.mu.num(),
            p.blocks_per_rank()
        );
        // Hop σ = d_µL/n_µ times n_µ equals d_µL exactly.
        let (num, den) = p.hop();
        prop_assert_eq!(num, p.mu.den() * p.total_segments());
        prop_assert_eq!(den, p.mu.num());
        // Ghost fits one rank.
        prop_assert!(p.ghost_len() <= p.per_rank());
    }

    /// All three convolution strategies agree with the reference for every
    /// valid configuration and random data.
    #[test]
    fn conv_strategies_agree(p in valid_params(), seed in 0u64..1000) {
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let x = seeded(p.per_rank() + p.ghost_len(), seed);
        let mut reference = vec![c64::ZERO; p.blocks_per_rank() * p.total_segments()];
        convolve_reference(&p, &w, &x, &mut reference);
        for strategy in ConvStrategy::ALL {
            let mut got = vec![c64::ZERO; reference.len()];
            convolve(&p, &w, strategy, &x, &mut got, &Pool::new(2));
            prop_assert!(
                rel_linf(&got, &reference) < 1e-12,
                "{:?}", strategy
            );
        }
    }

    /// The window taps always live inside the chunk read window
    /// (support ⊂ [jσ, jσ + (B−d_µ)L] ⊂ [0, BL)) — the invariant that
    /// makes the ghost region sufficient.
    #[test]
    fn window_taps_within_read_window(p in valid_params()) {
        let w = Window::new(WindowKind::GaussianSinc, &p);
        let l = p.total_segments();
        let bl = p.conv_width * l;
        let (n_mu, d_mu) = (p.mu.num(), p.mu.den());
        let sigma = (d_mu * l) as f64 / n_mu as f64;
        for j in 0..n_mu {
            let row = w.taps_row(j);
            prop_assert_eq!(row.len(), bl);
            let lo = (j as f64 * sigma).floor();
            for (i, v) in row.iter().enumerate() {
                if (i as f64) < lo - 1.0 {
                    prop_assert!(v.abs() == 0.0, "j={} i={}", j, i);
                }
            }
        }
        // Demodulation constants all finite and nonzero.
        for d in w.demod() {
            prop_assert!(d.is_finite());
            prop_assert!(d.abs() > 0.0);
        }
    }

    /// The full distributed transform stays within a generous error bound
    /// tied to the design (B, µ) for random valid configurations.
    #[test]
    fn distributed_soi_accuracy(p in valid_params(), seed in 0u64..100) {
        // Only check configurations with a decent window (skip the
        // deliberately weak ones — their bound is checked elsewhere).
        let quality = (p.conv_width - p.mu.den()) as f64
            * (p.mu.as_f64() - 1.0);
        prop_assume!(quality >= 8.0);
        let x = seeded(p.n, seed);
        let inputs = scatter_input(&x, p.procs);
        let fft = SoiFft::new(p).unwrap();
        let out = gather_output(Cluster::run(p.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()])
        }));
        let mut want = x;
        Plan::new(p.n).forward(&mut want);
        let err = rel_l2(&out, &want);
        prop_assert!(err < 1e-3, "err={:.3e} at {:?}", err, p);
    }
}
