//! Chaos suite: the distributed SOI and Cooley–Tukey pipelines under a
//! matrix of injected fault scenarios (drop, delay, duplicate, corrupt,
//! rank crash).
//!
//! The invariant each scenario asserts is the fault-model contract from
//! DESIGN.md §1: a run either produces a **verified-correct spectrum**
//! (relative ℓ₂ error < 1e-9 against a single-process reference FFT) or
//! ends in a **typed failure** ([`RankOutcome::Err`]/[`RankOutcome::Crashed`]
//! or a structured pipeline error) within its deadline — never a hang and
//! never an unhandled panic. Transient link faults must be absorbed
//! entirely (the link layer retransmits, the resilient collectives retry
//! rounds); a crashed rank must unblock every survivor.

use std::time::Duration;

use soifft::cluster::{
    run_cluster_with_faults, ClusterConfig, CommError, CrashSite, ExchangePolicy, FaultPlan,
    RankOutcome, RecoveryOutcome, RestartPolicy, Supervisor,
};
use soifft::ct::DistributedCtFft;
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::{gather_output, scatter_input};
use soifft::soi::{Rational, SoiFft, SoiParams, SoiRunError};

const PROCS: usize = 4;

/// Per-rank outcomes of a chaos run plus the reference spectrum.
type ChaosRun<E> = (Vec<RankOutcome<Result<Vec<c64>, E>>>, Vec<c64>);

fn soi_params() -> SoiParams {
    SoiParams {
        n: 1 << 12,
        procs: PROCS,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    }
}

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new((0.07 * t).sin() - 0.2, 0.5 * (0.013 * t).cos())
        })
        .collect()
}

fn reference_fft(x: &[c64]) -> Vec<c64> {
    let mut y = x.to_vec();
    Plan::new(x.len()).forward(&mut y);
    y
}

fn policy() -> ExchangePolicy {
    ExchangePolicy {
        deadline: Duration::from_secs(2),
        max_rounds: 3,
    }
}

/// A short policy for scenarios that are *expected* to fail: the typed
/// error must arrive within a few deadline multiples, not minutes.
fn short_policy() -> ExchangePolicy {
    ExchangePolicy {
        deadline: Duration::from_millis(300),
        max_rounds: 2,
    }
}

/// Runs the SOI pipeline under `plan` and returns per-rank outcomes.
fn run_soi(plan: FaultPlan, policy: ExchangePolicy) -> ChaosRun<SoiRunError> {
    let p = soi_params();
    let x = signal(p.n);
    let want = reference_fft(&x);
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p).expect("valid params");
    let outcomes = run_cluster_with_faults(p.procs, plan, |comm| {
        fft.try_forward(comm, &inputs[comm.rank()], &policy)
    });
    (outcomes, want)
}

/// Transient-fault scenarios must be absorbed completely: every rank Ok,
/// spectrum verified against the reference.
fn assert_soi_correct_under(plan: FaultPlan) {
    let (outcomes, want) = run_soi(plan, policy());
    let mut parts = Vec::new();
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Ok(Ok(y)) => parts.push(y),
            other => panic!("rank {rank}: expected success, got {other:?}"),
        }
    }
    let got = gather_output(parts);
    let err = rel_l2(&got, &want);
    assert!(err < 1e-9, "spectrum must verify: rel err = {err:.3e}");
}

/// Hard-fault scenarios must end typed on every rank: the faulted rank
/// `Crashed` (when the plan crashes one) and every other rank either a
/// typed `CommError` or a structured `SoiRunError` — never `Panicked`,
/// never a silently wrong spectrum.
fn assert_soi_fails_typed_under(plan: FaultPlan, crashed: Option<usize>) {
    let (outcomes, _) = run_soi(plan, short_policy());
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Crashed => {
                assert_eq!(Some(rank), crashed, "only the planned rank may crash");
            }
            RankOutcome::Err(e) => {
                if let Some(c) = crashed {
                    assert_eq!(e, CommError::PeerFailed { rank: c }, "rank {rank}");
                }
            }
            RankOutcome::Ok(Err(run_err)) => {
                if let Some(c) = crashed {
                    assert_eq!(
                        run_err.error,
                        CommError::PeerFailed { rank: c },
                        "rank {rank}: {run_err}"
                    );
                }
                // The structured error carries the partial ledger.
                assert!(!run_err.stats.records().is_empty(), "rank {rank}");
            }
            RankOutcome::Ok(Ok(_)) => {
                panic!("rank {rank}: no rank may report success in a hard-fault scenario")
            }
            RankOutcome::Panicked(msg) => {
                panic!("rank {rank}: unhandled panic leaked through: {msg}")
            }
            // RankOutcome is non-exhaustive.
            other => panic!("rank {rank}: unexpected outcome {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// SOI × transient faults: absorbed, spectrum verified.
// ---------------------------------------------------------------------

#[test]
fn soi_survives_message_drops() {
    assert_soi_correct_under(FaultPlan::new(101).drop(0.3));
}

#[test]
fn soi_survives_message_delays() {
    assert_soi_correct_under(FaultPlan::new(102).delay(0.4, Duration::from_micros(200)));
}

#[test]
fn soi_survives_message_duplication() {
    assert_soi_correct_under(FaultPlan::new(103).duplicate(0.4));
}

#[test]
fn soi_survives_bit_corruption() {
    assert_soi_correct_under(FaultPlan::new(104).corrupt(0.3));
}

#[test]
fn soi_survives_mixed_fault_storm() {
    assert_soi_correct_under(
        FaultPlan::new(105)
            .drop(0.2)
            .corrupt(0.15)
            .duplicate(0.15)
            .delay(0.2, Duration::from_micros(100)),
    );
}

// ---------------------------------------------------------------------
// SOI × rank crashes: typed failure everywhere, survivors unblock.
// ---------------------------------------------------------------------

#[test]
fn soi_rank_crash_in_ghost_phase_fails_typed() {
    assert_soi_fails_typed_under(FaultPlan::new(106).crash(1, CrashSite::Ghost), Some(1));
}

#[test]
fn soi_rank_crash_in_all_to_all_fails_typed() {
    assert_soi_fails_typed_under(FaultPlan::new(107).crash(2, CrashSite::AllToAll), Some(2));
}

#[test]
fn soi_permanent_link_failure_fails_typed() {
    // Rank 3's outbound link drops every copy of every message, forever:
    // no retransmit budget can absorb that. Everyone must still end typed
    // (Timeout/ChecksumMismatch chains), nobody may hang.
    assert_soi_fails_typed_under(FaultPlan::new(108).drop(1.0).permanent().on_rank(3), None);
}

#[test]
fn soi_crash_at_barrier_unblocks_everyone() {
    // A barrier placed in front of the pipeline: the crashing rank dies in
    // it, every survivor must unblock with PeerFailed (the cancellable
    // barrier's contract) rather than deadlocking.
    let p = soi_params();
    let x = signal(p.n);
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p).expect("valid params");
    let plan = FaultPlan::new(109).crash(0, CrashSite::Barrier);
    let outcomes = run_cluster_with_faults(p.procs, plan, |comm| {
        comm.try_barrier()?;
        fft.try_forward(comm, &inputs[comm.rank()], &short_policy())
            .map_err(|e| e.error)
    });
    assert!(matches!(outcomes[0], RankOutcome::Crashed));
    for (rank, o) in outcomes.iter().enumerate().skip(1) {
        match o {
            RankOutcome::Ok(Err(CommError::PeerFailed { rank: r }))
            | RankOutcome::Err(CommError::PeerFailed { rank: r }) => {
                assert_eq!(*r, 0, "rank {rank}")
            }
            other => panic!("rank {rank}: expected PeerFailed, got {other:?}"),
        }
    }
}

#[test]
fn soi_rank_crash_in_convolution_fails_typed() {
    assert_soi_fails_typed_under(
        FaultPlan::new(111).crash(3, CrashSite::Phase("convolution")),
        Some(3),
    );
}

#[test]
fn soi_rank_crash_in_segment_fft_fails_typed() {
    assert_soi_fails_typed_under(
        FaultPlan::new(112).crash(1, CrashSite::Phase("segment-fft")),
        Some(1),
    );
}

#[test]
fn soi_failure_without_recovery_is_deterministic() {
    // With recovery disabled the typed-failure path is the PR 1 contract,
    // and it must be reproducible: the same plan yields the same per-rank
    // outcome classification on every run.
    let run = || {
        run_soi(
            FaultPlan::new(113).crash(2, CrashSite::AllToAll),
            short_policy(),
        )
        .0
    };
    let classify = |outcomes: Vec<RankOutcome<Result<Vec<c64>, SoiRunError>>>| -> Vec<String> {
        outcomes
            .into_iter()
            .map(|o| match o {
                RankOutcome::Crashed => "crashed".to_string(),
                RankOutcome::Err(e) => format!("err:{e}"),
                RankOutcome::Ok(Err(e)) => format!("run-err:{}:{}", e.phase, e.error),
                RankOutcome::Ok(Ok(_)) => "ok".to_string(),
                RankOutcome::Panicked(msg) => format!("panic:{msg}"),
                // RankOutcome is non-exhaustive.
                other => format!("other:{other:?}"),
            })
            .collect()
    };
    assert_eq!(classify(run()), classify(run()));
}

// ---------------------------------------------------------------------
// SOI × supervised recovery: crashed runs COMPLETE and verify.
// ---------------------------------------------------------------------

/// Runs the supervised pipeline and asserts the gathered spectrum
/// verifies; returns the reported recovery outcome.
fn run_soi_recovered(plan: FaultPlan, restart: RestartPolicy) -> RecoveryOutcome {
    let p = soi_params();
    let x = signal(p.n);
    let want = reference_fft(&x);
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p).expect("valid params");
    let run = fft
        .forward_recovered(
            ClusterConfig::with_faults(plan),
            restart,
            &policy(),
            &inputs,
        )
        .expect("supervised run must complete");
    let got = gather_output(run.outputs);
    let err = rel_l2(&got, &want);
    assert!(
        err < 1e-9,
        "recovered spectrum must verify: rel err = {err:.3e}"
    );
    for (rank, stats) in run.stats.iter().enumerate() {
        assert_eq!(stats.recovery(), run.recovery, "rank {rank} ledger");
    }
    run.recovery
}

#[test]
fn soi_crash_recovers_with_respawn() {
    // One incarnation of rank 2 dies at the all-to-all; the supervisor
    // respawns, epoch 1 resumes from the committed checkpoints, and the
    // run completes with a verified spectrum.
    let recovery = run_soi_recovered(
        FaultPlan::new(121).crash(2, CrashSite::AllToAll),
        RestartPolicy::default(),
    );
    assert_eq!(
        recovery,
        RecoveryOutcome::Recovered {
            restarts: 1,
            recomputed_segments: 0
        }
    );
}

#[test]
fn soi_crash_mid_front_end_recovers_with_respawn() {
    let recovery = run_soi_recovered(
        FaultPlan::new(122).crash(1, CrashSite::Phase("segment-fft")),
        RestartPolicy::default(),
    );
    assert_eq!(
        recovery,
        RecoveryOutcome::Recovered {
            restarts: 1,
            recomputed_segments: 0
        }
    );
}

#[test]
fn soi_repeated_crash_recovers_within_budget() {
    // Two consecutive incarnations of rank 1 die; the default budget of
    // two restarts is exactly enough.
    let recovery = run_soi_recovered(
        FaultPlan::new(123).crash_times(1, CrashSite::AllToAll, 2),
        RestartPolicy::default(),
    );
    assert_eq!(
        recovery,
        RecoveryOutcome::Recovered {
            restarts: 2,
            recomputed_segments: 0
        }
    );
}

#[test]
fn soi_restart_budget_zero_degrades_and_completes() {
    // Recovery with no respawn budget at all: rank 2 dies mid-front-end
    // and stays dead. The three survivors re-derive the exchange frontier
    // (rank 2's from its convolution snapshot) and recompute every
    // missing output segment — all four ranks' outputs were lost with the
    // exchange, so all 4 × 2 segments are recomputed.
    let recovery = run_soi_recovered(
        FaultPlan::new(124).crash(2, CrashSite::Phase("segment-fft")),
        RestartPolicy::disabled(),
    );
    assert_eq!(
        recovery,
        RecoveryOutcome::Recovered {
            restarts: 0,
            recomputed_segments: 8
        }
    );
}

#[test]
fn soi_exhausted_budget_falls_back_to_degraded_mode() {
    // Rank 0 dies in every incarnation; after the budget is spent the
    // supervisor stops respawning and the degraded path finishes the job.
    let recovery = run_soi_recovered(
        FaultPlan::new(125).crash_times(0, CrashSite::AllToAll, 10),
        RestartPolicy {
            max_restarts: 1,
            ..RestartPolicy::default()
        },
    );
    match recovery {
        RecoveryOutcome::Recovered {
            restarts: 1,
            recomputed_segments,
        } => {
            assert_eq!(recomputed_segments, 8, "every output segment was lost")
        }
        other => panic!("expected degraded completion, got {other:?}"),
    }
}

#[test]
fn soi_recovered_clean_run_reports_no_recovery() {
    let recovery = run_soi_recovered(FaultPlan::new(126), RestartPolicy::default());
    assert_eq!(recovery, RecoveryOutcome::None);
}

#[test]
fn soi_recovered_absorbs_transient_storm_without_restarts() {
    // Transient faults are the link layer's job, not the supervisor's:
    // the run completes in epoch 0 with no recovery machinery exercised.
    let recovery = run_soi_recovered(
        FaultPlan::new(127).drop(0.2).corrupt(0.1).duplicate(0.1),
        RestartPolicy::default(),
    );
    assert_eq!(recovery, RecoveryOutcome::None);
}

// ---------------------------------------------------------------------
// Cooley–Tukey baseline × the same matrix.
// ---------------------------------------------------------------------

fn run_ct(plan: FaultPlan, policy: ExchangePolicy) -> ChaosRun<CommError> {
    let n = 1 << 12;
    let x = signal(n);
    let want = reference_fft(&x);
    let inputs = scatter_input(&x, PROCS);
    let fft = DistributedCtFft::new(n, PROCS).expect("valid split");
    let outcomes = run_cluster_with_faults(PROCS, plan, |comm| {
        fft.try_forward(comm, &inputs[comm.rank()], &policy)
    });
    (outcomes, want)
}

fn assert_ct_correct_under(plan: FaultPlan) {
    let (outcomes, want) = run_ct(plan, policy());
    let mut parts = Vec::new();
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Ok(Ok(y)) => parts.push(y),
            other => panic!("rank {rank}: expected success, got {other:?}"),
        }
    }
    let got = gather_output(parts);
    let err = rel_l2(&got, &want);
    assert!(err < 1e-9, "CT spectrum must verify: rel err = {err:.3e}");
}

#[test]
fn ct_survives_message_drops() {
    assert_ct_correct_under(FaultPlan::new(201).drop(0.3));
}

#[test]
fn ct_survives_message_delays() {
    assert_ct_correct_under(FaultPlan::new(202).delay(0.4, Duration::from_micros(200)));
}

#[test]
fn ct_survives_message_duplication() {
    assert_ct_correct_under(FaultPlan::new(203).duplicate(0.4));
}

#[test]
fn ct_survives_bit_corruption() {
    assert_ct_correct_under(FaultPlan::new(204).corrupt(0.3));
}

#[test]
fn ct_rank_crash_fails_typed_and_unblocks_survivors() {
    let (outcomes, _) = run_ct(
        FaultPlan::new(205).crash(1, CrashSite::AllToAll),
        short_policy(),
    );
    for (rank, o) in outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Crashed => assert_eq!(rank, 1),
            RankOutcome::Err(e) => assert_eq!(e, CommError::PeerFailed { rank: 1 }),
            RankOutcome::Ok(Err(e)) => assert_eq!(e, CommError::PeerFailed { rank: 1 }),
            RankOutcome::Ok(Ok(_)) => panic!("rank {rank}: must not succeed"),
            RankOutcome::Panicked(msg) => panic!("rank {rank}: unhandled panic: {msg}"),
            // RankOutcome is non-exhaustive.
            other => panic!("rank {rank}: unexpected outcome {other:?}"),
        }
    }
}

#[test]
fn ct_crash_recovers_with_respawn() {
    // The baseline's recoverable variant under the supervisor directly:
    // one incarnation of rank 1 dies at the first transpose, epoch 1
    // resumes from the committed ct-* checkpoints and verifies.
    let n = 1 << 12;
    let x = signal(n);
    let want = reference_fft(&x);
    let inputs = scatter_input(&x, PROCS);
    let fft = DistributedCtFft::new(n, PROCS).expect("valid split");
    let plan = FaultPlan::new(221).crash(1, CrashSite::AllToAll);
    let supervisor = Supervisor::new(ClusterConfig::with_faults(plan), RestartPolicy::default());
    let run = supervisor.run(PROCS, |comm, ctx| {
        fft.try_forward_recoverable(comm, &inputs[comm.rank()], &policy(), ctx)
    });
    assert_eq!(run.restarts, 1, "one respawn must suffice");
    let mut parts = Vec::new();
    for (rank, o) in run.outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Ok(Ok(y)) => parts.push(y),
            other => panic!("rank {rank}: expected success after respawn, got {other:?}"),
        }
    }
    let got = gather_output(parts);
    let err = rel_l2(&got, &want);
    assert!(
        err < 1e-9,
        "CT recovered spectrum must verify: rel err = {err:.3e}"
    );
}

#[test]
fn ct_repeated_crash_recovers_and_skips_committed_transposes() {
    // Rank 3 dies twice at its second local-FFT stage; by then the first
    // two transposes have committed, so each respawned epoch resumes past
    // them (the committed list freezes per epoch) and the third attempt
    // completes and verifies.
    let n = 1 << 12;
    let x = signal(n);
    let want = reference_fft(&x);
    let inputs = scatter_input(&x, PROCS);
    let fft = DistributedCtFft::new(n, PROCS).expect("valid split");
    let plan = FaultPlan::new(222).crash_times(3, CrashSite::Phase("ct-fft-2"), 2);
    let supervisor = Supervisor::new(ClusterConfig::with_faults(plan), RestartPolicy::default());
    let run = supervisor.run(PROCS, |comm, ctx| {
        let y = fft.try_forward_recoverable(comm, &inputs[comm.rank()], &policy(), ctx);
        (y, comm.stats().count_of("all-to-all"))
    });
    assert_eq!(run.restarts, 2);
    let mut parts = Vec::new();
    for (rank, o) in run.outcomes.into_iter().enumerate() {
        match o {
            RankOutcome::Ok((Ok(y), a2a)) => {
                // The final epoch resumed at the committed second
                // transpose: only the last exchange re-ran.
                assert_eq!(
                    a2a, 1,
                    "rank {rank}: resumed epochs must skip committed exchanges"
                );
                parts.push(y);
            }
            other => panic!("rank {rank}: expected success after respawns, got {other:?}"),
        }
    }
    let got = gather_output(parts);
    let err = rel_l2(&got, &want);
    assert!(
        err < 1e-9,
        "CT recovered spectrum must verify: rel err = {err:.3e}"
    );
}

// ---------------------------------------------------------------------
// Cross-cutting: injected-event determinism at the suite level.
// ---------------------------------------------------------------------

#[test]
fn chaos_runs_report_fault_events() {
    // The injector's event counters surface through Comm::fault_events so
    // a chaos harness can check the plan actually fired.
    let p = soi_params();
    let x = signal(p.n);
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p).expect("valid params");
    let plan = FaultPlan::new(110).drop(0.3).duplicate(0.2);
    let outcomes = run_cluster_with_faults(p.procs, plan, |comm| {
        let y = fft.try_forward(comm, &inputs[comm.rank()], &policy());
        (y, comm.fault_events().expect("plan installed"))
    });
    let mut total = 0u64;
    for o in outcomes {
        let (y, events) = o.unwrap();
        assert!(y.is_ok());
        total += events.total();
    }
    assert!(total > 0, "the plan must have injected something");
}
