//! Property-based tests (proptest) on the core numerical invariants.

use proptest::prelude::*;
use soifft::fft::{dft, Plan, SixStepFft, SixStepVariant};
use soifft::num::c64;
use soifft::num::error::{rel_l2, rel_linf};
use soifft::num::transpose::{transpose, transpose_square_in_place};
use soifft::soi::{Rational, SoiFftLocal};

fn complex_vec(n: usize) -> impl Strategy<Value = Vec<c64>> {
    prop::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(r, i)| c64::new(r, i)),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// fft(x) matches the O(n²) direct DFT for arbitrary data and sizes,
    /// including primes (Bluestein) and mixed composites.
    #[test]
    fn fft_matches_direct_dft(
        n in prop::sample::select(vec![2usize, 3, 7, 16, 24, 31, 37, 60, 128, 210, 251]),
        seed in 0u64..1000,
    ) {
        let x = seeded(n, seed);
        let mut got = x.clone();
        Plan::new(n).forward(&mut got);
        let want = dft::dft(&x);
        prop_assert!(rel_linf(&got, &want) < 1e-9);
    }

    /// inverse(forward(x)) == x for arbitrary data.
    #[test]
    fn fft_round_trip(
        n in prop::sample::select(vec![4usize, 12, 27, 64, 100, 241]),
        x in complex_vec(64),
    ) {
        let x = &x[..64.min(x.len())];
        // Resize deterministically to n.
        let data: Vec<c64> = (0..n).map(|i| x[i % x.len()]).collect();
        let plan = Plan::new(n);
        let mut d = data.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        prop_assert!(rel_linf(&d, &data) < 1e-10);
    }

    /// Parseval: energy preserved (scaled by n) for every plan kind.
    #[test]
    fn fft_parseval(
        n in prop::sample::select(vec![8usize, 30, 61, 256]),
        seed in 0u64..1000,
    ) {
        let x = seeded(n, seed);
        let mut y = x.clone();
        Plan::new(n).forward(&mut y);
        let ex: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((ex - ey).abs() <= 1e-10 * ex.max(1.0));
    }

    /// FFT is linear: fft(a·x + y) == a·fft(x) + fft(y).
    #[test]
    fn fft_linearity(
        seed in 0u64..1000,
        scale_re in -2.0f64..2.0,
        scale_im in -2.0f64..2.0,
    ) {
        let n = 96;
        let a = c64::new(scale_re, scale_im);
        let x = seeded(n, seed);
        let y = seeded(n, seed + 1);
        let plan = Plan::new(n);
        let mix: Vec<c64> = x.iter().zip(&y).map(|(&u, &v)| a * u + v).collect();
        let mut lhs = mix;
        plan.forward(&mut lhs);
        let mut fx = x;
        plan.forward(&mut fx);
        let mut fy = y;
        plan.forward(&mut fy);
        let rhs: Vec<c64> = fx.iter().zip(&fy).map(|(&u, &v)| a * u + v).collect();
        prop_assert!(rel_l2(&lhs, &rhs) < 1e-11);
    }

    /// Every 6-step variant equals the plain plan on arbitrary data.
    #[test]
    fn sixstep_variants_equal_plan(
        seed in 0u64..500,
        variant_idx in 0usize..4,
    ) {
        let n = 1 << 9;
        let x = seeded(n, seed);
        let variant = SixStepVariant::LADDER[variant_idx];
        let six = SixStepFft::new(n, variant);
        let mut got = x.clone();
        let mut aux = vec![c64::ZERO; n];
        six.forward(&mut got, &mut aux);
        let mut want = x;
        Plan::new(n).forward(&mut want);
        prop_assert!(rel_linf(&got, &want) < 1e-11);
    }

    /// Transpose is an involution for arbitrary shapes.
    #[test]
    fn transpose_involution(
        rows in 1usize..24,
        cols in 1usize..24,
        seed in 0u64..100,
    ) {
        let m = seeded(rows * cols, seed);
        let mut t = vec![c64::ZERO; rows * cols];
        let mut back = vec![c64::ZERO; rows * cols];
        transpose(&m, &mut t, rows, cols);
        transpose(&t, &mut back, cols, rows);
        prop_assert_eq!(back, m);
    }

    /// In-place square transpose equals the out-of-place one.
    #[test]
    fn square_transpose_in_place(
        n in 1usize..32,
        seed in 0u64..100,
    ) {
        let m = seeded(n * n, seed);
        let mut a = m.clone();
        transpose_square_in_place(&mut a, n);
        let mut b = vec![c64::ZERO; n * n];
        transpose(&m, &mut b, n, n);
        prop_assert_eq!(a, b);
    }

    /// SOI is linear (it is a composition of linear operators) and its
    /// deviation from the true DFT stays within the design bound across
    /// random inputs.
    #[test]
    fn soi_linear_and_accurate(seed in 0u64..200) {
        let n = 1 << 10;
        let soi = SoiFftLocal::new(n, 8, Rational::new(2, 1), 20).unwrap();
        let x = seeded(n, seed);
        let y = seeded(n, seed + 7);
        let sum: Vec<c64> = x.iter().zip(&y).map(|(&u, &v)| u + v).collect();
        let fs = soi.forward(&sum);
        let fx = soi.forward(&x);
        let fy = soi.forward(&y);
        let lin: Vec<c64> = fx.iter().zip(&fy).map(|(&u, &v)| u + v).collect();
        prop_assert!(rel_l2(&fs, &lin) < 1e-12);

        let mut want = x;
        Plan::new(n).forward(&mut want);
        prop_assert!(rel_l2(&fx, &want) < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Real-input FFT round trip and Hermitian symmetry for random even
    /// lengths and data.
    #[test]
    fn real_fft_round_trip(
        half in 2usize..200,
        seed in 0u64..500,
    ) {
        let n = half * 2;
        let x: Vec<f64> = seeded(n, seed).iter().map(|z| z.re).collect();
        let plan = soifft::fft::RealFft::new(n);
        let spec = plan.forward(&x);
        // DC and Nyquist must be (numerically) real.
        prop_assert!(spec[0].im.abs() < 1e-9 * (1.0 + spec[0].re.abs()));
        prop_assert!(spec[half].im.abs() < 1e-9 * (1.0 + spec[half].re.abs()));
        let back = plan.inverse(&spec);
        let err = x
            .iter()
            .zip(&back)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(err < 1e-9, "n={} err={:.3e}", n, err);
    }

    /// 2D plan separability: transforming rows then columns by hand equals
    /// the plan, for arbitrary shapes.
    #[test]
    fn plan2d_separability(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in 0u64..200,
    ) {
        use soifft::num::transpose::transpose;
        let x = seeded(rows * cols, seed);
        let mut got = x.clone();
        soifft::fft::Plan2d::new(rows, cols).forward(&mut got);

        let mut want = x;
        soifft::fft::batch::forward_rows(&Plan::new(cols), &mut want);
        let mut t = vec![c64::ZERO; rows * cols];
        transpose(&want, &mut t, rows, cols);
        soifft::fft::batch::forward_rows(&Plan::new(rows), &mut t);
        let mut back = vec![c64::ZERO; rows * cols];
        transpose(&t, &mut back, cols, rows);
        prop_assert!(rel_linf(&got, &back) < 1e-11);
    }

    /// Kernel primitives agree with naive loops on arbitrary data.
    #[test]
    fn kernels_match_naive(len in 0usize..64, seed in 0u64..300) {
        use soifft::num::kernels::{axpy_pointwise, dot, mul_pointwise};
        let t = seeded(len, seed);
        let x = seeded(len, seed + 1);
        let mut acc = seeded(len, seed + 2);
        let mut expect = acc.clone();
        axpy_pointwise(&mut acc, &t, &x);
        for i in 0..len {
            expect[i] += t[i] * x[i];
        }
        prop_assert!(rel_linf(&acc, &expect) < 1e-12 || len == 0);

        let naive: c64 = t.iter().zip(&x).map(|(&a, &b)| a * b).sum();
        prop_assert!((dot(&t, &x) - naive).abs() < 1e-10 * (1.0 + naive.abs()));

        let mut d = seeded(len, seed + 3);
        let expect: Vec<c64> = d.iter().zip(&t).map(|(&a, &b)| a * b).collect();
        mul_pointwise(&mut d, &t);
        prop_assert!(rel_linf(&d, &expect) < 1e-13 || len == 0);
    }

    /// The iterative engine equals the recursive plan on random pow2 data.
    #[test]
    fn iterative_equals_recursive(
        log2n in 0u32..12,
        seed in 0u64..300,
    ) {
        let n = 1usize << log2n;
        let x = seeded(n, seed);
        let mut a = x.clone();
        soifft::fft::IterativeFft::new(n).forward(&mut a);
        let mut st = x.clone();
        let mut scratch = vec![c64::ZERO; n];
        soifft::fft::StockhamFft::new(n).forward(&mut st, &mut scratch);
        let mut b = x;
        Plan::new(n).forward(&mut b);
        prop_assert!(rel_linf(&a, &b) < 1e-10);
        prop_assert!(rel_linf(&st, &b) < 1e-10);
    }
}

/// Deterministic pseudo-random data parameterized by a seed (so proptest
/// shrinking stays meaningful).
fn seeded(n: usize, seed: u64) -> Vec<c64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n).map(|_| c64::new(next(), next())).collect()
}
