//! Mixed-precision SNR accuracy gate (DESIGN.md §1j).
//!
//! The f32 and split data paths trade exchange bandwidth for rounding
//! noise; this suite pins the trade to documented floors, measured as
//! SNR (dB) against the **f64 SOI run on identical inputs** — which
//! isolates precision noise from the window's alias leakage (shared by
//! all three precisions) — across the full ConvStrategy × ExchangePlan
//! grid. Floors are set ~15 dB below typical measurements at this size
//! so they gate precision regressions, not run-to-run jitter:
//!
//! * `Precision::F32`   ≥ 100 dB  (c32 wire + f32 recovery FFT)
//! * `Precision::Split` ≥ 120 dB  (c32 wire, f64 recovery accumulate)
//!
//! The same grid also re-checks the ladder ordering (split strictly more
//! accurate than f32) and that the f64 path is unaffected by the builder.

use soifft::cluster::Cluster;
use soifft::num::c64;
use soifft::soi::accuracy::snr_db;
use soifft::soi::pipeline::{gather_output, scatter_input};
use soifft::soi::{ConvStrategy, ExchangePlan, Precision, Rational, SoiFft, SoiParams};

const F32_FLOOR_DB: f64 = 100.0;
const SPLIT_FLOOR_DB: f64 = 120.0;

fn params() -> SoiParams {
    SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    }
}

fn signal(n: usize) -> Vec<c64> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64 | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..n).map(|_| c64::new(next(), next())).collect()
}

/// One distributed SOI run at the given configuration, gathered to the
/// natural output order.
fn run(strategy: ConvStrategy, exchange: ExchangePlan, precision: Precision) -> Vec<c64> {
    let p = params();
    let x = signal(p.n);
    let inputs = scatter_input(&x, p.procs);
    let fft = SoiFft::new(p)
        .expect("valid params")
        .with_strategy(strategy)
        .with_exchange(exchange)
        .with_precision(precision);
    let outputs = Cluster::run(p.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
    gather_output(outputs)
}

fn exchange_grid() -> [ExchangePlan; 5] {
    [
        ExchangePlan::Monolithic,
        ExchangePlan::Chunked(53),
        ExchangePlan::PerSegment,
        ExchangePlan::Overlapped,
        ExchangePlan::Proxied(96),
    ]
}

#[test]
fn f32_holds_snr_floor_across_strategy_exchange_grid() {
    for strategy in ConvStrategy::ALL {
        let oracle = run(strategy, ExchangePlan::Monolithic, Precision::F64);
        for exchange in exchange_grid() {
            let got = run(strategy, exchange, Precision::F32);
            let snr = snr_db(&got, &oracle);
            assert!(
                snr >= F32_FLOOR_DB,
                "{strategy:?} × {exchange:?}: f32 SNR {snr:.1} dB below floor {F32_FLOOR_DB} dB"
            );
        }
    }
}

#[test]
fn split_holds_snr_floor_across_strategy_exchange_grid() {
    for strategy in ConvStrategy::ALL {
        let oracle = run(strategy, ExchangePlan::Monolithic, Precision::F64);
        for exchange in exchange_grid() {
            let got = run(strategy, exchange, Precision::Split);
            let snr = snr_db(&got, &oracle);
            assert!(
                snr >= SPLIT_FLOOR_DB,
                "{strategy:?} × {exchange:?}: split SNR {snr:.1} dB below floor {SPLIT_FLOOR_DB} dB"
            );
        }
    }
}

#[test]
fn split_strictly_more_accurate_than_f32() {
    let oracle = run(
        ConvStrategy::InterchangedBuffered,
        ExchangePlan::Monolithic,
        Precision::F64,
    );
    let f32_out = run(
        ConvStrategy::InterchangedBuffered,
        ExchangePlan::Monolithic,
        Precision::F32,
    );
    let split_out = run(
        ConvStrategy::InterchangedBuffered,
        ExchangePlan::Monolithic,
        Precision::Split,
    );
    let snr32 = snr_db(&f32_out, &oracle);
    let snr_split = snr_db(&split_out, &oracle);
    assert!(
        snr_split > snr32,
        "ladder inverted: split {snr_split:.1} dB ≤ f32 {snr32:.1} dB"
    );
}

#[test]
fn exchange_plan_does_not_change_lowprec_bits() {
    // The five exchange plans move the same half-width payloads in
    // different schedules; the recovered spectrum must be bit-identical
    // regardless of plan, for both reduced precisions.
    for precision in [Precision::F32, Precision::Split] {
        let baseline = run(
            ConvStrategy::InterchangedBuffered,
            ExchangePlan::Monolithic,
            precision,
        );
        for exchange in exchange_grid() {
            let got = run(ConvStrategy::InterchangedBuffered, exchange, precision);
            assert_eq!(baseline.len(), got.len());
            for (i, (a, b)) in baseline.iter().zip(&got).enumerate() {
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "{precision:?} × {exchange:?}: bin {i} differs from Monolithic"
                );
            }
        }
    }
}
