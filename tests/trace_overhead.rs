//! Release-mode overhead gate for the tracing layer: a traced superstep
//! must cost within 2% of an untraced one (median of repeated runs, with
//! a small absolute floor so micro-second jitter on fast machines cannot
//! fail the gate spuriously). The span instrumentation is a handful of
//! `Instant::now` calls per superstep, so anything above the tolerance
//! means a hot-path regression, not noise.
//!
//! Ignored by default — timing assertions are meaningless under an
//! unoptimized build or a loaded CI sharder. The nightly workflow runs it
//! explicitly:
//!
//! ```sh
//! cargo test --release --test trace_overhead -- --ignored
//! ```

use std::time::Instant;

use soifft::cluster::{Cluster, ClusterConfig};
use soifft::num::c64;
use soifft::soi::pipeline::scatter_input;
use soifft::soi::{Rational, SoiFft, SoiParams};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

#[test]
#[ignore = "timing gate: run in release via the nightly workflow"]
fn disabled_and_enabled_tracing_stay_within_two_percent() {
    let params = SoiParams {
        n: 1 << 14,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    };
    let inputs = scatter_input(
        &(0..params.n)
            .map(|i| c64::new((0.05 * i as f64).sin(), (0.11 * i as f64).cos()))
            .collect::<Vec<_>>(),
        params.procs,
    );
    let fft = SoiFft::new(params).unwrap();

    let time_with = |config: fn() -> ClusterConfig| -> Vec<f64> {
        (0..15)
            .map(|_| {
                let t = Instant::now();
                Cluster::run_with(config(), params.procs, |comm| {
                    fft.forward(comm, &inputs[comm.rank()]);
                })
                .into_iter()
                .for_each(|o| {
                    o.unwrap();
                });
                t.elapsed().as_secs_f64()
            })
            .collect()
    };

    // Warm up allocators, thread spawning and branch predictors once.
    let _ = time_with(ClusterConfig::default);

    let disabled = median(time_with(ClusterConfig::default));
    let enabled = median(time_with(ClusterConfig::with_trace));

    // 2% relative, 200µs absolute floor (a superstep at this size runs
    // ~ms; the floor only matters if the machine is improbably fast).
    let budget = disabled * 1.02 + 200e-6;
    assert!(
        enabled <= budget,
        "traced superstep {enabled:.6} s exceeds untraced {disabled:.6} s + 2% ({budget:.6} s)"
    );
}

/// The workspace hot path must never cost more than the allocating
/// wrapper it replaced: a warm `forward_into` call is `forward` minus the
/// per-call allocations, so it gets the same superstep budget plus a
/// small jitter allowance. (The throughput *win* is benchmarked and
/// reported by `soifft-bench`'s `throughput` binary; this gate only pins
/// the no-regression floor.)
#[test]
#[ignore = "timing gate: run in release via the nightly workflow"]
fn warm_workspace_calls_do_not_regress_fresh_forward() {
    let params = SoiParams {
        n: 1 << 14,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    };
    let inputs = scatter_input(
        &(0..params.n)
            .map(|i| c64::new((0.05 * i as f64).sin(), (0.11 * i as f64).cos()))
            .collect::<Vec<_>>(),
        params.procs,
    );
    let fft = SoiFft::new(params).unwrap();

    // Time both paths inside one cluster so thread spawning and channel
    // wiring stay out of the measurement; a barrier aligns the ranks
    // before every timed superstep.
    let medians = Cluster::run(params.procs, |comm| {
        let me = &inputs[comm.rank()];
        let mut ws = fft.make_workspace();
        let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
        for _ in 0..3 {
            fft.forward_into(comm, me, &mut ws, &mut y);
        }
        let fresh: Vec<f64> = (0..15)
            .map(|_| {
                comm.barrier();
                let t = Instant::now();
                let _ = fft.forward(comm, me);
                t.elapsed().as_secs_f64()
            })
            .collect();
        let warm: Vec<f64> = (0..15)
            .map(|_| {
                comm.barrier();
                let t = Instant::now();
                fft.forward_into(comm, me, &mut ws, &mut y);
                t.elapsed().as_secs_f64()
            })
            .collect();
        (median(fresh), median(warm))
    });

    for (rank, (fresh, warm)) in medians.into_iter().enumerate() {
        let budget = fresh * 1.05 + 200e-6;
        assert!(
            warm <= budget,
            "rank {rank}: warm forward_into {warm:.6} s exceeds fresh \
             forward {fresh:.6} s + 5% ({budget:.6} s)"
        );
    }
}
