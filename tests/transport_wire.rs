//! Property-based tests for the multi-process transport's wire codec
//! (PR 7 satellite): round trips across payload sizes including empty
//! and larger-than-ring frames, truncation always reads as "feed me
//! more", corrupted length prefixes never drive an allocation, and
//! cross-epoch frames are identifiable for rejection. The PR 8 TCP
//! backend adds adversarial stream segmentation: frames must survive a
//! socket that returns one byte at a time, splits reads at the
//! header/payload boundary, or coalesces several frames into one read.

use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use soifft::cluster::transport::shm::{shm_dir, ShmRing};
use soifft::cluster::transport::wire::{
    decode_frame, encode_frame, read_frame, Frame, FrameKind, WireError, HEADER_LEN,
    MAX_PAYLOAD_ELEMS,
};
use soifft::num::c64;

/// A `Read` whose returns follow a script of chunk sizes — an
/// adversarial TCP socket that segments the stream however it likes
/// (after the script runs out, it serves whatever remains).
struct ScriptedRead {
    bytes: Vec<u8>,
    pos: usize,
    script: Vec<usize>,
    step: usize,
}

impl ScriptedRead {
    fn new(bytes: Vec<u8>, script: Vec<usize>) -> Self {
        ScriptedRead {
            bytes,
            pos: 0,
            script,
            step: 0,
        }
    }
}

impl Read for ScriptedRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.bytes.len() - self.pos;
        let scripted = match self.script.get(self.step) {
            Some(&n) => n,
            None => remaining,
        };
        self.step += 1;
        let n = scripted.min(remaining).min(buf.len());
        buf[..n].copy_from_slice(&self.bytes[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn data_frame(len: usize, seed: u64, seq: u64) -> Frame {
    Frame {
        kind: FrameKind::Data,
        src: 1,
        dst: 0,
        tag: 42,
        seq,
        checksum: 0,
        generation: 5,
        payload: payload(len, seed),
    }
}

#[test]
fn frame_survives_one_byte_at_a_time_delivery() {
    let frame = data_frame(17, 0x00A1_1CE5, 3);
    let bytes = encode_frame(&frame);
    let script = vec![1; bytes.len()];
    let mut r = ScriptedRead::new(bytes, script);
    let got = read_frame(&mut r)
        .expect("stream stays healthy")
        .expect("frame decodes");
    assert_eq!(got, frame);
}

#[test]
fn frame_survives_a_split_at_the_header_payload_boundary() {
    let frame = data_frame(9, 0xB0B, 8);
    let bytes = encode_frame(&frame);
    // Exactly the header in the first read, a lone byte next, then the
    // rest — the boundary every framing bug lives on.
    let script = vec![HEADER_LEN, 1, bytes.len()];
    let mut r = ScriptedRead::new(bytes, script);
    let got = read_frame(&mut r)
        .expect("stream stays healthy")
        .expect("frame decodes");
    assert_eq!(got, frame);
}

#[test]
fn two_coalesced_frames_come_out_as_two_frames() {
    let a = data_frame(5, 0xF00D, 1);
    let b = data_frame(31, 0xBEEF, 2);
    let mut bytes = encode_frame(&a);
    bytes.extend_from_slice(&encode_frame(&b));
    // One read delivers everything at once, as a coalescing kernel
    // buffer would; the reader must stop at the first frame boundary
    // and leave the second frame intact for the next call.
    let total = bytes.len();
    let mut r = ScriptedRead::new(bytes, vec![total]);
    let first = read_frame(&mut r)
        .expect("stream stays healthy")
        .expect("first frame decodes");
    assert_eq!(first, a);
    let second = read_frame(&mut r)
        .expect("stream stays healthy")
        .expect("second frame decodes");
    assert_eq!(second, b);
}

fn payload(len: usize, seed: u64) -> Vec<c64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
    };
    (0..len).map(|_| c64::new(next(), next())).collect()
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        (
            prop::sample::select(vec![
                FrameKind::Data,
                FrameKind::Hello,
                FrameKind::Heartbeat,
                FrameKind::PeerDown,
                FrameKind::BarrierEnter,
            ]),
            0u32..64,
            0u32..64,
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            0u64..16,
            // Payload sizes from empty through well past the test ring's
            // capacity (96 elems = 1536 payload bytes ≫ 256-byte ring).
            prop::sample::select(vec![0usize, 1, 2, 7, 15, 16, 17, 63, 96]),
            any::<u64>(),
        ),
    )
        .prop_map(
            |((kind, src, dst, tag, seq), (checksum, generation, len, seed))| Frame {
                kind,
                src,
                dst,
                tag,
                seq,
                checksum,
                generation,
                payload: payload(len, seed),
            },
        )
}

proptest! {
    /// Encode → decode is the identity on every field, and the decoder
    /// reports exactly the encoded length as consumed.
    #[test]
    fn round_trip_preserves_frame(frame in frame_strategy()) {
        let bytes = encode_frame(&frame);
        let (back, used) = decode_frame(&bytes).expect("clean frame decodes");
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, frame);
    }

    /// Any prefix of a valid frame decodes to `Truncated` with an honest
    /// byte count — the streaming contract ring consumers rely on.
    #[test]
    fn every_truncation_asks_for_more_bytes(
        frame in frame_strategy(),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = encode_frame(&frame);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        match decode_frame(&bytes[..cut]) {
            Err(WireError::Truncated { needed, have }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(needed > cut);
                prop_assert!(needed <= bytes.len());
            }
            other => prop_assert!(false, "cut {cut}: expected Truncated, got {other:?}"),
        }
    }

    /// Flipping any single bit of the header is detected before the
    /// decoder trusts anything — a corrupted length prefix in particular
    /// can never drive an allocation or a mis-framed read.
    #[test]
    fn any_header_bit_flip_is_rejected(
        frame in frame_strategy(),
        byte in 0usize..HEADER_LEN,
        bit in 0u8..8,
    ) {
        let mut bytes = encode_frame(&frame);
        bytes[byte] ^= 1 << bit;
        let got = decode_frame(&bytes);
        match byte {
            0..=3 => prop_assert_eq!(got, Err(WireError::BadMagic)),
            56..=63 => prop_assert_eq!(got, Err(WireError::HeaderCorrupt)),
            _ => prop_assert!(
                matches!(got, Err(WireError::HeaderCorrupt)),
                "byte {byte}: got {got:?}"
            ),
        }
    }

    /// A length prefix re-stamped with a fresh header checksum (the
    /// hostile-peer case) is still capped at [`MAX_PAYLOAD_ELEMS`].
    #[test]
    fn oversized_length_claims_are_capped(extra in 1u64..1 << 20) {
        let frame = Frame::control(FrameKind::Data, 0, 1);
        let mut bytes = encode_frame(&frame);
        let claim = MAX_PAYLOAD_ELEMS + extra;
        bytes[56..64].copy_from_slice(&claim.to_le_bytes());
        // Recompute the header FNV so only the overflow check can object.
        let sum = fnv1a(&bytes[..HEADER_LEN - 8]).to_le_bytes();
        bytes[HEADER_LEN - 8..HEADER_LEN].copy_from_slice(&sum);
        prop_assert_eq!(decode_frame(&bytes), Err(WireError::LengthOverflow(claim)));
    }

    /// Generation tagging: a frame identifies with exactly its own
    /// supervision epoch, so ingestion can drop a dead incarnation's
    /// leftover traffic.
    #[test]
    fn cross_epoch_frames_are_identifiable(frame in frame_strategy(), delta in 1u64..1 << 32) {
        let bytes = encode_frame(&frame);
        let (back, _) = decode_frame(&bytes).expect("clean frame decodes");
        prop_assert!(back.is_for_generation(frame.generation));
        prop_assert!(!back.is_for_generation(frame.generation.wrapping_add(delta)));
        prop_assert!(!back.is_for_generation(frame.generation.wrapping_sub(delta)));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Frames stream bit-identically through a shared-memory ring far
    /// smaller than the frame — the producer's partial pushes and the
    /// consumer's `Truncated`-driven reassembly compose to the identity.
    #[test]
    fn round_trip_through_undersized_ring(frame in frame_strategy()) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let path = shm_dir().join(format!(
            "soifft-wiretest-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let producer = ShmRing::create(&path, 256).expect("create ring");
        let consumer = ShmRing::open(&path).expect("open ring");
        let bytes = encode_frame(&frame);
        let mut pushed = 0usize;
        let mut acc: Vec<u8> = Vec::new();
        let mut buf = [0u8; 128];
        let mut spins = 0u32;
        let decoded = loop {
            spins += 1;
            prop_assert!(spins < 100_000, "ring transfer made no progress");
            if pushed < bytes.len() {
                pushed += producer.try_push(&bytes[pushed..]).expect("push");
            }
            let n = consumer.try_pop(&mut buf).expect("pop");
            acc.extend_from_slice(&buf[..n]);
            match decode_frame(&acc) {
                Ok((f, used)) => {
                    prop_assert_eq!(used, bytes.len());
                    break f;
                }
                Err(WireError::Truncated { .. }) => continue,
                Err(e) => return Err(TestCaseError::fail(format!("ring corrupted frame: {e}"))),
            }
        };
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(decoded, frame);
    }
}

/// Mirror of the codec's private header FNV (the hostile-peer test needs
/// to forge a valid header checksum).
fn fnv1a(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    bytes
        .iter()
        .fold(SEED, |h, &b| (h ^ b as u64).wrapping_mul(PRIME))
}
