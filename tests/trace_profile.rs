//! The tracing layer's accounting must *reconcile*: the aggregated
//! [`RunProfile`] is derived from the per-rank ledgers, so its byte and
//! retry counters must equal the ledger sums exactly, its simulated
//! per-phase times must equal the closed-form model prediction
//! ([`PlanReport::predicted_phases`] — same formulas, same numbers), and
//! every rank's `"superstep"` span must contain its child phases (a child
//! is a disjoint sub-interval of the parent, so child durations can never
//! sum past the parent's).

use proptest::prelude::*;

use soifft::cluster::{Cluster, ClusterConfig, CommStats, RankOutcome, RunProfile};
use soifft::num::c64;
use soifft::soi::pipeline::scatter_input;
use soifft::soi::{PlanReport, Rational, SimSpec, SoiFft, SoiParams};

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| c64::new((0.05 * i as f64).sin() + 0.4, 0.3 * (0.11 * i as f64).cos()))
        .collect()
}

fn sim() -> SimSpec {
    SimSpec {
        fft_flops_per_s: 1e9,
        conv_flops_per_s: 2e9,
        net_bytes_per_s: 1e8,
        net_latency_s: 1e-4,
    }
}

/// A traced, simulated SOI run; returns the per-rank ledgers.
fn traced_run(params: SoiParams) -> Vec<CommStats> {
    let inputs = scatter_input(&signal(params.n), params.procs);
    let fft = SoiFft::new(params).expect("valid params").with_sim(sim());
    Cluster::run_with(ClusterConfig::with_trace(), params.procs, |comm| {
        fft.forward(comm, &inputs[comm.rank()]);
        comm.stats().clone()
    })
    .into_iter()
    .map(|o| match o {
        RankOutcome::Ok(s) => s,
        other => panic!("rank failed: {other:?}"),
    })
    .collect()
}

fn check_reconciles(params: SoiParams, stats: &[CommStats]) {
    let profile = RunProfile::from_stats(stats);

    // Bytes and retries are exact ledger sums — no tolerance.
    let ledger_bytes: u64 = stats.iter().map(CommStats::total_bytes_sent).sum();
    assert_eq!(profile.total_bytes, ledger_bytes);
    let ledger_retx: u64 = stats.iter().map(CommStats::retransmits).sum();
    assert_eq!(profile.retransmits, ledger_retx);

    // Per-phase simulated time equals the a-priori model exactly: the
    // ledger applied the same formulas the report predicts with.
    let predicted = PlanReport::new(params).unwrap().predicted_phases(&sim());
    for s in stats {
        for (name, model_s) in predicted.phases() {
            let measured = s.sim_seconds_in(name);
            assert!(
                (measured - model_s).abs() <= 1e-12 * model_s.max(1.0),
                "{name}: measured sim {measured} vs model {model_s}"
            );
        }
    }

    // The all-to-all column is the paper's headline quantity: µ·N/P bytes
    // per rank, summed over ranks.
    let a2a = profile.phase("all-to-all").expect("phase present");
    let per_rank = PlanReport::new(params).unwrap().alltoall_bytes as u64;
    assert_eq!(a2a.total_bytes, per_rank * params.procs as u64);

    // Span containment: each rank's superstep wall time bounds the sum of
    // its children (children are disjoint sub-intervals of the parent).
    for s in stats {
        let events = s.trace_events();
        let superstep = events
            .iter()
            .find(|e| e.name == "superstep")
            .expect("superstep span");
        let children: f64 = events
            .iter()
            .filter(|e| e.depth == 1)
            .map(|e| e.dur_s)
            .sum();
        assert!(
            children <= superstep.dur_s * (1.0 + 1e-9) + 1e-9,
            "children sum {children} exceeds superstep {}",
            superstep.dur_s
        );
    }
}

#[test]
fn profile_reconciles_with_ledgers_and_model() {
    let params = SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    };
    let stats = traced_run(params);
    check_reconciles(params, &stats);
}

/// Companion to the zero-allocation harness: the communication layer's
/// staging-copy ledger (`comm_allocs` — counted whenever a payload must be
/// staged into a *fresh* allocation because the buffer pool missed) goes
/// quiet once a workspace run is warm. The cold calls populate the pool;
/// from then on every exchange payload is a recycled buffer and the
/// counter must not move at all.
#[test]
fn warm_workspace_run_stops_accruing_comm_allocs() {
    let params = SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    };
    let inputs = scatter_input(&signal(params.n), params.procs);
    let fft = SoiFft::new(params).expect("valid params").with_sim(sim());

    let ledgers = Cluster::run_with(ClusterConfig::with_trace(), params.procs, |comm| {
        let me = &inputs[comm.rank()];
        let mut ws = fft.make_workspace();
        let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
        for _ in 0..2 {
            fft.forward_into(comm, me, &mut ws, &mut y);
        }
        let warm = comm.stats().comm_allocs();
        for _ in 0..4 {
            fft.forward_into(comm, me, &mut ws, &mut y);
        }
        (warm, comm.stats().comm_allocs())
    });

    for (rank, outcome) in ledgers.into_iter().enumerate() {
        let (warm, total) = match outcome {
            RankOutcome::Ok(pair) => pair,
            other => panic!("rank {rank} failed: {other:?}"),
        };
        assert!(warm > 0, "rank {rank}: cold calls should miss the pool");
        assert_eq!(
            total,
            warm,
            "rank {rank}: comm_allocs grew by {} across 4 warm calls; the \
             steady-state exchange must recycle every payload",
            total - warm
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The reconciliation invariants hold across cluster shapes, not just
    /// the hand-picked one.
    #[test]
    fn profile_reconciles_across_cluster_shapes(
        shape in prop::sample::select(vec![(1usize, 8usize), (2, 4), (4, 2), (8, 1), (4, 4)]),
    ) {
        let (procs, segments) = shape;
        let params = SoiParams {
            n: 1 << 12,
            procs,
            segments_per_proc: segments,
            mu: Rational::new(2, 1),
            conv_width: 20,
        };
        let stats = traced_run(params);
        check_reconciles(params, &stats);
    }
}
