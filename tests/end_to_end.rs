//! Cross-crate integration tests: the full distributed pipelines against
//! single-process references, across cluster shapes, window families,
//! exchange plans and accuracy regimes.

use soifft::cluster::Cluster;
use soifft::ct::DistributedCtFft;
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::{gather_output, scatter_input, ExchangePlan};
use soifft::soi::{ConvStrategy, Rational, SoiFft, SoiFftLocal, SoiParams, WindowKind};

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new(
                (0.0021 * t).sin() + 0.25 * (0.4 * t).cos(),
                (0.0013 * t).cos() - 0.1,
            )
        })
        .collect()
}

fn reference(x: &[c64]) -> Vec<c64> {
    let mut y = x.to_vec();
    Plan::new(x.len()).forward(&mut y);
    y
}

fn run_soi(params: SoiParams, kind: WindowKind, exchange: ExchangePlan) -> f64 {
    let x = signal(params.n);
    let want = reference(&x);
    let inputs = scatter_input(&x, params.procs);
    let fft = SoiFft::with_window(params, kind)
        .expect("valid params")
        .with_exchange(exchange);
    let outs = Cluster::run(params.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
    rel_l2(&gather_output(outs), &want)
}

#[test]
fn soi_distributed_over_many_shapes() {
    for (procs, s) in [(2usize, 8usize), (4, 4), (8, 2), (16, 1)] {
        let params = SoiParams {
            n: 1 << 13,
            procs,
            segments_per_proc: s,
            mu: Rational::new(2, 1),
            conv_width: 20,
        };
        let err = run_soi(params, WindowKind::GaussianSinc, ExchangePlan::Monolithic);
        assert!(err < 1e-6, "P={procs} S={s}: {err:.3e}");
    }
}

#[test]
fn soi_kaiser_window_distributed() {
    let params = SoiParams {
        n: 1 << 13,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    };
    let err = run_soi(params, WindowKind::KaiserSinc, ExchangePlan::Monolithic);
    assert!(err < 1e-6, "{err:.3e}");
}

#[test]
fn soi_all_exchange_plans_agree() {
    let params = SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 4,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    for plan in [
        ExchangePlan::Monolithic,
        ExchangePlan::Chunked(100),
        ExchangePlan::PerSegment,
    ] {
        let err = run_soi(params, WindowKind::GaussianSinc, plan);
        assert!(err < 1e-5, "{plan:?}: {err:.3e}");
    }
}

#[test]
fn accuracy_improves_with_window_width() {
    // The knob a user actually turns: B. Error must drop monotonically
    // (by orders of magnitude) as B grows.
    let mut errors = Vec::new();
    for b in [8usize, 12, 16, 24] {
        let params = SoiParams {
            n: 1 << 12,
            procs: 4,
            segments_per_proc: 2,
            mu: Rational::new(2, 1),
            conv_width: b,
        };
        errors.push(run_soi(
            params,
            WindowKind::GaussianSinc,
            ExchangePlan::Monolithic,
        ));
    }
    for w in errors.windows(2) {
        assert!(w[1] < w[0] * 0.3, "errors not dropping: {errors:?}");
    }
    assert!(errors[3] < 1e-8, "{errors:?}");
}

#[test]
fn accuracy_improves_with_oversampling() {
    // Fixed B, growing µ: more guard band, less leakage.
    let mut errors = Vec::new();
    for (num, den) in [(8usize, 7usize), (5, 4), (3, 2), (2, 1)] {
        let params = SoiParams {
            n: 7 * (1 << 9) * 4, // M divisible by 7, 4, 2
            procs: 4,
            segments_per_proc: 1,
            mu: Rational::new(num, den),
            conv_width: 36,
        };
        params.validate().expect("valid");
        errors.push(run_soi(
            params,
            WindowKind::GaussianSinc,
            ExchangePlan::Monolithic,
        ));
    }
    for w in errors.windows(2) {
        assert!(w[1] < w[0], "errors not dropping with mu: {errors:?}");
    }
}

#[test]
fn ct_baseline_matches_reference() {
    for procs in [2usize, 4, 8] {
        let n = 1 << 12;
        let x = signal(n);
        let want = reference(&x);
        let inputs = scatter_input(&x, procs);
        let fft = DistributedCtFft::new(n, procs).expect("plannable");
        let outs = Cluster::run(procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
        let err = rel_l2(&gather_output(outs), &want);
        assert!(err < 1e-11, "P={procs}: {err:.3e}");
    }
}

#[test]
fn soi_and_ct_communication_volumes() {
    // The headline structural claim, measured: CT ships 3·N elements per
    // all-to-all round-trip set, SOI ships µ·N once (plus a tiny ghost).
    let procs = 4;
    let n = 1 << 12;
    let x = signal(n);
    let inputs = scatter_input(&x, procs);

    let params = SoiParams {
        n,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    let soi = SoiFft::new(params).unwrap();
    let soi_stats = Cluster::run(procs, |comm| {
        soi.forward(comm, &inputs[comm.rank()]);
        comm.stats().clone()
    });

    let ct = DistributedCtFft::new(n, procs).unwrap();
    let ct_stats = Cluster::run(procs, |comm| {
        ct.forward(comm, &inputs[comm.rank()]);
        comm.stats().clone()
    });

    let per_rank_elems = (n / procs) as u64;
    for s in &soi_stats {
        // One exchange of µ·(N/P) elements.
        assert_eq!(s.bytes_in("all-to-all"), 2 * per_rank_elems * 16);
    }
    for s in &ct_stats {
        // Three exchanges of N/P elements each.
        assert_eq!(s.bytes_in("all-to-all"), 3 * per_rank_elems * 16);
    }
}

#[test]
fn local_and_distributed_soi_are_identical() {
    let params = SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    let x = signal(params.n);
    let inputs = scatter_input(&x, params.procs);
    let dist_fft = SoiFft::new(params).unwrap();
    let dist = gather_output(Cluster::run(params.procs, |comm| {
        dist_fft.forward(comm, &inputs[comm.rank()])
    }));
    let local = SoiFftLocal::new(
        params.n,
        params.total_segments(),
        params.mu,
        params.conv_width,
    )
    .unwrap()
    .forward(&x);
    assert!(rel_l2(&dist, &local) < 1e-11);
}

#[test]
fn conv_strategy_choice_does_not_change_distributed_result() {
    let params = SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    let x = signal(params.n);
    let inputs = scatter_input(&x, params.procs);
    let mut results = Vec::new();
    for strategy in ConvStrategy::ALL {
        let fft = SoiFft::new(params).unwrap().with_strategy(strategy);
        results.push(gather_output(Cluster::run(params.procs, |comm| {
            fft.forward(comm, &inputs[comm.rank()])
        })));
    }
    assert!(rel_l2(&results[1], &results[0]) < 1e-13);
    assert!(rel_l2(&results[2], &results[0]) < 1e-13);
}
