//! Numerical regression pins: exact values this reproduction is calibrated
//! to produce. If any of these drift, a figure in EXPERIMENTS.md is stale.

use soifft::model::{weak_scaling, ClusterModel};
use soifft::soi::accuracy::alias_bound;
use soifft::soi::{Rational, SoiParams, Window, WindowKind};

fn close(a: f64, b: f64, rel: f64) -> bool {
    (a - b).abs() <= rel * b.abs().max(1e-300)
}

/// The §4 component times printed in fig3 / EXPERIMENTS.md.
#[test]
fn fig3_component_times_pinned() {
    let n = (1u64 << 32) as f64;
    let xeon = ClusterModel::xeon(32);
    let phi = ClusterModel::xeon_phi(32);
    assert!(close(xeon.t_fft(n), 0.5173, 1e-3), "{}", xeon.t_fft(n));
    assert!(close(phi.t_fft(n), 0.1666, 1e-3), "{}", phi.t_fft(n));
    assert!(close(xeon.t_conv(n), 0.6383, 1e-3), "{}", xeon.t_conv(n));
    assert!(close(phi.t_conv(n), 0.2056, 1e-3), "{}", phi.t_conv(n));
    assert!(close(xeon.t_mpi(n), 0.6667, 1e-3), "{}", xeon.t_mpi(n));
}

/// The fig8 table's corner values.
#[test]
fn fig8_corners_pinned() {
    let pts = weak_scaling(&[4, 64, 512], (1u64 << 27) as f64);
    assert!(close(pts[0].soi_phi, 0.0682, 2e-2), "{}", pts[0].soi_phi);
    assert!(close(pts[1].soi_phi, 1.07, 2e-2), "{}", pts[1].soi_phi);
    assert!(close(pts[2].soi_phi, 6.71, 2e-2), "{}", pts[2].soi_phi);
    assert!(close(pts[2].ct_xeon, 2.86, 2e-2), "{}", pts[2].ct_xeon);
}

/// The accuracy table's window bounds (order-of-magnitude pins: window
/// design constants are part of the public behaviour).
#[test]
fn accuracy_bounds_pinned() {
    let mk = |mu: Rational, b: usize, m: usize| {
        let l = 8;
        SoiParams {
            n: m * l,
            procs: 1,
            segments_per_proc: l,
            mu,
            conv_width: b,
        }
    };
    let cases: [(WindowKind, Rational, usize, usize, f64); 4] = [
        (
            WindowKind::GaussianSinc,
            Rational::new(8, 7),
            72,
            7 * 128,
            1.5e-6,
        ),
        (
            WindowKind::ProlateSinc,
            Rational::new(8, 7),
            72,
            7 * 128,
            3e-11,
        ),
        (
            WindowKind::GaussianSinc,
            Rational::new(5, 4),
            72,
            512,
            1.4e-10,
        ),
        (
            WindowKind::KaiserSinc,
            Rational::new(8, 7),
            72,
            7 * 128,
            2.7e-6,
        ),
    ];
    for (kind, mu, b, m, expect) in cases {
        let p = mk(mu, b, m);
        p.validate().unwrap();
        let w = Window::new(kind, &p);
        let bound = alias_bound(&w, &p, 9, 2);
        assert!(
            bound < expect * 3.0 && bound > expect / 30.0,
            "{kind:?} µ={mu} B={b}: bound {bound:.3e}, pinned {expect:.1e}"
        );
    }
}

/// Machine-constant pins (Table 2 derived values).
#[test]
fn table2_pins() {
    use soifft::model::MachineSpec;
    let xeon = MachineSpec::xeon_e5_2680();
    let phi = MachineSpec::xeon_phi_se10();
    assert!(close(xeon.bytes_per_op(), 0.2283, 1e-3));
    assert!(close(phi.bytes_per_op(), 0.1397, 1e-3));
    assert!(close(phi.peak_gflops / xeon.peak_gflops, 3.104, 1e-3));
}
