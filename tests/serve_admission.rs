//! Property tests on the serving layer's pure control-plane state
//! machines ([`Admission`], [`TokenBucket`], [`CircuitBreaker`]).
//!
//! All three take an explicit clock, so the properties drive them through
//! arbitrary *virtual* arrival schedules — thousands of admission
//! decisions per case with zero sleeping — and pin the two ISSUE
//! invariants: queue depth never exceeds the configured bound, and no
//! tenant's accepted count ever outruns its token-bucket envelope
//! `burst + rate · elapsed`.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use soifft::serve::{
    Admission, BreakerConfig, BreakerState, BreakerVerdict, CircuitBreaker, RateLimit, Rejected,
    TokenBucket,
};

/// One submit in a virtual arrival schedule: which tenant, after how much
/// virtual time, and whether the engine dequeues (releases) a job first.
#[derive(Clone, Debug)]
struct Arrival {
    tenant: usize,
    advance_us: u64,
    dequeue_first: bool,
}

fn arrivals(tenants: usize, len: usize) -> impl Strategy<Value = Vec<Arrival>> {
    prop::collection::vec(
        (0..tenants, 0u64..5_000, any::<bool>()).prop_map(|(tenant, advance_us, dequeue_first)| {
            Arrival {
                tenant,
                advance_us,
                dequeue_first,
            }
        }),
        1..len + 1,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Queue depth never exceeds the bound, for any tenant, under any
    /// interleaving of submits and dequeues — and the ledger's depth
    /// exactly tracks accepted − released.
    #[test]
    fn admission_never_exceeds_the_queue_bound(
        schedule in arrivals(3, 200),
        capacity in 1usize..8,
    ) {
        let t0 = Instant::now();
        let mut now = t0;
        let mut adm = Admission::new(3, capacity, None, now);
        let mut shadow = [0usize; 3];
        for a in schedule {
            now += Duration::from_micros(a.advance_us);
            if a.dequeue_first && shadow[a.tenant] > 0 {
                adm.release(a.tenant);
                shadow[a.tenant] -= 1;
            }
            match adm.try_admit(a.tenant, now) {
                Ok(()) => shadow[a.tenant] += 1,
                Err(Rejected::QueueFull { tenant, capacity: c }) => {
                    prop_assert_eq!(tenant, a.tenant);
                    prop_assert_eq!(c, capacity);
                    prop_assert_eq!(shadow[a.tenant], capacity);
                }
                Err(other) => prop_assert!(false, "unexpected rejection {other:?}"),
            }
            for (t, &depth) in shadow.iter().enumerate() {
                prop_assert!(adm.queue_depth(t) <= capacity);
                prop_assert_eq!(adm.queue_depth(t), depth);
            }
        }
    }

    /// Accepted submissions per tenant never outrun the token-bucket
    /// envelope `burst + rate · elapsed`, under any arrival schedule, and
    /// every RateLimited rejection carries an honest retry hint (waiting
    /// that long makes the next submit succeed).
    #[test]
    fn rate_limits_hold_under_any_arrival_schedule(
        schedule in arrivals(2, 200),
        rate in 1.0f64..2_000.0,
        burst in 1.0f64..16.0,
    ) {
        let t0 = Instant::now();
        let mut now = t0;
        // Huge queue bound: isolate the rate-limit invariant.
        let limit = RateLimit { rate_per_s: rate, burst };
        let mut adm = Admission::new(2, 10_000, Some(limit), now);
        let mut accepted = [0u64; 2];
        for a in schedule {
            now += Duration::from_micros(a.advance_us);
            match adm.try_admit(a.tenant, now) {
                Ok(()) => accepted[a.tenant] += 1,
                Err(Rejected::RateLimited { retry_after, .. }) => {
                    // The hint is honest: one token accumulates by then
                    // (tolerate one f64 ulp-ish slop via a nanosecond).
                    let later = now + retry_after + Duration::from_nanos(1);
                    prop_assert!(adm.try_admit(a.tenant, later).is_ok());
                    accepted[a.tenant] += 1;
                    now = later;
                }
                Err(other) => prop_assert!(false, "unexpected rejection {other:?}"),
            }
            let elapsed = (now - t0).as_secs_f64();
            for (t, &count) in accepted.iter().enumerate() {
                let envelope = burst + rate * elapsed;
                // Strict bound plus float-accumulation headroom of one job.
                prop_assert!(
                    (count as f64) <= envelope + 1.0,
                    "tenant {} accepted {} > envelope {:.3}",
                    t, count, envelope
                );
            }
        }
    }

    /// A lone bucket obeys its own envelope exactly when drained greedily:
    /// after `d` virtual microseconds it has granted precisely
    /// `min(burst + rate·d, …)` whole tokens.
    #[test]
    fn greedy_bucket_grants_floor_of_the_envelope(
        rate in 1.0f64..500.0,
        burst in 1.0f64..8.0,
        advance_ms in 1u64..10_000,
    ) {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(RateLimit { rate_per_s: rate, burst }, t0);
        // Drain the initial burst.
        let mut granted = 0u64;
        while bucket.try_take(t0).is_ok() {
            granted += 1;
        }
        prop_assert_eq!(granted, burst as u64);
        // Advance once, drain again: exactly the refill, never more.
        let later = t0 + Duration::from_millis(advance_ms);
        let mut refilled = 0u64;
        while bucket.try_take(later).is_ok() {
            refilled += 1;
        }
        let expect = (rate * advance_ms as f64 / 1e3).min(burst);
        prop_assert!(refilled as f64 <= expect + 1.0);
        prop_assert!(refilled as f64 >= expect.floor() - 1.0);
    }

    /// The breaker's verdict is always consistent with its state, and the
    /// state machine never wedges: from any event sequence it can always
    /// be driven back to Closed.
    #[test]
    fn breaker_never_wedges(events in prop::collection::vec(0u8..3, 1..60)) {
        let t0 = Instant::now();
        let cfg = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_millis(10),
            half_open_probes: 1,
            ..BreakerConfig::default()
        };
        let mut b = CircuitBreaker::new(cfg);
        let mut now = t0;
        for e in events {
            now += Duration::from_millis(3);
            match e {
                0 => b.on_success(now),
                1 => b.on_failure(now),
                _ => {
                    let state = b.state(now);
                    match b.admit(now) {
                        BreakerVerdict::Admit => prop_assert!(state != BreakerState::Open),
                        BreakerVerdict::AdmitDegraded => prop_assert!(false, "RejectNew never degrades"),
                        BreakerVerdict::Reject(hint) => {
                            prop_assert_eq!(state, BreakerState::Open);
                            prop_assert!(hint <= cfg.cooldown);
                        }
                    }
                }
            }
        }
        // Recovery is always reachable: cooldown, then a clean probe.
        now += cfg.cooldown + Duration::from_millis(1);
        prop_assert_eq!(b.admit(now), BreakerVerdict::Admit);
        b.on_success(now);
        prop_assert_eq!(b.state(now), BreakerState::Closed);
    }
}
