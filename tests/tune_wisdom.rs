//! Acceptance tests for the self-tuning planner (ISSUE 10).
//!
//! * wisdom files round-trip losslessly and every corruption mode —
//!   truncation, bit flips, stale schema, foreign fingerprint — degrades
//!   the tuner to Estimate mode, never panics, never adopts a bogus
//!   plan (proptests);
//! * a wisdom-warm tuner satisfies a `Measure` request with **zero**
//!   probe executions;
//! * per-phase prediction error shrinks after one refit reconciled from
//!   real trace ledgers;
//! * the in-process registry feeds `SoiFft` construction and the serve
//!   engine (`wisdom_backed`);
//! * plan-cache hit/miss/eviction gauges surface through `CommStats`
//!   and `RunProfile`.

use proptest::prelude::*;

use soifft::cluster::{Cluster, RunProfile};
use soifft::num::c64;
use soifft::soi::wisdom as registry;
use soifft::soi::{
    ConvStrategy, ExchangePlan, Precision, Rational, SoiFft, SoiParams, TunedExec, WisdomKey,
};
use soifft::tune::{
    machine_fingerprint, probe_executions, MeasuredProber, PlanSource, Tier, TuneRequest, Tuner,
    WisdomEntry, WisdomError, WisdomFile,
};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("soifft-tune-test-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_entry(n: usize, procs: usize) -> WisdomEntry {
    WisdomEntry {
        params: SoiParams {
            n,
            procs,
            segments_per_proc: 2,
            mu: Rational::new(8, 7),
            conv_width: 36,
        },
        exec: TunedExec {
            strategy: ConvStrategy::InterchangedBuffered,
            exchange: ExchangePlan::PerSegment,
            fused: false,
        },
        precision: Precision::F64,
        measured_s: 4.2e-3,
    }
}

fn sample_file(fingerprint: &str) -> WisdomFile {
    WisdomFile {
        fingerprint: fingerprint.to_string(),
        rates: *Tuner::in_memory().rates(),
        entries: vec![sample_entry(7 << 11, 2), sample_entry(7 << 13, 4)],
    }
}

/// The exact file the committed golden fixture was generated from.
/// Fixed fingerprint and round-representable rates, so the fixture is
/// byte-stable across machines.
fn golden_file() -> WisdomFile {
    WisdomFile {
        fingerprint: "golden|4|x86_64|linux".to_string(),
        rates: soifft::tune::RateModel {
            fft_flops_per_s: 2.5e9,
            conv_flops_per_s: 5.0e9,
            net_bytes_per_s: 1.25e9,
            net_latency_s: 2.0e-6,
        },
        entries: vec![
            sample_entry(7 << 11, 2),
            WisdomEntry {
                params: SoiParams {
                    n: 1 << 20,
                    procs: 8,
                    segments_per_proc: 16,
                    mu: Rational::new(5, 4),
                    conv_width: 48,
                },
                exec: TunedExec {
                    strategy: ConvStrategy::RowMajor,
                    exchange: ExchangePlan::Overlapped,
                    fused: true,
                },
                precision: Precision::Split,
                measured_s: 1.5e-2,
            },
        ],
    }
}

/// Schema gate (run per-PR by ci.yml): the committed v1 fixture must
/// keep parsing byte-for-byte. If the line format changes, this fails
/// before any user's persisted wisdom does — bump
/// `WISDOM_SCHEMA_VERSION`, regenerate with `SOIFFT_WRITE_GOLDEN=1`,
/// and commit a new fixture alongside the old one's loader behaviour.
#[test]
fn golden_v1_wisdom_fixture_still_parses() {
    let fixture =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/golden_v1.wisdom");
    let expected = golden_file();
    if std::env::var("SOIFFT_WRITE_GOLDEN").is_ok() {
        std::fs::write(&fixture, expected.to_text()).unwrap();
    }
    let loaded = WisdomFile::load(&fixture).unwrap_or_else(|e| {
        panic!(
            "golden v1 wisdom fixture no longer loads ({e}) — a schema \
             change must bump WISDOM_SCHEMA_VERSION and add a new fixture"
        )
    });
    assert_eq!(loaded, expected);
    assert_eq!(soifft::tune::WISDOM_SCHEMA_VERSION, 1);
}

#[test]
fn wisdom_file_round_trips_through_disk_and_tuner() {
    let dir = scratch_dir("roundtrip");
    let path = dir.join("w.wisdom");
    let file = sample_file(&machine_fingerprint());
    file.save(&path).unwrap();

    let loaded = WisdomFile::load(&path).unwrap();
    assert_eq!(loaded, file);

    let tuner = Tuner::with_wisdom_file(&path);
    assert!(tuner.degraded().is_none(), "{:?}", tuner.degraded());
    assert_eq!(tuner.entries(), file.entries.as_slice());
    // Loading installed the entries in the in-process registry.
    for e in &file.entries {
        assert!(registry::contains(&e.key()));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_schema_degrades_to_estimate() {
    let dir = scratch_dir("schema");
    let path = dir.join("w.wisdom");
    let text = sample_file(&machine_fingerprint())
        .to_text()
        .replace("soifft-wisdom 1", "soifft-wisdom 2");
    std::fs::write(&path, text).unwrap();

    let mut tuner = Tuner::with_wisdom_file(&path);
    assert_eq!(
        tuner.degraded(),
        Some(&WisdomError::UnsupportedSchema { found: 2 })
    );
    assert!(tuner.entries().is_empty());
    // Degraded, not dead: Estimate-tier planning still works...
    let out = tuner
        .plan(
            &TuneRequest::new(7 << 11, 2),
            Tier::Estimate,
            &mut MeasuredProber::new(),
        )
        .unwrap();
    assert_eq!(out.source, PlanSource::Estimated);
    assert_eq!(out.probes_run, 0);
    // ...while WisdomOnly fails closed.
    let err = tuner
        .plan(
            &TuneRequest::new(7 << 11, 2),
            Tier::WisdomOnly,
            &mut MeasuredProber::new(),
        )
        .unwrap_err();
    assert!(matches!(err, soifft::tune::TuneError::NoWisdom { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn foreign_fingerprint_is_never_adopted() {
    let dir = scratch_dir("foreign");
    let path = dir.join("w.wisdom");
    sample_file("someone|elses|big|machine")
        .save(&path)
        .unwrap();

    let tuner = Tuner::with_wisdom_file(&path);
    assert!(matches!(
        tuner.degraded(),
        Some(WisdomError::ForeignFingerprint { .. })
    ));
    assert!(tuner.entries().is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any truncation of a valid wisdom file parses to a typed error —
    /// never a panic, never a partially adopted plan set.
    #[test]
    fn truncated_wisdom_degrades(cut in 0usize..1000) {
        let text = sample_file(&machine_fingerprint()).to_text();
        prop_assume!(cut < text.len());
        // Cut at a char boundary (the format is ASCII, so every byte is).
        let truncated = &text[..cut];
        let parsed = WisdomFile::parse(truncated);
        prop_assert!(parsed.is_err(), "truncation at {cut} parsed: {parsed:?}");
    }

    /// Any single bit flip anywhere in the file degrades the tuner:
    /// either the parse fails (checksum, magic, schema, structure) or
    /// the fingerprint no longer matches this machine. In every case
    /// `Tuner::with_wisdom_file` holds zero entries and records the
    /// error.
    #[test]
    fn bit_flipped_wisdom_degrades(byte_idx in 0usize..1000, bit in 0u8..8) {
        let text = sample_file(&machine_fingerprint()).to_text();
        let mut bytes = text.into_bytes();
        prop_assume!(byte_idx < bytes.len());
        bytes[byte_idx] ^= 1 << bit;

        let dir = scratch_dir(&format!("flip-{byte_idx}-{bit}"));
        let path = dir.join("w.wisdom");
        std::fs::write(&path, &bytes).unwrap();
        let tuner = Tuner::with_wisdom_file(&path);
        prop_assert!(
            tuner.degraded().is_some(),
            "bit {bit} of byte {byte_idx} flipped yet the file loaded"
        );
        prop_assert!(tuner.entries().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Estimate-tier planning is a pure function of the request and rates:
/// two independent tuners rank identically and pick the same plan.
#[test]
fn estimate_tier_is_deterministic() {
    let req = TuneRequest::new(7 << 12, 4);
    let mut prober = MeasuredProber::new();
    let a = Tuner::in_memory()
        .plan(&req, Tier::Estimate, &mut prober)
        .unwrap();
    let b = Tuner::in_memory()
        .plan(&req, Tier::Estimate, &mut prober)
        .unwrap();
    assert_eq!(a.chosen, b.chosen);
    assert_eq!(a.predicted_s, b.predicted_s);
}

/// The real-prober acceptance path, kept in ONE test so the process-wide
/// probe counter is not raced by sibling tests:
///
/// 1. a `Measure` plan probes, refits from the trace ledgers, and the
///    per-phase prediction error strictly shrinks;
/// 2. the winner is persisted to a wisdom file;
/// 3. a fresh tuner loading that file satisfies the same request with
///    **zero** probe executions (the warm-wisdom acceptance gate).
#[test]
fn measured_tuning_refits_persists_and_warm_wisdom_skips_probes() {
    let dir = scratch_dir("measure");
    let path = dir.join("w.wisdom");
    let mut req = TuneRequest::new(1 << 12, 2);
    req.top_k = 2;
    req.reps = 1;

    let mut tuner = Tuner::with_wisdom_file(&path);
    assert!(tuner.degraded().is_none());
    let mut prober = MeasuredProber::new();
    let out = tuner.plan(&req, Tier::Measure, &mut prober).unwrap();
    assert_eq!(out.source, PlanSource::Measured);
    assert!(out.probes_run >= 2, "default + at least one candidate");
    let before = out.prior_error.expect("measure reports prior error");
    let after = out.post_error.expect("measure reports post error");
    assert!(
        after < before,
        "refit from trace ledgers did not shrink per-phase prediction \
         error: {before} -> {after}"
    );
    assert!(
        out.measured_s.unwrap() <= out.default_measured_s.unwrap(),
        "tuned pick lost to the default it probed"
    );

    // 2: the winner reached disk.
    let on_disk = WisdomFile::load(&path).unwrap();
    assert_eq!(on_disk.entries.len(), 1);
    assert_eq!(on_disk.fingerprint, machine_fingerprint());

    // 3: a cold process (modeled by a fresh tuner) plans the same shape
    // from wisdom without running a single probe.
    let probes_before = probe_executions();
    let mut warm = Tuner::with_wisdom_file(&path);
    assert!(warm.degraded().is_none());
    let warm_out = warm
        .plan(&req, Tier::Measure, &mut MeasuredProber::new())
        .unwrap();
    assert_eq!(warm_out.source, PlanSource::Wisdom);
    assert_eq!(warm_out.probes_run, 0);
    assert_eq!(
        probe_executions(),
        probes_before,
        "warm wisdom still executed a probe"
    );
    assert_eq!(warm_out.chosen, out.chosen);
    // WisdomOnly — the serve path's startup tier — also succeeds warm.
    let wo = warm
        .plan(&req, Tier::WisdomOnly, &mut MeasuredProber::new())
        .unwrap();
    assert_eq!(wo.source, PlanSource::Wisdom);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Installed wisdom feeds `SoiFft` construction: the same `SoiParams`
/// build picks up the tuned knobs, and the serve engine reports itself
/// wisdom-backed.
#[test]
fn registry_feeds_sofft_construction_and_serve_engine() {
    // Distinctive shape: no other test installs n = 7 * 2^10, P = 2.
    let params = SoiParams {
        n: 7 << 10,
        procs: 2,
        segments_per_proc: 2,
        mu: Rational::new(8, 7),
        conv_width: 24,
    };
    params.validate().unwrap();
    let key = WisdomKey {
        n: params.n,
        procs: params.procs,
        precision: Precision::F64,
    };

    // Untuned: the construction defaults.
    let cold = SoiFft::new(params).unwrap();
    assert_eq!(cold.strategy(), ConvStrategy::InterchangedBuffered);
    assert_eq!(cold.exchange(), ExchangePlan::Monolithic);

    let exec = TunedExec {
        strategy: ConvStrategy::Interchanged,
        exchange: ExchangePlan::Chunked(1024),
        fused: false,
    };
    registry::install(key, exec);
    let warm = SoiFft::new(params).unwrap();
    assert_eq!(warm.strategy(), ConvStrategy::Interchanged);
    assert_eq!(warm.exchange(), ExchangePlan::Chunked(1024));
    assert!(!warm.fused_segment_fft());

    // The tuned plan still transforms correctly end to end.
    let input: Vec<c64> = (0..params.n)
        .map(|i| c64::new((0.03 * i as f64).sin(), (0.07 * i as f64).cos()))
        .collect();
    let inputs = soifft::soi::pipeline::scatter_input(&input, params.procs);
    let fft = warm;
    let outs = Cluster::run(params.procs, |comm| fft.forward(comm, &inputs[comm.rank()]));
    assert!(outs.iter().all(|o| !o.is_empty()));

    // Serve engine: wisdom-backed start is observable on the engine and
    // in its shutdown report.
    let engine =
        soifft::serve::ServeEngine::start(params, soifft::serve::ServeConfig::default()).unwrap();
    assert!(engine.wisdom_backed());
    let report = engine.shutdown();
    assert!(report.wisdom_backed);
}

/// Plan-cache gauges cross the crate boundary: after a distributed
/// forward, every rank's `CommStats` carries the process-global plan
/// cache counters and `RunProfile` aggregates them (max, not sum —
/// they are gauges of one shared cache).
#[test]
fn plan_cache_gauges_surface_in_stats_and_profile() {
    let params = SoiParams {
        n: 7 << 9,
        procs: 2,
        segments_per_proc: 1,
        mu: Rational::new(8, 7),
        conv_width: 16,
    };
    params.validate().unwrap();
    let input: Vec<c64> = (0..params.n)
        .map(|i| c64::new(i as f64 * 1e-3, 0.0))
        .collect();
    let inputs = soifft::soi::pipeline::scatter_input(&input, params.procs);
    let fft = SoiFft::new(params).unwrap();
    let stats = Cluster::run(params.procs, |comm| {
        let mut ws = fft.make_workspace();
        let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
        fft.forward_into(comm, &inputs[comm.rank()], &mut ws, &mut y);
        comm.stats().clone()
    });
    // The forward planned FFTs, so the global cache saw traffic; the
    // superstep's epilogue published the gauges into every ledger.
    for s in &stats {
        assert!(
            s.plan_cache_hits() + s.plan_cache_misses() > 0,
            "no plan-cache traffic recorded in a rank ledger"
        );
    }
    let profile = RunProfile::from_stats(&stats);
    let max_hits = stats.iter().map(|s| s.plan_cache_hits()).max().unwrap();
    let max_misses = stats.iter().map(|s| s.plan_cache_misses()).max().unwrap();
    assert_eq!(profile.plan_cache_hits, max_hits);
    assert_eq!(profile.plan_cache_misses, max_misses);
}
