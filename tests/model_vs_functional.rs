//! Cross-checks between the analytic model and the functional simulation:
//! the byte volumes the model charges `T_mpi` for must be exactly what the
//! simulated cluster actually moves.

use soifft::cluster::Cluster;
use soifft::ct::DistributedCtFft;
use soifft::model::{ClusterModel, SoiConstants};
use soifft::num::c64;
use soifft::soi::pipeline::scatter_input;
use soifft::soi::{Rational, SoiFft, SoiParams};

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| c64::new((0.3 * i as f64).sin(), 0.1))
        .collect()
}

/// The model's CT communication term is `3·16·N` bytes total; the
/// simulation must move exactly that (summed over ranks).
#[test]
fn ct_total_alltoall_bytes_match_model() {
    let procs = 4;
    let n = 1 << 12;
    let x = signal(n);
    let inputs = scatter_input(&x, procs);
    let fft = DistributedCtFft::new(n, procs).unwrap();
    let stats = Cluster::run(procs, |comm| {
        fft.forward(comm, &inputs[comm.rank()]);
        comm.stats().bytes_in("all-to-all")
    });
    let total: u64 = stats.iter().sum();
    assert_eq!(total, 3 * 16 * n as u64);
}

/// The model's SOI communication term is `µ·16·N` bytes (one exchange of
/// the oversampled data), plus a ghost volume the model neglects because
/// it is latency-bound tens of KB. Verify both.
#[test]
fn soi_total_alltoall_bytes_match_model() {
    let procs = 4;
    let params = SoiParams {
        n: 1 << 12,
        procs,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 16,
    };
    let x = signal(params.n);
    let inputs = scatter_input(&x, procs);
    let fft = SoiFft::new(params).unwrap();
    let stats = Cluster::run(procs, |comm| {
        fft.forward(comm, &inputs[comm.rank()]);
        (
            comm.stats().bytes_in("all-to-all"),
            comm.stats().bytes_in("ghost"),
        )
    });
    let a2a: u64 = stats.iter().map(|s| s.0).sum();
    let ghost: u64 = stats.iter().map(|s| s.1).sum();
    // µ·16·N with µ = 2.
    assert_eq!(a2a, 2 * 16 * params.n as u64);
    // Ghost: P ranks · (B−d_µ)·L elements · 16 B — small next to the a2a.
    assert_eq!(ghost, (procs * params.ghost_len() * 16) as u64);
    assert!(ghost < a2a / 10);
}

/// The model must prefer SOI over CT exactly when the communication
/// saving (2 exchanges) outweighs the convolution cost — which at the
/// paper's constants is everywhere; flipping to an absurdly fast network
/// flips the verdict.
#[test]
fn model_crossover_behaviour() {
    let n = (1u64 << 32) as f64;
    let mut phi = ClusterModel::xeon_phi(32);
    assert!(phi.soi_time(n).total() < phi.ct_time(n).total());

    // A network ~100× faster than the compute makes CT win (the extra
    // 8BµN convolution flops are no longer paid back).
    phi.network.per_node_gib_s = 3000.0;
    assert!(phi.soi_time(n).total() > phi.ct_time(n).total());
}

/// Headline sanity at the calibration point, via the public API the
/// examples use.
#[test]
fn model_headline_via_public_api() {
    let per_node = (1u64 << 27) as f64;
    let pts = soifft::model::weak_scaling(&[64, 512], per_node);
    assert!(pts[0].soi_phi > 1.0);
    assert!((pts[1].soi_phi - 6.7).abs() < 0.2);
    let _ = SoiConstants::default();
}
