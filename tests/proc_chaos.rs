//! Multi-process chaos: the SOI pipeline across real OS processes with
//! `kill -9` injected mid-run.
//!
//! The harness re-executes this very test binary as the rank processes
//! (the `proc_child` hook below no-ops unless the `SOIFFT_PROC_*`
//! environment marks it as a spawned rank). The invariant under test is
//! the PR 7 contract: a SIGKILLed rank is detected (exit status or
//! heartbeat staleness), the supervisor respawns the rank set into a new
//! generation, the children resume from the shared **disk** checkpoint
//! store, and the recovered spectrum is **bit-identical** to a
//! fault-free multi-process run — and numerically correct against the
//! single-process reference FFT.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

use soifft::cluster::transport::proc::{
    KillPlan, KillWhen, ProcConfig, ProcEndpoint, ProcOutcome, ProcSupervisor, ProcTransport,
};
use soifft::cluster::{FailureDetection, RestartPolicy};
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::gather_output;
use soifft::soi::procrun::{child_main, read_rank_output, seeded_input};
use soifft::soi::{Rational, SoiParams};

const PROCS: usize = 4;
const SEED: u64 = 0x050C_1FF7;

fn params() -> SoiParams {
    SoiParams {
        // Large enough that the post-checkpoint tail (all-to-all +
        // back-end FFTs) comfortably outlasts the supervisor's 5 ms kill
        // poll, so the scripted SIGKILL reliably lands mid-phase.
        n: 1 << 18,
        procs: PROCS,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    }
}

/// The child body: a no-op under the normal test run, the rank process
/// when spawned by the supervisor with the proc environment set.
#[test]
fn proc_child() {
    let Some(ep) = ProcEndpoint::from_env() else {
        return;
    };
    // Wedge chaos ("rank:generation"): connect, go silent, and hang —
    // the failure detector, not an exit status, must notice us.
    if let Ok(spec) = std::env::var("SOIFFT_TEST_WEDGE") {
        if let Some((r, g)) = spec.split_once(':') {
            if r.parse() == Ok(ep.rank) && g.parse() == Ok(ep.generation) {
                let transport = ProcTransport::connect(&ep).expect("wedge child connects");
                transport.wedge_heartbeats();
                std::thread::sleep(Duration::from_secs(30));
                std::process::exit(7); // never reached: the supervisor reaps us
            }
        }
    }
    let out_dir = PathBuf::from(std::env::var("SOIFFT_TEST_OUT").expect("parent sets out dir"));
    let code = child_main(&params(), SEED, &out_dir).expect("proc env present");
    std::process::exit(code);
}

/// Command that re-executes this test binary as a rank process.
fn child_cmd(out_dir: &Path, wedge: Option<&str>) -> Command {
    let mut cmd = Command::new(std::env::current_exe().expect("own path"));
    cmd.args([
        "proc_child",
        "--exact",
        "--test-threads",
        "1",
        "--nocapture",
    ])
    .env("SOIFFT_TEST_OUT", out_dir)
    .stdout(Stdio::null());
    if let Some(spec) = wedge {
        cmd.env("SOIFFT_TEST_WEDGE", spec);
    }
    cmd
}

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("soifft-proc-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create workdir");
        TempDir(dir)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn quick_config() -> ProcConfig {
    ProcConfig {
        detection: FailureDetection {
            heartbeat_interval: Duration::from_millis(25),
            // Exit-status polling is the primary detector for kills; keep
            // staleness generous so a busy CI box never false-positives.
            staleness_timeout: Duration::from_secs(3),
            ..FailureDetection::default()
        },
        epoch_deadline: Duration::from_secs(120),
        restart: RestartPolicy::default(),
        ..ProcConfig::default()
    }
}

fn bits(v: &[c64]) -> Vec<u64> {
    v.iter()
        .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
        .collect()
}

fn collect_outputs(out_dir: &Path) -> Vec<Vec<c64>> {
    (0..PROCS)
        .map(|r| read_rank_output(out_dir, r).expect("rank output present"))
        .collect()
}

#[test]
fn kill9_mid_run_recovers_bit_identical() {
    // Fault-free multi-process run: the baseline bits.
    let clean = TempDir::new("clean");
    let clean_out = clean.0.join("out");
    let sup = ProcSupervisor::with_config(&clean.0, quick_config());
    let run = sup
        .run(PROCS, |_, _| child_cmd(&clean_out, None))
        .expect("fault-free run launches");
    println!("proc-chaos fault-free: {run:?}");
    assert!(run.all_ok(), "fault-free outcomes: {:?}", run.outcomes);
    assert_eq!(run.epochs, 1);
    assert_eq!(run.deaths, 0);
    let clean_parts = collect_outputs(&clean_out);

    // Chaos run: SIGKILL rank 2 the moment its segment-fft snapshot
    // lands on disk — i.e. as it enters the all-to-all.
    let chaos = TempDir::new("kill9");
    let chaos_out = chaos.0.join("out");
    let mut config = quick_config();
    let sup = ProcSupervisor::with_config(&chaos.0, {
        config.kill = Some(KillPlan {
            rank: 2,
            generation: 0,
            when: KillWhen::FileExists(chaos.0.join("ckpt").join("r2-segment-fft.ckpt")),
        });
        config
    });
    let run = sup
        .run(PROCS, |_, _| child_cmd(&chaos_out, None))
        .expect("chaos run launches");
    println!("proc-chaos kill -9: {run:?}");
    assert_eq!(run.injected_kills, 1, "the scripted kill must fire");
    assert!(run.deaths >= 1, "the kill must register as a rank death");
    assert!(run.epochs >= 2, "recovery must take a respawned generation");
    assert!(
        run.all_ok(),
        "respawned generation must complete: {:?}",
        run.outcomes
    );

    // Recovery contract: bit-identical to the fault-free run, and a
    // numerically correct spectrum.
    let chaos_parts = collect_outputs(&chaos_out);
    for r in 0..PROCS {
        assert_eq!(
            bits(&chaos_parts[r]),
            bits(&clean_parts[r]),
            "rank {r}: recovered spectrum must be bit-identical"
        );
    }
    let p = params();
    let mut want = seeded_input(p.n, SEED);
    Plan::new(p.n).forward(&mut want);
    let got = gather_output(chaos_parts);
    let err = rel_l2(&got, &want);
    assert!(
        err < 1e-9,
        "recovered spectrum must verify: rel err {err:.3e}"
    );
}

#[test]
fn wedged_rank_is_detected_by_heartbeat_staleness() {
    let work = TempDir::new("wedge");
    let out = work.0.join("out");
    let config = ProcConfig {
        detection: FailureDetection {
            heartbeat_interval: Duration::from_millis(25),
            // Tight staleness so the wedged (silent but alive) rank is
            // declared down quickly; live ranks beat every 25 ms.
            staleness_timeout: Duration::from_millis(600),
            ..FailureDetection::default()
        },
        epoch_deadline: Duration::from_secs(120),
        restart: RestartPolicy::default(),
        ..ProcConfig::default()
    };
    let sup = ProcSupervisor::with_config(&work.0, config);
    // Rank 1 wedges in generation 0 only: it connects, stops
    // heartbeating, and hangs — no exit status to observe.
    let run = sup
        .run(PROCS, |_, _| child_cmd(&out, Some("1:0")))
        .expect("wedge run launches");
    println!("proc-chaos wedge: {run:?}");
    assert!(
        run.heartbeat_deaths >= 1,
        "the wedged rank must be detected by staleness, not exit"
    );
    assert!(run.epochs >= 2, "detection must drive a respawn");
    assert!(
        run.all_ok(),
        "respawned generation must complete: {:?}",
        run.outcomes
    );
    assert!(
        run.outcomes.iter().all(|o| *o == ProcOutcome::Ok),
        "final epoch outcomes: {:?}",
        run.outcomes
    );

    let parts = collect_outputs(&out);
    let p = params();
    let mut want = seeded_input(p.n, SEED);
    Plan::new(p.n).forward(&mut want);
    let err = rel_l2(&gather_output(parts), &want);
    assert!(
        err < 1e-9,
        "post-recovery spectrum must verify: rel err {err:.3e}"
    );
}
