//! Steady-state allocation accounting for the workspace pipelines.
//!
//! A counting global allocator brackets a window of warm
//! [`SoiFft::forward_into`] calls and proves the default configuration's
//! hot path never touches the heap: every per-call buffer lives in the
//! planned [`soifft::soi::SoiWorkspace`] and every exchange payload cycles
//! through the communicator's buffer pool. The resilient path
//! ([`SoiFft::try_forward_into`]) is held to a *bounded* budget instead —
//! its consensus and retransmit staging legitimately allocate, but never
//! the pipeline's working set. A final sweep pins `forward_into` (and
//! `forward_many`) bit-identical to `forward` across every convolution
//! strategy × exchange plan, so the allocation-free path can never drift
//! numerically from the allocating one.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use soifft::cluster::{tags, Cluster, ExchangePolicy};
use soifft::num::c64;
use soifft::soi::pipeline::{gather_output, scatter_input, ExchangePlan};
use soifft::soi::{ConvStrategy, Rational, SoiFft, SoiParams};

/// Process-wide allocation ledger: heap calls (`alloc` + `realloc`) and
/// bytes requested. Shared by every thread, so a window bracketed by
/// cluster-wide barriers observes the allocations of *all* ranks — which
/// makes the zero assertion strictly stronger, not racy.
static HEAP_CALLS: AtomicU64 = AtomicU64::new(0);
static HEAP_BYTES: AtomicU64 = AtomicU64::new(0);

/// [`System`] with a call/byte counter in front. Deallocation is
/// deliberately uncounted: recycling a buffer is fine, *acquiring* one in
/// the steady state is the regression this harness exists to catch.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        HEAP_CALLS.fetch_add(1, Ordering::Relaxed);
        HEAP_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        HEAP_CALLS.fetch_add(1, Ordering::Relaxed);
        HEAP_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn params() -> SoiParams {
    SoiParams {
        n: 1 << 12,
        procs: 4,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 20,
    }
}

fn signal(n: usize) -> Vec<c64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            c64::new((0.002 * t).sin() + 0.1, 0.3 * (0.017 * t).cos())
        })
        .collect()
}

/// Transforms measured inside the counting window.
const MEASURED: usize = 4;
/// Phase records a single superstep can close (generous; reserved before
/// the window so the ledger never regrows inside it).
const RECORDS_PER_CALL: usize = 64;

/// The tentpole claim: after warmup, the default configuration's
/// `forward_into` makes **zero** heap allocations — across *all* ranks,
/// since the ledger is process-global and the window is fenced by
/// cluster-wide barriers.
#[test]
fn forward_into_steady_state_allocates_nothing() {
    let params = params();
    let x = signal(params.n);
    let inputs = scatter_input(&x, params.procs);
    let fft = SoiFft::new(params).expect("valid params");

    let deltas = Cluster::run(params.procs, |comm| {
        let me = &inputs[comm.rank()];
        let mut ws = fft.make_workspace();
        let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
        // Warm the workspace, the communicator's buffer pool, and the
        // pending-message map (two calls: the first grows everything, the
        // second settles the pool's acquire/recycle cycle).
        for _ in 0..3 {
            fft.forward_into(comm, me, &mut ws, &mut y);
        }
        // Push every inbox ring buffer to a depth no measured superstep
        // can reach (ranks drift at most one call apart, a dozen or so
        // queued messages): all ranks blast a burst at every destination,
        // fence, then drain — the inbox capacity high-water mark outlives
        // the flood, so scheduling jitter inside the window can never
        // force a queue regrow.
        const FLOOD: usize = 16;
        for _ in 0..FLOOD {
            for dst in 0..comm.size() {
                let mut burst = comm.acquire_buffer(16);
                burst.resize(16, c64::ZERO);
                comm.send(dst, tags::USER, burst);
            }
        }
        comm.barrier();
        for _ in 0..FLOOD {
            for src in 0..comm.size() {
                let drained = comm.recv(src, tags::USER);
                comm.recycle_buffer(drained);
            }
        }
        comm.stats_mut()
            .reserve_records(MEASURED * RECORDS_PER_CALL);
        comm.barrier();
        let calls_before = HEAP_CALLS.load(Ordering::SeqCst);
        for _ in 0..MEASURED {
            fft.forward_into(comm, me, &mut ws, &mut y);
        }
        let delta = HEAP_CALLS.load(Ordering::SeqCst) - calls_before;
        // Hold every rank until all have snapshotted: the launcher's
        // result-channel send (below) allocates and must not land inside
        // a slower rank's still-open window.
        comm.barrier();
        delta
    });

    for (rank, delta) in deltas.iter().enumerate() {
        assert_eq!(
            *delta, 0,
            "rank {rank} observed {delta} heap allocations across {MEASURED} \
             warm forward_into calls; the steady-state hot path must not \
             touch the allocator"
        );
    }
}

/// The half-width data path earns its bandwidth win without paying it
/// back in allocator traffic: a warm `forward_into` under
/// [`Precision::F32`] (c32 wire + f32 recovery FFT, extra `z32` /
/// `fft32_scratch` workspace fields) and [`Precision::Split`] is held to
/// the same **zero** standard as the f64 default.
#[test]
fn lowprec_forward_into_steady_state_allocates_nothing() {
    use soifft::soi::Precision;

    let params = params();
    let x = signal(params.n);
    let inputs = scatter_input(&x, params.procs);

    for precision in [Precision::F32, Precision::Split] {
        let fft = SoiFft::new(params)
            .expect("valid params")
            .with_precision(precision);

        let deltas = Cluster::run(params.procs, |comm| {
            let me = &inputs[comm.rank()];
            let mut ws = fft.make_workspace();
            let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
            for _ in 0..3 {
                fft.forward_into(comm, me, &mut ws, &mut y);
            }
            // Same inbox flood as the f64 test: pre-stretch every ring
            // buffer past what scheduling jitter can queue mid-window.
            const FLOOD: usize = 16;
            for _ in 0..FLOOD {
                for dst in 0..comm.size() {
                    let mut burst = comm.acquire_buffer(16);
                    burst.resize(16, c64::ZERO);
                    comm.send(dst, tags::USER, burst);
                }
            }
            comm.barrier();
            for _ in 0..FLOOD {
                for src in 0..comm.size() {
                    let drained = comm.recv(src, tags::USER);
                    comm.recycle_buffer(drained);
                }
            }
            comm.stats_mut()
                .reserve_records(MEASURED * RECORDS_PER_CALL);
            comm.barrier();
            let calls_before = HEAP_CALLS.load(Ordering::SeqCst);
            for _ in 0..MEASURED {
                fft.forward_into(comm, me, &mut ws, &mut y);
            }
            let delta = HEAP_CALLS.load(Ordering::SeqCst) - calls_before;
            comm.barrier();
            delta
        });

        for (rank, delta) in deltas.iter().enumerate() {
            assert_eq!(
                *delta, 0,
                "rank {rank} observed {delta} heap allocations across {MEASURED} \
                 warm {precision:?} forward_into calls; the half-width steady \
                 state must not touch the allocator"
            );
        }
    }
}

/// The fault-tolerant path may allocate (consensus votes, retransmit
/// staging, checksum framing) but stays *bounded*: far below the
/// pipeline's own working set, which a regression re-allocating workspace
/// buffers per call would immediately blow through.
#[test]
fn try_forward_into_steady_state_allocations_are_bounded() {
    let params = params();
    let x = signal(params.n);
    let inputs = scatter_input(&x, params.procs);
    let fft = SoiFft::new(params).expect("valid params");
    let policy = ExchangePolicy::default();

    let (calls, bytes) = {
        let deltas = Cluster::run(params.procs, |comm| {
            let me = &inputs[comm.rank()];
            let mut ws = fft.make_workspace();
            let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
            for _ in 0..3 {
                fft.try_forward_into(comm, me, &policy, &mut ws, &mut y)
                    .expect("fault-free run");
            }
            comm.stats_mut()
                .reserve_records(MEASURED * RECORDS_PER_CALL);
            comm.barrier();
            let calls_before = HEAP_CALLS.load(Ordering::SeqCst);
            let bytes_before = HEAP_BYTES.load(Ordering::SeqCst);
            for _ in 0..MEASURED {
                fft.try_forward_into(comm, me, &policy, &mut ws, &mut y)
                    .expect("fault-free run");
            }
            let calls = HEAP_CALLS.load(Ordering::SeqCst) - calls_before;
            let bytes = HEAP_BYTES.load(Ordering::SeqCst) - bytes_before;
            comm.barrier();
            (calls, bytes)
        });
        // The ledger is global, so every rank saw the same window (modulo
        // barrier skew); judge the largest observation.
        (
            deltas.iter().map(|d| d.0).max().unwrap(),
            deltas.iter().map(|d| d.1).max().unwrap(),
        )
    };

    // Working set per rank per call is ~N/P complex doubles several times
    // over (> 100 KiB here). The resilient scaffolding across ALL ranks
    // must stay an order of magnitude below one rank's working set.
    let per_call_calls = calls / MEASURED as u64;
    let per_call_bytes = bytes / MEASURED as u64;
    assert!(
        per_call_calls <= 512,
        "resilient steady state made {per_call_calls} heap calls per \
         transform (cluster-wide); expected bounded scaffolding only"
    );
    assert!(
        per_call_bytes <= 64 * 1024,
        "resilient steady state allocated {per_call_bytes} bytes per \
         transform (cluster-wide); expected bounded scaffolding only"
    );
}

/// `forward_into` (and the batch driver over it) must be *bit-identical*
/// to `forward` — including on a warm, reused workspace — for every
/// convolution strategy × exchange plan. The zero-allocation path is an
/// optimization, never a numerical fork.
#[test]
fn forward_into_is_bit_identical_to_forward() {
    let params = params();
    let x = signal(params.n);
    let inputs = scatter_input(&x, params.procs);
    let base = SoiFft::new(params).expect("valid params");

    let exchanges = [
        ExchangePlan::Monolithic,
        ExchangePlan::Chunked(97),
        ExchangePlan::PerSegment,
        ExchangePlan::Overlapped,
        ExchangePlan::Proxied(128),
    ];

    let mut checked = 0;
    for strategy in ConvStrategy::ALL {
        for exchange in exchanges {
            let fft = base.clone().with_strategy(strategy).with_exchange(exchange);
            let fresh = gather_output(Cluster::run(params.procs, |comm| {
                fft.forward(comm, &inputs[comm.rank()])
            }));
            let warm = gather_output(Cluster::run(params.procs, |comm| {
                let me = &inputs[comm.rank()];
                let mut ws = fft.make_workspace();
                let mut y = vec![c64::ZERO; fft.output_len(comm.rank())];
                // Twice through the same workspace: the compared output
                // comes from the *warm* call, where every buffer is reused.
                fft.forward_into(comm, me, &mut ws, &mut y);
                fft.forward_into(comm, me, &mut ws, &mut y);
                y
            }));
            assert_eq!(
                fresh, warm,
                "{strategy:?} × {exchange:?}: warm forward_into diverged \
                 bitwise from forward"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, ConvStrategy::ALL.len() * exchanges.len());
}

/// Throughput mode runs each batch element through one shared workspace;
/// its outputs must match per-call `forward` exactly, element for element.
#[test]
fn forward_many_matches_repeated_forward_bitwise() {
    let params = params();
    let fft = SoiFft::new(params).expect("valid params");
    let batch: Vec<Vec<c64>> = (0..3)
        .map(|b| {
            let mut x = signal(params.n);
            for v in &mut x {
                *v *= c64::new(1.0 + b as f64, 0.25 * b as f64);
            }
            x
        })
        .collect();
    let scattered: Vec<Vec<Vec<c64>>> = batch
        .iter()
        .map(|x| scatter_input(x, params.procs))
        .collect();

    let per_rank_batches = Cluster::run(params.procs, |comm| {
        let mine: Vec<Vec<c64>> = scattered.iter().map(|s| s[comm.rank()].clone()).collect();
        let many = fft.forward_many(comm, &mine);
        let singles: Vec<Vec<c64>> = mine.iter().map(|x| fft.forward(comm, x)).collect();
        (many, singles)
    });

    for (rank, (many, singles)) in per_rank_batches.into_iter().enumerate() {
        assert_eq!(
            many, singles,
            "rank {rank}: forward_many diverged bitwise from repeated forward"
        );
    }
}

/// The warm *serving* loop is held to the same bounded standard as the
/// resilient transform it wraps: submit → dispatch → execute → collect
/// recycles pooled job slots and pooled outputs, so per job the engine
/// adds nothing beyond the resilient collective's own bounded
/// scaffolding. A regression that copies inputs into fresh buffers,
/// regrows queues, or leaks per-job result storage blows the budget
/// immediately.
#[test]
fn serve_loop_steady_state_allocations_are_bounded() {
    use soifft::serve::{ServeConfig, ServeEngine};

    let params = params();
    let x = signal(params.n);
    let engine = ServeEngine::start(
        params,
        ServeConfig {
            tenants: 1,
            queue_capacity: 8,
            max_batch: 2,
            ..ServeConfig::default()
        },
    )
    .expect("valid params");

    // Warm every pool: job slots (input + per-rank parts), admission
    // queues, the batch board, the communicator pools behind
    // `try_forward`, and the collect buffer.
    let mut out = Vec::new();
    for _ in 0..6 {
        let ticket = engine.submit(0, &x, None).expect("admitted");
        ticket.wait_into(&mut out).expect("fault-free serve");
    }

    let calls_before = HEAP_CALLS.load(Ordering::SeqCst);
    let bytes_before = HEAP_BYTES.load(Ordering::SeqCst);
    for _ in 0..MEASURED {
        let ticket = engine.submit(0, &x, None).expect("admitted");
        ticket.wait_into(&mut out).expect("fault-free serve");
    }
    let calls = HEAP_CALLS.load(Ordering::SeqCst) - calls_before;
    let bytes = HEAP_BYTES.load(Ordering::SeqCst) - bytes_before;

    // Same per-transform budget as `try_forward_into` above: the serving
    // layer may not add unbounded per-job work on top of the resilient
    // collective's own scaffolding. (The window sees *all* engine
    // threads — dispatcher, ranks, and this client.)
    let per_job_calls = calls / MEASURED as u64;
    let per_job_bytes = bytes / MEASURED as u64;
    assert!(
        per_job_calls <= 512,
        "warm serve loop made {per_job_calls} heap calls per job \
         (cluster-wide); the submit/collect path must recycle its pools"
    );
    assert!(
        per_job_bytes <= 64 * 1024,
        "warm serve loop allocated {per_job_bytes} bytes per job \
         (cluster-wide); the submit/collect path must recycle its pools"
    );

    let report = engine.shutdown();
    assert_eq!(report.stats.completed, 6 + MEASURED as u64);
}
