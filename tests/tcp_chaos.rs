//! TCP-mesh chaos: the SOI pipeline over real sockets with a
//! deterministic network-fault proxy in path.
//!
//! Two invariants, the PR 8 contract:
//!
//! 1. **Heal**: a partition shorter than the staleness budget is
//!    absorbed by the transport alone — senders reconnect with capped
//!    backoff and resend, the receive side drops re-delivered frames by
//!    sequence floor, and the run completes in one epoch with zero
//!    restarts, bit-identical to a fault-free TCP run.
//! 2. **Escalate**: a partition that outlasts the budget surfaces as a
//!    typed `PeerDown` on every blocked rank, the supervisor respawns
//!    the mesh into a bumped generation, the ranks resume from shared
//!    checkpoints, and the recovered spectrum is again bit-identical to
//!    the fault-free run — and numerically correct against the
//!    single-process reference FFT.

use std::time::Duration;

use soifft::cluster::transport::netchaos::{
    ChaosTrigger, NetChaosPlan, PartitionKind, PartitionSpec,
};
use soifft::cluster::transport::tcp::{TcpConfig, TcpSupervisor};
use soifft::cluster::{ClusterConfig, FailureDetection, RankOutcome};
use soifft::fft::Plan;
use soifft::num::c64;
use soifft::num::error::rel_l2;
use soifft::soi::pipeline::gather_output;
use soifft::soi::procrun::seeded_input;
use soifft::soi::tcprun::run_tcp_rank;
use soifft::soi::{Rational, SoiParams};

const RANKS: usize = 4;
const SEED: u64 = 0x07C9_C4A0;

fn params() -> SoiParams {
    SoiParams {
        // Large enough that the all-to-all moves hundreds of KiB per
        // link, so a byte-count partition trigger reliably lands
        // mid-exchange (after the segment-fft checkpoint committed).
        n: 1 << 18,
        procs: RANKS,
        segments_per_proc: 2,
        mu: Rational::new(2, 1),
        conv_width: 40,
    }
}

fn bits(parts: &[Vec<c64>]) -> Vec<u64> {
    parts
        .iter()
        .flatten()
        .flat_map(|z| [z.re.to_bits(), z.im.to_bits()])
        .collect()
}

fn detection(staleness: Duration) -> FailureDetection {
    FailureDetection {
        heartbeat_interval: Duration::from_millis(20),
        staleness_timeout: staleness,
        ..FailureDetection::default()
    }
}

/// Partition rank 2 symmetrically once ~128 KiB have crossed its links —
/// mid-all-to-all, after the segment-fft checkpoint landed.
fn partition(duration: Option<Duration>) -> NetChaosPlan {
    NetChaosPlan::new(0x0C4A_05F7).partition(PartitionSpec {
        rank: 2,
        kind: PartitionKind::Symmetric,
        trigger: ChaosTrigger::BytesThrough {
            rank: 2,
            bytes: 128 * 1024,
        },
        duration,
    })
}

fn run_mesh(
    staleness: Duration,
    chaos: Option<NetChaosPlan>,
) -> soifft::cluster::transport::tcp::TcpRun<Vec<c64>> {
    let p = params();
    let sup = TcpSupervisor::new(TcpConfig {
        cluster: ClusterConfig {
            detection: detection(staleness),
            ..ClusterConfig::default()
        },
        chaos,
        ..TcpConfig::default()
    });
    sup.run(RANKS, move |comm, ctx| run_tcp_rank(comm, ctx, &p, SEED))
        .expect("mesh launches")
}

fn parts_of(run: soifft::cluster::transport::tcp::TcpRun<Vec<c64>>) -> Vec<Vec<c64>> {
    run.outcomes
        .into_iter()
        .enumerate()
        .map(|(rank, o)| match o {
            RankOutcome::Ok(y) => y,
            other => panic!("rank {rank}: unexpected outcome {other:?}"),
        })
        .collect()
}

#[test]
fn brief_partition_heals_by_reconnect_without_respawn() {
    // Fault-free TCP run: the baseline bits.
    let clean = run_mesh(Duration::from_secs(3), None);
    assert!(clean.all_ok(), "fault-free mesh must complete");
    assert_eq!(clean.epochs, 1);
    assert_eq!(clean.restarts, 0);
    let clean_parts = parts_of(clean);

    // 250 ms symmetric partition of rank 2 against a 3 s staleness
    // budget: the senders must reconnect and resend, with no escalation.
    let run = run_mesh(
        Duration::from_secs(3),
        Some(partition(Some(Duration::from_millis(250)))),
    );
    let events = run.chaos_events.expect("proxy was installed");
    println!(
        "tcp-chaos heal: epochs {} | restarts {} | peer-down aborts {} | proxy {events:?}",
        run.epochs, run.restarts, run.peer_down_aborts
    );
    assert!(events.partitions_fired >= 1, "the partition must fire");
    assert_eq!(run.epochs, 1, "healing must not take a respawn");
    assert_eq!(run.restarts, 0, "healing must not consume the budget");
    assert_eq!(run.peer_down_aborts, 0, "no rank may see a PeerDown");
    assert!(run.all_ok(), "healed run must complete: outcomes failed");
    assert_eq!(
        bits(&parts_of(run)),
        bits(&clean_parts),
        "healed spectrum must be bit-identical to the fault-free TCP run"
    );
}

#[test]
fn unhealed_partition_escalates_to_peer_down_and_recovers_bit_identical() {
    let clean = run_mesh(Duration::from_secs(3), None);
    assert!(clean.all_ok(), "fault-free mesh must complete");
    let clean_parts = parts_of(clean);

    // The partition never lifts and the staleness budget is under a
    // second: reconnects cannot heal it, so every rank must abort with
    // a typed PeerDown and the supervisor must respawn. The plan names
    // generation 0 only, so the respawned mesh runs fault-free and
    // resumes from the shared checkpoints.
    let run = run_mesh(Duration::from_millis(900), Some(partition(None)));
    let events = run.chaos_events.expect("proxy was installed");
    println!(
        "tcp-chaos escalate: epochs {} | restarts {} | peer-down aborts {} | proxy {events:?}",
        run.epochs, run.restarts, run.peer_down_aborts
    );
    assert!(events.partitions_fired >= 1, "the partition must fire");
    assert!(
        run.peer_down_aborts >= 1,
        "the partition must surface as typed PeerDown aborts"
    );
    assert!(run.restarts >= 1, "recovery must consume a restart");
    assert!(run.epochs >= 2, "recovery must take a respawned generation");
    assert!(
        run.all_ok(),
        "respawned generation must complete: outcomes failed"
    );
    let parts = parts_of(run);
    assert_eq!(
        bits(&parts),
        bits(&clean_parts),
        "recovered spectrum must be bit-identical to the fault-free TCP run"
    );

    let p = params();
    let mut want = seeded_input(p.n, SEED);
    Plan::new(p.n).forward(&mut want);
    let err = rel_l2(&gather_output(parts), &want);
    assert!(
        err < 1e-9,
        "recovered spectrum must verify: rel err {err:.3e}"
    );
}
